"""Legacy shim: this environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) fall back to ``setup.py develop``
via ``--no-use-pep517``. All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
