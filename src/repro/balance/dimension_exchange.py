"""Dimension Exchange Method (paper Section 4.2, Algorithm 6; Cybenko [11]).

``log2 p`` rounds; in round ``j`` ranks differing in bit ``j`` pair up,
exchange their element counts, and the heavier partner ships its surplus
(``n_i - ceil((n_i + n_l)/2)`` elements, cut from the tail) to the lighter
one. On a power-of-two machine every aligned block of ``2^(j+1)`` ranks holds
an equal share after round ``j`` (up to ceil rounding), so the final global
imbalance is at most ``log2 p`` elements — exact balance is *not* guaranteed,
which the paper accepts ("eventually leads to global load balance").

Non-power-of-two machines use the enclosing virtual hypercube: ranks whose
partner does not exist sit the round out (DESIGN.md deviation #2).
"""

from __future__ import annotations

import numpy as np

from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from ..machine.topology import hypercube_dimensions, hypercube_partner
from .base import Balancer, register

__all__ = ["DimensionExchange"]


@register
class DimensionExchange(Balancer):
    name = "dimension_exchange"
    letter = "D"

    def _rebalance(
        self, ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
    ) -> np.ndarray:
        p = ctx.size
        for dim in range(hypercube_dimensions(p)):
            partner = hypercube_partner(ctx.rank, dim, p)
            if partner is None:
                # Participate in both collective rounds without payload:
                # every path through this loop body issues exactly two
                # pairwise rounds, so the machine stays in lockstep even
                # though *which* call site fires is rank-dependent (the
                # lockstep verifier exempts pairwise_exchange for the same
                # reason — the primitive is asymmetric by contract).
                ctx.comm.pairwise_exchange(None, None)  # repro: noqa[RPR101]
                ctx.comm.pairwise_exchange(None, None)  # repro: noqa[RPR101]
                continue  # repro: noqa[RPR103]
            ni = int(arr.size)
            nl = int(ctx.comm.pairwise_exchange(partner, ni))
            high = (ni + nl + 1) // 2  # paper's navg = ceil((ni+nl)/2)
            if ni > high:
                outgoing, arr = arr[high:], arr[:high]
                incoming = ctx.comm.pairwise_exchange(partner, outgoing)
                assert incoming is None, "both sides of a pair sent data"
            else:
                incoming = ctx.comm.pairwise_exchange(partner, None)
                if incoming is not None and incoming.size:
                    kernels.scan_pass(incoming.size)  # append copy
                    arr = np.concatenate([arr, incoming])
        return arr
