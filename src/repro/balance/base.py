"""Load-balancer interface and registry (paper Section 4).

A balancer is a *collective*: every rank calls
``rebalance(ctx, kernels, arr)`` with its local array; all ranks return new
local arrays holding the same global multiset, with per-rank counts equal to
the block-distribution targets (``ceil(n/p)`` on the first ``n mod p`` ranks,
``floor(n/p)`` elsewhere) — the paper's ``n_avg``.

All time spent inside a balancer (its collectives, its transfers, its local
bookkeeping) is attributed to the clock's *balance* categories so Figures
5-6 (load-balancing time vs total time) can be regenerated.

The transfer step of every balancer is one invocation of the transportation
primitive (:meth:`Comm.alltoallv`), which is how the paper costs the
redistribution; dimension exchange instead performs its ``log p`` pairwise
rounds, also per the paper.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext

__all__ = ["Balancer", "NoBalance", "TransferPlan", "get_balancer", "BALANCERS",
           "target_counts"]


def target_counts(n: int, p: int) -> np.ndarray:
    """Per-rank post-balance counts: the paper's ``n_avg`` with remainder
    spread over the lowest ranks."""
    base, extra = divmod(int(n), int(p))
    counts = np.full(p, base, dtype=np.int64)
    counts[:extra] += 1
    return counts


@dataclass(frozen=True)
class TransferPlan:
    """A send matrix row for one rank: how many elements go to each peer.

    ``send_counts[d]`` elements leave for rank ``d``; the plan also records
    diagnostics the paper analyses (message counts, words moved).
    """

    send_counts: np.ndarray
    owner: int = -1

    @property
    def messages(self) -> int:
        """Off-rank destinations receiving at least one element."""
        n = int(np.count_nonzero(self.send_counts))
        if 0 <= self.owner < self.send_counts.size and self.send_counts[self.owner]:
            n -= 1
        return n

    @property
    def words(self) -> int:
        return int(self.send_counts.sum())


class Balancer(abc.ABC):
    """Base class: handles section attribution and the common invariants."""

    #: Registry key and report label.
    name: str = "abstract"
    #: Paper figure letter (N/O/D/G) used in Figures 5-6 bar labels.
    letter: str = "?"

    def rebalance(
        self, ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
    ) -> np.ndarray:
        """Collectively redistribute ``arr`` towards perfect balance."""
        with ctx.balance_section():
            return self._rebalance(ctx, kernels, arr)

    @abc.abstractmethod
    def _rebalance(
        self, ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
    ) -> np.ndarray:
        ...

    # Shared helper: execute a send plan through the transportation primitive.
    @staticmethod
    def _execute_plan(
        ctx: ProcContext, arr_to_send: np.ndarray, plan: TransferPlan,
        keep: np.ndarray,
    ) -> np.ndarray:
        """Slice ``arr_to_send`` by ``plan`` and run one alltoallv.

        ``keep`` is the part of the local array that stays; outgoing slices
        are cut from ``arr_to_send`` in destination order. Received payloads
        are concatenated in source order after ``keep``.
        """
        p = ctx.size
        sends: list[np.ndarray | None] = [None] * p
        offset = 0
        for d in range(p):
            c = int(plan.send_counts[d])
            if c <= 0:
                continue
            sends[d] = arr_to_send[offset: offset + c]
            offset += c
        if offset != arr_to_send.size:
            raise ConfigurationError(
                f"rank {ctx.rank}: transfer plan covers {offset} of "
                f"{arr_to_send.size} outgoing elements"
            )
        received = ctx.comm.alltoallv(sends)
        parts = [keep] + [r for r in received if r is not None and r.size]
        # Historically uncharged: the transportation primitive's 2*mu*t
        # already prices every received word, which covers writing the
        # payloads into local memory; charging the concatenation again
        # would double-count (and shift every pinned balanced-run time).
        return (
            np.concatenate(parts)  # repro: noqa[RPR401]
            if len(parts) > 1
            else keep.copy()
        )


class NoBalance(Balancer):
    """The paper's "no load balancing" baseline (label N)."""

    name = "none"
    letter = "N"

    def rebalance(self, ctx, kernels, arr):  # no section: truly free
        return arr

    def _rebalance(self, ctx, kernels, arr):  # pragma: no cover - unused
        return arr


BALANCERS: dict[str, type] = {}


def register(cls: type) -> type:
    BALANCERS[cls.name] = cls
    return cls


register(NoBalance)


def get_balancer(name_or_instance) -> Balancer:
    """Resolve a balancer from a registry name, class, instance or ``None``."""
    if name_or_instance is None:
        return NoBalance()
    if isinstance(name_or_instance, Balancer):
        return name_or_instance
    if isinstance(name_or_instance, type) and issubclass(name_or_instance, Balancer):
        return name_or_instance()
    try:
        return BALANCERS[name_or_instance]()
    except KeyError:
        raise ConfigurationError(
            f"unknown balancer {name_or_instance!r}; available: "
            f"{sorted(BALANCERS)}"
        ) from None
