"""Global Exchange load balance (paper Section 4.3, Algorithm 7).

Identical information flow to modified OMLB — one Global Concatenate of the
counts, prefix-ranked surpluses matched to prefix-ranked deficits, one
transportation-primitive transfer — but the surplus and deficit sequences
are laid out in *non-increasing size order* instead of processor order:
processors holding the most surplus ship to processors missing the most,
which tends to collapse transfers into few large messages (the paper's
stated motivation).

Worst case unchanged: ``O(p)`` total messages, ``(n_max - n_avg)`` sent and
``n_avg`` received per processor.
"""

from __future__ import annotations

import numpy as np

from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from .base import Balancer, register, target_counts
from .modified_omlb import interval_matching_plan

__all__ = ["GlobalExchange"]


@register
class GlobalExchange(Balancer):
    name = "global_exchange"
    letter = "G"

    def _rebalance(
        self, ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
    ) -> np.ndarray:
        p = ctx.size
        counts = np.array(ctx.comm.global_concat(int(arr.size)), dtype=np.int64)
        n = int(counts.sum())
        if n == 0:
            return arr
        targets = target_counts(n, p)
        diffs = counts - targets
        # Sort sources by surplus descending, sinks by deficit descending;
        # ties broken by rank so every processor derives the same order.
        # np.lexsort's last key is primary.
        src_order = np.lexsort((np.arange(p), -np.maximum(diffs, 0)))
        snk_order = np.lexsort((np.arange(p), -np.maximum(-diffs, 0)))
        kernels.ctx.charge_compute(
            kernels.model.compute.sort_per_cmp * p * max(1.0, np.log2(max(p, 2)))
        )
        if not np.any(diffs):
            return arr

        plan = interval_matching_plan(ctx.rank, diffs, src_order, snk_order)
        retain = min(int(arr.size), int(targets[ctx.rank]))
        keep, surplus = arr[:retain], arr[retain:]
        return self._execute_plan(ctx, surplus, plan, keep=keep)
