"""Order Maintaining Load Balance (paper Section 4.1, unmodified form).

View the ``n`` elements as globally sorted by (processor index, array
index). A parallel-prefix over local counts gives every rank its block's
global offset; rank ``i`` must end up with the elements at global positions
``[t_i, t_{i+1})`` where ``t`` comes from the block-distribution targets.
Each rank cuts its block into the (at most ``ceil(n_max/n_avg) + 1``)
destination slices and one transportation-primitive call moves everything.

The global order of elements is preserved — the property that distinguishes
this balancer (and that makes it over-communicate: the paper's example of a
single surplus element on the last rank cascading one message through every
processor is reproduced in the tests).
"""

from __future__ import annotations

import numpy as np

from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from .base import Balancer, TransferPlan, register, target_counts

__all__ = ["OrderMaintainingBalance"]


@register
class OrderMaintainingBalance(Balancer):
    name = "omlb"
    letter = "O*"  # the paper's figures use its modified variant as "O"

    def _rebalance(
        self, ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
    ) -> np.ndarray:
        p = ctx.size
        ni = int(arr.size)
        n = int(ctx.comm.allreduce_sum(ni))
        if n == 0:
            return arr
        offset = int(ctx.comm.exscan_sum(ni))
        targets = target_counts(n, p)
        tstarts = np.concatenate([[0], np.cumsum(targets)])
        kernels.scan_pass(p)

        send_counts = np.zeros(p, dtype=np.int64)
        # Overlap of my block [offset, offset+ni) with each target range.
        first = int(np.searchsorted(tstarts, offset, side="right")) - 1
        pos = offset
        d = max(first, 0)
        while pos < offset + ni and d < p:
            take = min(offset + ni, int(tstarts[d + 1])) - pos
            if take > 0:
                send_counts[d] = take
                pos += take
            d += 1
        plan = TransferPlan(send_counts=send_counts, owner=ctx.rank)
        # Everything is "sent" (self-slices travel for free through the
        # transportation primitive) so received source-order concatenation
        # reproduces the global order.
        return self._execute_plan(ctx, arr, plan, keep=arr[:0])
