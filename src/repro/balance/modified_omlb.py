"""Modified Order Maintaining Load Balance (paper Section 4.1, Algorithm 5).

Selection does not care about element order, so the modified algorithm stops
shifting whole blocks around: every processor *retains* ``min(n_i, n_avg)``
of its own elements; only the surplus moves. Surplus elements on source
processors and deficits on sink processors are each ranked by a prefix
operation (in processor order), and surplus interval ``[a, b)`` in
surplus-space is shipped to the sinks covering ``[a, b)`` in deficit-space.

Worst case per the paper: ``O(p)`` messages per processor,
``(n_max - n_avg)`` elements sent, ``n_avg`` received.
"""

from __future__ import annotations

import numpy as np

from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from .base import Balancer, TransferPlan, register, target_counts

__all__ = ["ModifiedOMLB", "interval_matching_plan"]


def interval_matching_plan(
    rank: int,
    diffs: np.ndarray,
    src_order: np.ndarray,
    snk_order: np.ndarray,
) -> TransferPlan:
    """Send counts for ``rank`` when surpluses meet deficits interval-wise.

    ``src_order``/``snk_order`` fix the order in which source surpluses and
    sink deficits are laid out in the shared matching space (processor order
    for modified OMLB, size-sorted order for global exchange). Returns a
    zero plan for non-source ranks.
    """
    p = diffs.size
    send_counts = np.zeros(p, dtype=np.int64)
    my_diff = int(diffs[rank])
    if my_diff <= 0:
        return TransferPlan(send_counts=send_counts, owner=rank)
    # Surplus-space offsets in src_order.
    src_sizes = np.maximum(diffs[src_order], 0)
    src_starts = np.concatenate([[0], np.cumsum(src_sizes)])
    my_pos = int(np.flatnonzero(src_order == rank)[0])
    a, b = int(src_starts[my_pos]), int(src_starts[my_pos + 1])
    # Deficit-space offsets in snk_order.
    snk_sizes = np.maximum(-diffs[snk_order], 0)
    snk_starts = np.concatenate([[0], np.cumsum(snk_sizes)])
    # Walk the sinks overlapping [a, b).
    j = int(np.searchsorted(snk_starts, a, side="right")) - 1
    pos = a
    while pos < b and j < snk_order.size:
        take = min(b, int(snk_starts[j + 1])) - pos
        if take > 0:
            send_counts[int(snk_order[j])] += take
            pos += take
        j += 1
    assert pos == b, "surplus not fully matched to deficits"
    return TransferPlan(send_counts=send_counts, owner=rank)


@register
class ModifiedOMLB(Balancer):
    name = "modified_omlb"
    letter = "O"

    def _rebalance(
        self, ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
    ) -> np.ndarray:
        p = ctx.size
        counts = np.array(ctx.comm.global_concat(int(arr.size)), dtype=np.int64)
        n = int(counts.sum())
        if n == 0:
            return arr
        targets = target_counts(n, p)
        diffs = counts - targets
        kernels.scan_pass(p)
        if not np.any(diffs):
            # Already balanced: skip the (empty) transportation round — the
            # Global Concatenate above already paid for detecting this.
            return arr

        order = np.arange(p)  # processor order on both sides
        plan = interval_matching_plan(ctx.rank, diffs, order, order)
        retain = min(int(arr.size), int(targets[ctx.rank]))
        keep, surplus = arr[:retain], arr[retain:]
        return self._execute_plan(ctx, surplus, plan, keep=keep)
