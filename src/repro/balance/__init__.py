"""Dynamic load balancing algorithms (paper Section 4).

Four strategies, all usable by any selection algorithm (or standalone):

============================  =======  ======================================
Registry name                 Figure   Paper section
============================  =======  ======================================
``none``                      N        baseline (no balancing)
``omlb``                      —        4.1 order maintaining (unmodified)
``modified_omlb``             O        4.1 modified order maintaining
``dimension_exchange``        D        4.2 dimension exchange (Cybenko)
``global_exchange``           G        4.3 global exchange
============================  =======  ======================================
"""

from .base import (
    BALANCERS,
    Balancer,
    NoBalance,
    TransferPlan,
    get_balancer,
    target_counts,
)
from .dimension_exchange import DimensionExchange
from .global_exchange import GlobalExchange
from .metrics import ImbalanceStats, imbalance_stats
from .modified_omlb import ModifiedOMLB, interval_matching_plan
from .omlb import OrderMaintainingBalance

__all__ = [
    "BALANCERS",
    "Balancer",
    "NoBalance",
    "TransferPlan",
    "get_balancer",
    "target_counts",
    "DimensionExchange",
    "GlobalExchange",
    "ImbalanceStats",
    "imbalance_stats",
    "ModifiedOMLB",
    "interval_matching_plan",
    "OrderMaintainingBalance",
]
