"""Imbalance diagnostics used by tests, examples and the bench reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImbalanceStats", "imbalance_stats"]


@dataclass(frozen=True)
class ImbalanceStats:
    """Summary of a per-rank count vector."""

    n: int
    p: int
    max_count: int
    min_count: int
    mean: float
    stddev: float

    @property
    def spread(self) -> int:
        """``n_max - n_min`` — 0 or 1 after a perfect balancer."""
        return self.max_count - self.min_count

    @property
    def ratio(self) -> float:
        """``n_max / n_avg`` — the factor by which the slowest rank is
        overloaded (>= 1.0; 1.0 is perfect)."""
        return self.max_count / self.mean if self.mean else 1.0

    def is_balanced(self, slack: int = 1) -> bool:
        return self.spread <= slack


def imbalance_stats(counts) -> ImbalanceStats:
    """Compute :class:`ImbalanceStats` from an iterable of per-rank counts."""
    arr = np.asarray(list(counts), dtype=np.int64)
    if arr.size == 0:
        return ImbalanceStats(0, 0, 0, 0, 0.0, 0.0)
    return ImbalanceStats(
        n=int(arr.sum()),
        p=int(arr.size),
        max_count=int(arr.max()),
        min_count=int(arr.min()),
        mean=float(arr.mean()),
        stddev=float(arr.std()),
    )
