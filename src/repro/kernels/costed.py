"""Cost-charging facade over the sequential kernels.

Selection algorithms do local work through this object so every NumPy pass
also advances the rank's simulated clock by the calibrated per-element
constants — keeping algorithm code free of book-keeping noise.
"""

from __future__ import annotations

import numpy as np

from ..machine.engine import ProcContext
from . import fast as _fast
from . import partition as _partition
from . import select as _select
from .buckets import BucketScan, LocalBuckets, build_cost
from .dispatch import resolve_kernels
from .weighted_median import weighted_median, weighted_median_cost

__all__ = ["CostedKernels"]


class CostedKernels:
    """Sequential kernels bound to one rank's clock and cost model.

    ``kernels`` picks the executing implementations — ``"reference"`` or
    ``"fast"`` (``None`` defers to ``$REPRO_KERNELS``, default reference).
    Charges are computed from the reference cost formulas *before* the
    executing kernel is chosen, so the two modes produce bit-identical
    values and simulated times (pinned by ``tests/test_kernel_modes.py``);
    only host wall clock differs.
    """

    def __init__(self, ctx: ProcContext, kernels: str | None = None):
        self.ctx = ctx
        self.model = ctx.model
        self.kernels = resolve_kernels(kernels)
        self._fast = self.kernels == "fast"

    # ------------------------------------------------------------ partition

    def partition3(self, arr: np.ndarray, pivot) -> _partition.Partition3:
        self.ctx.charge_compute(_partition.partition_cost(self.model, arr.size))
        if self._fast:
            return _fast.fast_partition3(arr, pivot)
        return _partition.partition3(arr, pivot)

    def partition2(self, arr: np.ndarray, pivot) -> _partition.Partition2:
        self.ctx.charge_compute(_partition.partition_cost(self.model, arr.size))
        return _partition.partition2(arr, pivot)

    def count3(self, arr: np.ndarray, pivot) -> tuple[int, int, int]:
        self.ctx.charge_compute(_partition.partition_cost(self.model, arr.size))
        return _partition.count3(arr, pivot)

    def partition_band(self, arr: np.ndarray, lo, hi):
        self.ctx.charge_compute(_partition.partition_cost(self.model, arr.size))
        return _partition.partition_band(arr, lo, hi)

    def partition_multiway(self, arr: np.ndarray, cuts) -> list[np.ndarray]:
        self.ctx.charge_compute(
            _partition.partition_multiway_cost(self.model, arr.size, len(cuts))
        )
        if self._fast:
            return _fast.fast_partition_multiway(arr, cuts)
        return _partition.partition_multiway(arr, cuts)

    # ------------------------------------------------------------ selection

    def select_kth(
        self,
        arr: np.ndarray,
        k: int,
        method: _select.SelectMethod,
        rng: np.random.Generator | None = None,
        impl: _select.SelectMethod | None = None,
    ):
        """Sequential selection charged at ``method``'s cost.

        ``impl`` optionally swaps the *executing* kernel (e.g. introselect
        for wall-clock speed on huge benchmark grids) without changing the
        simulated charge: the k-th smallest is a unique value, so every
        implementation returns the same answer — only the simulated cost is
        algorithm-dependent, and that always follows ``method``. Fast
        kernel mode applies the same swap (introselect) by default.
        """
        self.ctx.charge_compute(_select.select_cost(self.model, arr.size, method))
        return _select.select_kth(arr, k, method=self._impl(method, impl), rng=rng)

    def _impl(self, method, impl):
        """The executing sequential-select kernel for a charged ``method``."""
        if impl is not None:
            return impl
        return "introselect" if self._fast else method

    def local_median(
        self,
        arr: np.ndarray,
        method: _select.SelectMethod,
        rng: np.random.Generator | None = None,
        impl: _select.SelectMethod | None = None,
    ):
        return self.select_kth(
            arr, _select.median_rank(arr.size), method, rng=rng, impl=impl
        )

    def select_multi_kth(
        self,
        arr: np.ndarray,
        ks: list[int],
        method: _select.SelectMethod,
        rng: np.random.Generator | None = None,
        impl: _select.SelectMethod | None = None,
    ) -> list:
        """Single-pass sequential selection of several sorted ranks.

        Charged at ``multi_select_cost`` for ``method`` (one partition
        cascade over ``log2(q + 1)`` levels); like :meth:`select_kth`,
        ``impl`` may swap the executing kernel without changing the charge.
        """
        self.ctx.charge_compute(
            _select.multi_select_cost(self.model, arr.size, len(ks), method)
        )
        return _select.select_multi_kth(
            arr, ks, method=self._impl(method, impl), rng=rng
        )

    def sort(self, arr: np.ndarray) -> np.ndarray:
        n = max(int(arr.size), 1)
        self.ctx.charge_compute(
            self.model.compute.sort_per_cmp * n * max(1.0, np.log2(n))
        )
        return np.sort(arr)

    # -------------------------------------------------------------- buckets

    def build_buckets(self, arr: np.ndarray, n_buckets: int) -> LocalBuckets:
        self.ctx.charge_compute(build_cost(self.model, arr.size, n_buckets))
        if self._fast:
            return _fast.fast_build_buckets(arr, n_buckets)
        return LocalBuckets.build(arr, n_buckets)

    def charge_scan_evidence(
        self, scan: BucketScan, select_method: _select.SelectMethod | None = None
    ) -> None:
        """Charge a bucket operation: probes + touched elements.

        ``select_method`` switches the per-element constant between a plain
        partition pass and an in-bucket sequential selection.
        """
        probe_cost = self.model.compute.binary_search_step * scan.probes
        if select_method is None:
            elem_cost = self.model.compute.partition * scan.touched
        else:
            elem_cost = _select.select_cost(self.model, scan.touched, select_method)
        self.ctx.charge_compute(probe_cost + elem_cost)

    # ------------------------------------------------------- weighted median

    def weighted_median(self, values: np.ndarray, weights: np.ndarray):
        self.ctx.charge_compute(weighted_median_cost(self.model, len(values)))
        return weighted_median(values, weights)

    # ----------------------------------------------------------------- misc

    def rng_draw(self) -> None:
        """Charge one shared random-number draw (Algorithm 3, Step 2)."""
        self.ctx.charge_compute(self.model.compute.rng_draw)

    def scan_pass(self, n: int) -> None:
        """Charge a simple O(n) sequential pass (copy/count/sum)."""
        self.ctx.charge_compute(self.model.compute.scan * max(0, n))
