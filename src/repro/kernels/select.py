"""Sequential selection kernels (the local Step 1 / final Step of every
parallel algorithm).

Three genuine implementations are provided:

* :func:`select_deterministic` — Blum/Floyd/Pratt/Rivest/Tarjan median of
  medians (groups of five), vectorised with NumPy: group medians come from
  one ``np.median`` over a reshaped view, the recursion bottoms out on a
  sort. Worst-case ``O(n)`` with the famously large constant the paper's
  Section 5 blames for the deterministic algorithms' slowness.
* :func:`select_randomized` — Floyd/Rivest-flavoured randomized quickselect:
  random pivot, 3-way vectorised partition, expected ``O(n)`` with a small
  constant.
* :func:`select_introselect` — ``np.partition`` (C introselect); the fastest
  wall-clock option, useful as an independent correctness oracle and as an
  opt-in fast path for very large simulations.

Selection is by *rank* in ``1..n`` (the paper's convention: the median of N
elements is the element of rank ``ceil(N/2)``).

Simulated-cost companions (:func:`select_cost`) charge the per-element
constants from the cost model so the parallel algorithms can account local
selection work in the two-level machine's currency.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..errors import ConfigurationError
from ..machine.cost_model import CostModel

__all__ = [
    "select_kth",
    "select_multi_kth",
    "select_deterministic",
    "select_randomized",
    "select_introselect",
    "median_rank",
    "local_median",
    "select_cost",
    "multi_select_cost",
    "SelectMethod",
]

SelectMethod = Literal["deterministic", "randomized", "introselect"]

#: Below this size, recursion overheads dominate: just sort.
_SMALL = 32


def _check_rank(n: int, k: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"cannot select from an empty array (n={n})")
    if not (1 <= k <= n):
        raise ConfigurationError(f"rank k={k} out of range [1, {n}]")


def median_rank(n: int) -> int:
    """The paper's median definition: rank ``ceil(n/2)``."""
    if n <= 0:
        raise ConfigurationError(f"median of empty set (n={n})")
    return (n + 1) // 2


def select_introselect(arr: np.ndarray, k: int):
    """k-th smallest via ``np.partition`` (1-based rank)."""
    _check_rank(arr.size, k)
    return np.partition(arr, k - 1, kind="introselect")[k - 1]


def select_randomized(arr: np.ndarray, k: int, rng: np.random.Generator | None = None):
    """k-th smallest via randomized quickselect (expected linear time)."""
    _check_rank(arr.size, k)
    if rng is None:
        rng = np.random.default_rng(0x5EEDED)
    a = arr
    while True:
        n = a.size
        if n <= _SMALL:
            return np.sort(a)[k - 1]
        pivot = a[rng.integers(0, n)]
        lt_mask = a < pivot
        n_lt = int(np.count_nonzero(lt_mask))
        if k <= n_lt:
            a = a[lt_mask]
            continue
        gt_mask = a > pivot
        n_gt = int(np.count_nonzero(gt_mask))
        n_eq = n - n_lt - n_gt
        if k <= n_lt + n_eq:
            return pivot
        a = a[gt_mask]
        k -= n_lt + n_eq


def select_deterministic(arr: np.ndarray, k: int):
    """k-th smallest via median of medians (worst-case linear time)."""
    _check_rank(arr.size, k)
    a = arr
    while True:
        n = a.size
        if n <= _SMALL:
            return np.sort(a)[k - 1]
        # Group medians: full groups of 5 via a reshaped median, remainder
        # handled separately (at most 4 elements).
        n_full = (n // 5) * 5
        groups = a[:n_full].reshape(-1, 5)
        medians = np.median(groups, axis=1)
        if n > n_full:
            tail = a[n_full:]
            medians = np.append(medians, np.median(tail))
        # np.median of an even-sized tail can interpolate; for selection we
        # only need a pivot that guarantees a 30/70 split, and any value
        # within the data's range preserves that guarantee, so interpolated
        # medians are safe. For integer inputs keep integer semantics by
        # selecting an actual element instead.
        if medians.size == 1:
            mom = medians[0]
        else:
            mom = select_deterministic(medians, median_rank(medians.size))
        lt_mask = a < mom
        n_lt = int(np.count_nonzero(lt_mask))
        if k <= n_lt:
            a = a[lt_mask]
            continue
        gt_mask = a > mom
        n_gt = int(np.count_nonzero(gt_mask))
        n_eq = n - n_lt - n_gt
        if n_eq and k <= n_lt + n_eq:
            # The pivot itself occupies ranks (n_lt, n_lt + n_eq]. If it is an
            # interpolated (non-member) value, n_eq == 0 and we never land
            # here, so returning it is always returning a data element.
            return _element_at(a, k, n_lt, n_eq, mom)
        a = a[gt_mask]
        k -= n_lt + n_eq


def _element_at(a: np.ndarray, k: int, n_lt: int, n_eq: int, pivot):
    """Rank k lies in the ``== pivot`` band: the answer is the pivot value,
    returned with the array's dtype (guards against np.median float-casting
    integer arrays)."""
    return a.dtype.type(pivot) if a.dtype != np.asarray(pivot).dtype else pivot


def select_kth(
    arr: np.ndarray,
    k: int,
    method: SelectMethod = "introselect",
    rng: np.random.Generator | None = None,
):
    """Dispatch to one of the three sequential selection implementations."""
    if method == "introselect":
        return select_introselect(arr, k)
    if method == "randomized":
        return select_randomized(arr, k, rng=rng)
    if method == "deterministic":
        return select_deterministic(arr, k)
    raise ConfigurationError(f"unknown sequential selection method {method!r}")


def local_median(
    arr: np.ndarray,
    method: SelectMethod = "introselect",
    rng: np.random.Generator | None = None,
):
    """Median (rank ``ceil(n/2)``) of a local list."""
    return select_kth(arr, median_rank(arr.size), method=method, rng=rng)


def select_multi_kth(
    arr: np.ndarray,
    ks: "list[int]",
    method: SelectMethod = "introselect",
    rng: np.random.Generator | None = None,
):
    """Values of several ranks (1-based, sorted ascending) in one pass.

    ``np.partition`` accepts a list of pivot positions and places them all
    in one introselect sweep — the sequential analogue of single-pass
    multi-rank selection (cost model: :func:`multi_select_cost`). The
    ``deterministic``/``randomized`` methods fall back to one
    :func:`select_kth` per rank (their simulated cost is still charged via
    :func:`multi_select_cost` by the costed facade).
    """
    if not ks:
        return []
    for k in ks:
        _check_rank(arr.size, k)
    if any(b < a for a, b in zip(ks, ks[1:])):
        raise ConfigurationError(f"ranks must be sorted ascending, got {ks}")
    if method == "introselect":
        placed = np.partition(arr, [k - 1 for k in ks], kind="introselect")
        return [placed[k - 1] for k in ks]
    return [select_kth(arr, k, method=method, rng=rng) for k in ks]


def multi_select_cost(
    model: CostModel, n: int, n_ranks: int, method: SelectMethod
) -> float:
    """Simulated cost of selecting ``q`` ranks from ``n`` elements at once.

    Multi-rank quickselect partitions the array into ``q + 1`` independent
    slabs; every element participates in ``O(log q)`` partition levels
    before its slab contains at most one target, then each slab pays one
    plain selection. Charged as ``select_cost(n) * ceil(log2(q + 1))`` —
    the single-rank case (``q == 1``) reduces exactly to
    :func:`select_cost`.
    """
    if n_ranks <= 0:
        return 0.0
    depth = max(1.0, float(np.ceil(np.log2(n_ranks + 1))))
    return select_cost(model, n, method) * depth


def select_cost(model: CostModel, n: int, method: SelectMethod) -> float:
    """Simulated cost of one sequential selection over ``n`` elements."""
    n = max(0, n)
    if method == "deterministic":
        return model.compute.select_deterministic * n
    if method == "randomized":
        return model.compute.select_randomized * n
    if method == "introselect":
        # Charged as a randomized-class scan: introselect's constant is of
        # the same order as quickselect's.
        return model.compute.select_randomized * n
    raise ConfigurationError(f"unknown sequential selection method {method!r}")
