"""The O(log p)-bucket local preprocessing of the bucket-based algorithm.

Section 3.2: each processor preprocesses its ``n/p`` keys into ``O(log p)``
buckets such that every key in bucket ``i`` is <= every key in bucket ``j``
for ``i < j`` (non-strict under duplicates). Construction recursively splits
segments at their positional median (``np.partition``), i.e. ``log2(B)``
levels over the whole array — the paper's ``O((n/p) log log p)`` bound.

Afterwards, the two per-iteration chores of a selection algorithm become
cheap:

* the **local median** is found by walking bucket sizes to the bucket that
  contains the target rank and running sequential selection *inside that one
  bucket* (``O(log log p + n/(p log p))``);
* **partitioning around a pivot** only needs to touch the bucket(s) whose
  [min, max] range straddles the pivot: all other buckets are kept or
  dropped wholesale.

The structure tracks exactly how many elements each operation touched and
how many bucket-boundary probes it made, so the caller can charge faithful
simulated costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..machine.cost_model import CostModel
from ..machine.topology import log2_ceil, next_power_of_two

__all__ = ["LocalBuckets", "BucketScan", "default_n_buckets", "build_cost"]


def default_n_buckets(p: int) -> int:
    """Paper's choice, rounded to a power of two: ~``log2 p`` buckets."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    return next_power_of_two(max(2, log2_ceil(max(p, 2))))


def build_cost(model: CostModel, n: int, n_buckets: int) -> float:
    """Simulated preprocessing cost: ``n`` elements x ``log2(B)`` levels."""
    return model.compute.bucket_level * max(0, n) * max(1, log2_ceil(n_buckets))


@dataclass(frozen=True)
class BucketScan:
    """Cost evidence for one bucket-structure operation."""

    touched: int  #: elements actually scanned/moved
    probes: int  #: bucket-boundary binary-search probes


class LocalBuckets:
    """Value-ordered buckets over one processor's live keys."""

    def __init__(self, buckets: list[np.ndarray]):
        self._buckets = [b for b in buckets if b.size]
        self._refresh()

    def _refresh(self) -> None:
        self._sizes = np.array([b.size for b in self._buckets], dtype=np.int64)
        if self._buckets:
            self._mins = np.array([b.min() for b in self._buckets])
            self._maxs = np.array([b.max() for b in self._buckets])
        else:
            self._mins = np.array([])
            self._maxs = np.array([])

    # ------------------------------------------------------------- building

    @classmethod
    def build(cls, arr: np.ndarray, n_buckets: int) -> "LocalBuckets":
        """Recursive positional-median splitting into ``n_buckets`` buckets.

        ``n_buckets`` is rounded up to a power of two (the recursion halves).
        Buckets differ in size by at most one.
        """
        if n_buckets < 1:
            raise ConfigurationError(f"n_buckets must be >= 1, got {n_buckets}")
        arr = np.asarray(arr)
        if arr.ndim != 1:
            raise ConfigurationError("LocalBuckets expects a 1-D array")
        b = next_power_of_two(n_buckets)
        segments = [arr.copy()]
        while len(segments) < b:
            nxt: list[np.ndarray] = []
            for seg in segments:
                if seg.size <= 1:
                    nxt.extend([seg, seg[:0]])
                    continue
                mid = seg.size // 2
                part = np.partition(seg, mid - 1 if mid else 0)
                nxt.extend([part[:mid], part[mid:]])
            segments = nxt
        return cls(segments)

    # ------------------------------------------------------------ inspection

    @property
    def n_buckets(self) -> int:
        return len(self._buckets)

    @property
    def total(self) -> int:
        return int(self._sizes.sum()) if self._buckets else 0

    def as_array(self) -> np.ndarray:
        """Concatenate live keys (used for the endgame gather)."""
        if not self._buckets:
            return np.array([])
        return np.concatenate(self._buckets)

    def check_invariants(self) -> None:
        """Bucket ordering invariant (tests): max(bucket i) <= min(bucket j)
        for i < j."""
        for i in range(len(self._buckets) - 1):
            if self._maxs[i] > self._mins[i + 1]:
                raise AssertionError(
                    f"bucket order violated between {i} and {i + 1}: "
                    f"{self._maxs[i]} > {self._mins[i + 1]}"
                )

    # ------------------------------------------------------------- queries

    def kth(self, k: int) -> tuple[object, BucketScan]:
        """k-th smallest live key (1-based): bucket walk + in-bucket select."""
        n = self.total
        if not (1 <= k <= n):
            raise ConfigurationError(f"rank k={k} out of range [1, {n}]")
        cum = np.cumsum(self._sizes)
        idx = int(np.searchsorted(cum, k, side="left"))
        within = k - (int(cum[idx - 1]) if idx else 0)
        bucket = self._buckets[idx]
        value = np.partition(bucket, within - 1)[within - 1]
        probes = max(1, log2_ceil(max(self.n_buckets, 2)))
        return value, BucketScan(touched=int(bucket.size), probes=probes)

    def count3_vs(self, pivot) -> tuple[int, int, int, BucketScan]:
        """Global (lt, eq, gt) counts vs ``pivot`` touching only straddlers."""
        if not self._buckets:
            return 0, 0, 0, BucketScan(0, 0)
        wholly_lt = self._maxs < pivot
        wholly_gt = self._mins > pivot
        straddle = ~(wholly_lt | wholly_gt)
        lt = int(self._sizes[wholly_lt].sum())
        gt = int(self._sizes[wholly_gt].sum())
        eq = 0
        touched = 0
        for i in np.flatnonzero(straddle):
            b = self._buckets[i]
            b_lt = int(np.count_nonzero(b < pivot))
            b_gt = int(np.count_nonzero(b > pivot))
            lt += b_lt
            gt += b_gt
            eq += int(b.size) - b_lt - b_gt
            touched += int(b.size)
        probes = max(1, log2_ceil(max(self.n_buckets, 2)))
        return lt, eq, gt, BucketScan(touched=touched, probes=probes)

    def split3_vs(self, pivot) -> tuple["LocalBuckets", "LocalBuckets", BucketScan]:
        """Non-destructive 3-way fork at ``pivot``: (keys ``<``, keys ``>``).

        Keys equal to the pivot are dropped (the caller has already resolved
        the ranks they occupy). Wholesale buckets are shared by reference —
        bucket arrays are never mutated in place, so the two children can
        alias them safely; only straddling buckets are filtered (and
        counted as touched). Used by the contraction engine when a pivot
        lands *between* two target ranks and both sides must survive.
        """
        low: list[np.ndarray] = []
        high: list[np.ndarray] = []
        touched = 0
        for i, b in enumerate(self._buckets):
            if self._maxs[i] < pivot:
                low.append(b)
            elif self._mins[i] > pivot:
                high.append(b)
            else:
                touched += int(b.size)
                lt = b[b < pivot]
                gt = b[b > pivot]
                if lt.size:
                    low.append(lt)
                if gt.size:
                    high.append(gt)
        probes = max(1, log2_ceil(max(self.n_buckets, 2)))
        return (
            LocalBuckets(low),
            LocalBuckets(high),
            BucketScan(touched=touched, probes=probes),
        )

    # ------------------------------------------------------------- updates

    def keep_lt(self, pivot) -> BucketScan:
        """Discard every key >= ``pivot``; returns cost evidence."""
        return self._keep(lambda b: b[b < pivot], lambda mx: mx < pivot,
                          lambda mn: mn >= pivot)

    def keep_gt(self, pivot) -> BucketScan:
        """Discard every key <= ``pivot``."""
        return self._keep(lambda b: b[b > pivot], lambda mx: False,
                          lambda mn: False, keep_whole=lambda i: self._mins[i] > pivot,
                          drop_whole=lambda i: self._maxs[i] <= pivot)

    def _keep(self, filt, keep_max, drop_min, keep_whole=None, drop_whole=None):
        touched = 0
        kept: list[np.ndarray] = []
        for i, b in enumerate(self._buckets):
            whole_keep = keep_whole(i) if keep_whole else keep_max(self._maxs[i])
            whole_drop = drop_whole(i) if drop_whole else drop_min(self._mins[i])
            if whole_keep:
                kept.append(b)
            elif whole_drop:
                continue
            else:
                touched += int(b.size)
                nb = filt(b)
                if nb.size:
                    kept.append(nb)
        self._buckets = kept
        self._refresh()
        probes = max(1, log2_ceil(max(len(kept), 2)))
        return BucketScan(touched=touched, probes=probes)
