"""Sequential building blocks: partitioning, selection, weighted median,
bucket preprocessing — each with a simulated-cost companion."""

from .buckets import BucketScan, LocalBuckets, build_cost, default_n_buckets
from .costed import CostedKernels
from .dispatch import (
    KERNEL_MODES,
    KERNELS_ENV_VAR,
    default_kernels_mode,
    resolve_kernels,
)
from .partition import (
    Partition2,
    Partition3,
    count3,
    partition2,
    partition3,
    partition_band,
    partition_cost,
)
from .select import (
    SelectMethod,
    local_median,
    median_rank,
    select_cost,
    select_deterministic,
    select_introselect,
    select_kth,
    select_randomized,
)
from .weighted_median import weighted_median, weighted_median_cost

__all__ = [
    "BucketScan",
    "KERNEL_MODES",
    "KERNELS_ENV_VAR",
    "LocalBuckets",
    "build_cost",
    "default_kernels_mode",
    "resolve_kernels",
    "default_n_buckets",
    "CostedKernels",
    "Partition2",
    "Partition3",
    "count3",
    "partition2",
    "partition3",
    "partition_band",
    "partition_cost",
    "SelectMethod",
    "local_median",
    "median_rank",
    "select_cost",
    "select_deterministic",
    "select_introselect",
    "select_kth",
    "select_randomized",
    "weighted_median",
    "weighted_median_cost",
]
