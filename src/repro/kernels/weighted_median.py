"""Weighted median — the pivot rule of the bucket-based algorithm.

Algorithm 2 replaces the median of local medians by the *weighted* median of
the local medians, each weighted by the number of keys still alive on its
processor. This keeps the guaranteed-discard fraction of the deterministic
analysis intact even when processors hold unequal loads (Section 3.2).

Definition used (lower weighted median): given values ``v_1..v_p`` with
non-negative weights ``w_1..w_p`` and ``W = sum(w)``, the weighted median is
the smallest value ``v_j`` (in sorted order) whose cumulative weight reaches
``W / 2``. With all weights equal this coincides with the paper's median of
rank ``ceil(p/2)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..machine.cost_model import CostModel

__all__ = ["weighted_median", "weighted_median_cost"]


def weighted_median(values: np.ndarray, weights: np.ndarray):
    """Lower weighted median of ``values`` under ``weights``.

    Zero-weight entries are ignored (a processor that ran out of keys must
    not influence the pivot). Raises if every weight is zero.
    """
    values = np.asarray(values)
    weights = np.asarray(weights, dtype=np.float64)
    if values.shape != weights.shape or values.ndim != 1:
        raise ConfigurationError(
            f"values/weights must be equal-length 1-D arrays, got "
            f"{values.shape} vs {weights.shape}"
        )
    if np.any(weights < 0):
        raise ConfigurationError("weights must be non-negative")
    alive = weights > 0
    if not np.any(alive):
        raise ConfigurationError("weighted_median of all-zero weights")
    values = values[alive]
    weights = weights[alive]
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order])
    total = cum[-1]
    # Smallest index with cumulative weight >= total / 2.
    idx = int(np.searchsorted(cum, total / 2.0, side="left"))
    return values[order][idx]


def weighted_median_cost(model: CostModel, p: int) -> float:
    """Simulated cost: sort of ``p`` medians plus one cumulative pass."""
    p = max(1, p)
    return model.compute.sort_per_cmp * p * max(1.0, np.log2(p)) + (
        model.compute.scan * p
    )
