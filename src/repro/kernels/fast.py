"""Wall-clock-tuned twins of the hot reference kernels.

Each function here is value-identical to its reference twin in
:mod:`repro.kernels.partition` / :mod:`repro.kernels.buckets` — including
element *order* wherever order can reach a positional pivot draw — and is
only ever selected by :class:`~repro.kernels.costed.CostedKernels` in
``fast`` mode (see :mod:`repro.kernels.dispatch` for the contract).
Simulated charges are untouched: they are computed from the reference
cost formulas before the executing kernel is chosen.

Where the speed comes from:

* :class:`LazyPartition3` — the contraction engine classifies with the
  (lt, eq) *counts* and only reads the ``lt``/``gt`` gathers for the side
  it keeps; the reference kernel eagerly materialises all three. Deferring
  the gathers skips at least the ``eq`` copy every iteration and both
  untaken sides when the target lands in the equality band.
* :func:`fast_partition_multiway` — the reference groups segments with a
  stable argsort (``O(n log n)`` with a big constant). For the dominant
  single-cut case two boolean masks and three gathers do the same job
  ~4x faster; small cut counts use one ``searchsorted`` classification
  plus per-segment mask gathers. Both preserve the original element order
  within every segment, exactly like a stable argsort.
* :func:`fast_build_buckets` — the reference recursively halves with
  ``log2(B)`` full ``np.partition`` levels. One multi-kth
  ``np.partition`` at the recursion's final boundaries produces the same
  bucket *multisets* in a single pass. Intra-bucket order differs, which
  is immaterial: every downstream bucket operation (kth via
  ``np.partition``, straddler counts, min/max fences) is value-based.
* select kernels — in fast mode the *executing* sequential selection is
  ``introselect`` (``np.partition``) whatever method is charged,
  generalising the long-standing ``impl_override`` contract: the k-th
  smallest is a unique value, so every implementation agrees, and no rng
  handed to a select kernel ever feeds a later positional draw.

``numba`` accelerates nothing critical here (NumPy already executes these
as C loops), so it is probed but optional — a soft dependency that must
never be required.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..machine.topology import next_power_of_two
from . import partition as _partition
from .buckets import LocalBuckets

try:  # soft dependency: used opportunistically, never required
    import numba  # noqa: F401

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - depends on host environment
    HAVE_NUMBA = False

__all__ = [
    "HAVE_NUMBA",
    "LazyPartition3",
    "fast_build_buckets",
    "fast_partition3",
    "fast_partition_multiway",
]

#: Above this many cuts the mask-gather multiway loop loses to the
#: reference argsort grouping; fall back.
_MULTIWAY_FAST_MAX_CUTS = 8


class LazyPartition3:
    """Drop-in for :class:`~repro.kernels.partition.Partition3` that
    defers the side gathers until (and unless) they are read."""

    __slots__ = (
        "_arr", "_lt_mask", "_gt_mask", "_lt", "_eq", "_gt",
        "n_lt", "n_eq", "n_gt",
    )

    def __init__(self, arr: np.ndarray, pivot):
        self._arr = arr
        self._lt_mask = arr < pivot
        self._gt_mask = arr > pivot
        self.n_lt = int(np.count_nonzero(self._lt_mask))
        self.n_gt = int(np.count_nonzero(self._gt_mask))
        self.n_eq = int(arr.size) - self.n_lt - self.n_gt
        self._lt = self._eq = self._gt = None

    @property
    def lt(self) -> np.ndarray:
        if self._lt is None:
            self._lt = self._arr[self._lt_mask]
        return self._lt

    @property
    def gt(self) -> np.ndarray:
        if self._gt is None:
            self._gt = self._arr[self._gt_mask]
        return self._gt

    @property
    def eq(self) -> np.ndarray:
        if self._eq is None:
            self._eq = self._arr[~(self._lt_mask | self._gt_mask)]
        return self._eq


def fast_partition3(arr: np.ndarray, pivot) -> LazyPartition3:
    """3-way split with deferred gathers (mask order == reference order)."""
    return LazyPartition3(arr, pivot)


def fast_partition_multiway(arr: np.ndarray, cuts) -> list[np.ndarray]:
    """Mask-based multiway split; falls back to the reference past
    :data:`_MULTIWAY_FAST_MAX_CUTS` cut values.

    Boolean-mask gathers preserve original element order within each
    segment, exactly like the reference's stable argsort grouping, so the
    two produce identical arrays — order included.
    """
    cuts = np.asarray(cuts)
    if cuts.ndim != 1 or cuts.size == 0:
        raise ConfigurationError(
            "partition_multiway needs a 1-D, non-empty cut list"
        )
    if cuts.size == 1:
        pivot = cuts[0]
        lt_mask = arr < pivot
        gt_mask = arr > pivot
        return [arr[lt_mask], arr[~(lt_mask | gt_mask)], arr[gt_mask]]
    if cuts.size > _MULTIWAY_FAST_MAX_CUTS:
        return _partition.partition_multiway(arr, cuts)
    if np.any(np.diff(cuts) <= 0):
        raise ConfigurationError(
            "cut values must be strictly ascending (dedupe first)"
        )
    seg = np.searchsorted(cuts, arr, side="left") + np.searchsorted(
        cuts, arr, side="right"
    )
    return [arr[seg == j] for j in range(2 * cuts.size + 1)]


def _halved_sizes(n: int, b: int) -> list[int]:
    """Final segment sizes of the reference build's halving recursion."""
    sizes = [n]
    while len(sizes) < b:
        nxt: list[int] = []
        for s in sizes:
            if s <= 1:
                nxt.extend([s, 0])
            else:
                mid = s // 2
                nxt.extend([mid, s - mid])
        sizes = nxt
    return sizes


def fast_build_buckets(arr: np.ndarray, n_buckets: int) -> LocalBuckets:
    """Reference-equivalent bucket build in one multi-kth partition pass.

    The reference recursion only ever splits segments at positional
    medians, so its final buckets are, as multisets, consecutive slices of
    the sorted array at deterministic boundaries. Reproducing those
    boundary sizes and handing them to one ``np.partition`` call yields
    buckets with identical sizes, mins and maxes — everything
    :class:`LocalBuckets` exposes to the algorithms.
    """
    if n_buckets < 1:
        raise ConfigurationError(f"n_buckets must be >= 1, got {n_buckets}")
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ConfigurationError("LocalBuckets expects a 1-D array")
    b = next_power_of_two(n_buckets)
    sizes = _halved_sizes(int(arr.size), b)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    kth = [int(x) - 1 for x in bounds[1:-1] if 0 < x < arr.size]
    part = np.partition(arr, kth) if kth else arr.copy()
    return LocalBuckets(
        [part[bounds[j]: bounds[j + 1]] for j in range(b)]
    )
