"""Kernel-mode dispatch: ``reference`` vs the opt-in ``fast`` path.

The reference kernels in this package are written for auditability: their
shapes mirror the paper's pseudocode and the cost formulas charged against
them. :mod:`repro.kernels.fast` provides drop-in replacements tuned for
wall clock (lazier gathers, multi-kth ``np.partition``, mask-based
multiway splits), bound by one contract:

* **Identical values.** Every fast kernel returns bit-identical results
  (and, where order can leak into downstream pivot draws, identically
  *ordered* results) to its reference twin.
* **Identical charges.** Simulated costs always follow the reference
  cost formulas — the fast path changes how fast the host computes, never
  what the simulated machine is charged.

Selection: ``SelectionPlan(kernels="fast")`` per plan, or the
``REPRO_KERNELS`` environment variable as the process-wide default (how
CI runs the whole value suite under each mode). ``numba`` is used for a
few kernels when importable — a soft dependency, never required.
"""

from __future__ import annotations

import os

from ..errors import ConfigurationError

__all__ = [
    "KERNELS_ENV_VAR",
    "KERNEL_MODES",
    "default_kernels_mode",
    "resolve_kernels",
]

#: Environment variable naming the process-wide default kernel mode.
KERNELS_ENV_VAR = "REPRO_KERNELS"

#: Valid kernel modes.
KERNEL_MODES = ("reference", "fast")


def default_kernels_mode() -> str:
    """``REPRO_KERNELS`` if set (validated), else ``"reference"``."""
    mode = os.environ.get(KERNELS_ENV_VAR, "").strip()
    if not mode:
        return "reference"
    if mode not in KERNEL_MODES:
        raise ConfigurationError(
            f"unknown kernel mode {mode!r} in ${KERNELS_ENV_VAR}; "
            f"available: {sorted(KERNEL_MODES)}"
        )
    return mode


def resolve_kernels(kernels: str | None) -> str:
    """Normalise ``None`` (env default / reference) or a mode name."""
    if kernels is None:
        return default_kernels_mode()
    if kernels not in KERNEL_MODES:
        raise ConfigurationError(
            f"unknown kernel mode {kernels!r}; "
            f"available: {sorted(KERNEL_MODES)}"
        )
    return kernels
