"""Vectorised partition kernels (Step 4/5 of every selection algorithm).

The paper's pseudocode partitions local lists into ``<= pivot`` / ``> pivot``.
That 2-way scheme livelocks when all surviving keys equal the pivot, so the
library's algorithms use the 3-way split (``<``, ``==``, ``>``) and terminate
the moment the target rank lands in the ``==`` band (DESIGN.md deviation #1).
Both kernels are provided; the 2-way one is kept for the ablation bench that
demonstrates the livelock on duplicate-heavy inputs.

All kernels are single NumPy passes (boolean masks) per the hpc-parallel
guide: no Python-level loops over elements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..machine.cost_model import CostModel

__all__ = [
    "Partition2",
    "Partition3",
    "partition2",
    "partition3",
    "count3",
    "partition_band",
    "partition_cost",
    "partition_multiway",
    "partition_multiway_cost",
]


@dataclass(frozen=True)
class Partition2:
    """Result of a 2-way split around ``pivot``."""

    le: np.ndarray
    gt: np.ndarray

    @property
    def n_le(self) -> int:
        return int(self.le.size)

    @property
    def n_gt(self) -> int:
        return int(self.gt.size)


@dataclass(frozen=True)
class Partition3:
    """Result of a 3-way split around ``pivot``."""

    lt: np.ndarray
    eq: np.ndarray
    gt: np.ndarray

    @property
    def n_lt(self) -> int:
        return int(self.lt.size)

    @property
    def n_eq(self) -> int:
        return int(self.eq.size)

    @property
    def n_gt(self) -> int:
        return int(self.gt.size)


def partition2(arr: np.ndarray, pivot) -> Partition2:
    """Split ``arr`` into (``<= pivot``, ``> pivot``) — the paper's Step 4."""
    mask = arr <= pivot
    return Partition2(le=arr[mask], gt=arr[~mask])


def partition3(arr: np.ndarray, pivot) -> Partition3:
    """Split ``arr`` into (``< pivot``, ``== pivot``, ``> pivot``)."""
    lt_mask = arr < pivot
    gt_mask = arr > pivot
    eq_mask = ~(lt_mask | gt_mask)
    return Partition3(lt=arr[lt_mask], eq=arr[eq_mask], gt=arr[gt_mask])


def count3(arr: np.ndarray, pivot) -> tuple[int, int, int]:
    """Counts of (``<``, ``==``, ``>``) without materialising the splits."""
    lt = int(np.count_nonzero(arr < pivot))
    gt = int(np.count_nonzero(arr > pivot))
    return lt, int(arr.size - lt - gt), gt


def partition_band(arr: np.ndarray, lo, hi) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``arr`` into (``< lo``, ``[lo, hi]``, ``> hi``) — Step 5 of the
    fast randomized algorithm (Algorithm 4)."""
    less_mask = arr < lo
    high_mask = arr > hi
    mid_mask = ~(less_mask | high_mask)
    return arr[less_mask], arr[mid_mask], arr[high_mask]


def partition_cost(model: CostModel, n: int) -> float:
    """Simulated cost of one partition pass over ``n`` local elements."""
    return model.compute.partition * max(0, n)


def partition_multiway(arr: np.ndarray, cuts) -> list[np.ndarray]:
    """Split ``arr`` at ``c`` sorted cut values into ``2c + 1`` segments.

    Segments alternate open ranges and equality bands, in value order::

        (< cuts[0]), (== cuts[0]), (cuts[0], cuts[1]), (== cuts[1]), ...,
        (> cuts[-1])

    With ``c == 1`` this is exactly :func:`partition3`. The multi-rank
    contraction engine uses it to fork the live set at *several* pivots in a
    single pass (one iteration of single-pass multi-rank selection instead
    of one pass per pivot). One vectorised ``searchsorted`` pair classifies
    every element; a stable argsort groups the segments.
    """
    cuts = np.asarray(cuts)
    if cuts.ndim != 1 or cuts.size == 0:
        raise ConfigurationError(
            "partition_multiway needs a 1-D, non-empty cut list"
        )
    if cuts.size > 1 and np.any(np.diff(cuts) <= 0):
        raise ConfigurationError(
            "cut values must be strictly ascending (dedupe first)"
        )
    # Element strictly between cuts j-1 and j lands in segment 2j; an
    # element equal to cuts[j] lands in segment 2j + 1.
    seg = np.searchsorted(cuts, arr, side="left") + np.searchsorted(
        cuts, arr, side="right"
    )
    order = np.argsort(seg, kind="stable")
    sizes = np.bincount(seg, minlength=2 * cuts.size + 1)
    grouped = arr[order]
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [
        grouped[bounds[j]: bounds[j + 1]] for j in range(2 * cuts.size + 1)
    ]


def partition_multiway_cost(model: CostModel, n: int, n_cuts: int) -> float:
    """Simulated cost of a multiway partition pass: each of the ``n``
    elements binary-searches the ``c`` cut values (``ceil(log2(c + 1))``
    probe depth) and is moved once."""
    depth = max(1.0, np.ceil(np.log2(max(n_cuts, 1) + 1)))
    return model.compute.partition * max(0, n) * depth
