"""Parallel sorting substrate (sample sort) for fast randomized selection."""

from .sample_sort import element_at_global_rank, is_globally_sorted, sample_sort

__all__ = ["element_at_global_rank", "is_globally_sorted", "sample_sort"]
