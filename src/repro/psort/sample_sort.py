"""Parallel sample sort — the ``ParallelSort`` of Algorithm 4, Step 2.

Fast randomized selection sorts a *sample* of ``o(n)`` keys each iteration;
the paper invokes an unspecified parallel sort for this. We implement the
standard coarse-grained sample sort:

1. sort locally;
2. every rank contributes ``p`` regular samples of its sorted run; rank 0
   sorts the ``p^2`` samples and broadcasts ``p - 1`` splitters;
3. one transportation-primitive round routes each key to the rank owning its
   splitter interval;
4. every rank merges the sorted runs it received.

Output: the global data sorted *across* ranks — rank ``i``'s keys all
precede rank ``i+1``'s. Shard sizes are data-dependent (classic sample-sort
skew, bounded in expectation); :func:`element_at_global_rank` then answers
"which key has global rank r" with one Global Concatenate of counts and a
broadcast from the owner, which is exactly what Algorithm 4 Steps 3-4 need.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext

__all__ = [
    "sample_sort",
    "element_at_global_rank",
    "elements_at_global_ranks",
    "is_globally_sorted",
]


def sample_sort(
    ctx: ProcContext, kernels: CostedKernels, arr: np.ndarray
) -> np.ndarray:
    """Collectively sort the distributed array; returns this rank's run."""
    p = ctx.size
    local = kernels.sort(np.asarray(arr))
    if p == 1:
        return local

    # -- splitter selection (regular sampling) -----------------------------
    if local.size:
        idx = (np.arange(1, p + 1) * local.size) // (p + 1)
        idx = np.clip(idx, 0, local.size - 1)
        my_samples = local[idx]
    else:
        my_samples = local[:0]
    gathered = ctx.comm.gather(my_samples, root=0)
    if ctx.rank == 0:
        live = [g for g in gathered if g is not None and g.size]
        pool = np.concatenate(live) if live else local[:0]
        if pool.size == 0:
            splitters = pool
        else:
            pool = kernels.sort(pool)
            pos = (np.arange(1, p) * pool.size) // p
            splitters = pool[np.clip(pos, 0, pool.size - 1)]
    else:
        splitters = None
    splitters = ctx.comm.broadcast(splitters, root=0)

    # -- route keys to splitter intervals -----------------------------------
    if splitters.size == 0:
        # Degenerate: no data anywhere.
        bounds = np.zeros(p + 1, dtype=np.int64)
    else:
        cuts = np.searchsorted(local, splitters, side="right")
        bounds = np.concatenate([[0], cuts, [local.size]]).astype(np.int64)
        kernels.ctx.charge_compute(
            kernels.model.compute.binary_search_step
            * splitters.size
            * max(1.0, np.log2(max(local.size, 2)))
        )
    sends: list[np.ndarray | None] = []
    for d in range(p):
        lo, hi = int(bounds[d]), int(bounds[d + 1])
        sends.append(local[lo:hi] if hi > lo else None)
    received = ctx.comm.alltoallv(sends)

    # -- merge sorted runs ---------------------------------------------------
    runs = [r for r in received if r is not None and r.size]
    if not runs:
        return local[:0]
    merged = np.concatenate(runs)
    # A k-way merge is O(m log p); charge that rather than a full sort even
    # though NumPy re-sorts (timsort-style kinds exploit the runs anyway).
    kernels.ctx.charge_compute(
        kernels.model.compute.sort_per_cmp
        * merged.size
        * max(1.0, np.log2(max(len(runs), 2)))
    )
    return np.sort(merged, kind="stable")


def element_at_global_rank(
    ctx: ProcContext, sorted_run: np.ndarray, rank_1based: int
):
    """Key of global rank ``r`` (1-based) in a distributed *sorted* array.

    One Global Concatenate of run lengths locates the owning rank; the owner
    broadcasts the key (Algorithm 4, Steps 3-4).
    """
    counts = np.array(ctx.comm.global_concat(int(sorted_run.size)), dtype=np.int64)
    total = int(counts.sum())
    if not (1 <= rank_1based <= total):
        raise ConfigurationError(
            f"global rank {rank_1based} out of range [1, {total}]"
        )
    ends = np.cumsum(counts)
    owner = int(np.searchsorted(ends, rank_1based, side="left"))
    if ctx.rank == owner:
        within = rank_1based - (int(ends[owner - 1]) if owner else 0)
        value = sorted_run[within - 1]
    else:
        value = None
    return ctx.comm.broadcast(value, root=owner)


def elements_at_global_ranks(
    ctx: ProcContext, sorted_run: np.ndarray, ranks_1based: list[int]
) -> list:
    """Keys of several global ranks of a distributed *sorted* array.

    The batched sibling of :func:`element_at_global_rank`: one Global
    Concatenate of run lengths locates every owner, then a single Global
    Concatenate of each rank's contributions delivers all the keys — two
    collectives total instead of two *per rank looked up*. The multi-rank
    contraction engine uses it to fetch every bracket boundary of an
    iteration at once.
    """
    if not ranks_1based:
        return []
    counts = np.array(ctx.comm.global_concat(int(sorted_run.size)), dtype=np.int64)
    total = int(counts.sum())
    for r in ranks_1based:
        if not (1 <= r <= total):
            raise ConfigurationError(
                f"global rank {r} out of range [1, {total}]"
            )
    ends = np.cumsum(counts)
    mine: list[tuple[int, object]] = []
    for i, r in enumerate(ranks_1based):
        owner = int(np.searchsorted(ends, r, side="left"))
        if ctx.rank == owner:
            within = r - (int(ends[owner - 1]) if owner else 0)
            mine.append((i, sorted_run[within - 1]))
    contributions = ctx.comm.global_concat(mine)
    values: list = [None] * len(ranks_1based)
    for chunk in contributions:
        for i, v in chunk:
            values[i] = v
    return values


def is_globally_sorted(runs: list[np.ndarray]) -> bool:
    """Test helper: each run ascending and consecutive runs non-overlapping."""
    prev_max = None
    for run in runs:
        if run.size == 0:
            continue
        if np.any(np.diff(run) < 0):
            return False
        if prev_max is not None and run[0] < prev_max:
            return False
        prev_max = run[-1]
    return True
