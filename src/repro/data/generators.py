"""Workload generators — the paper's two input classes plus stress variants.

The evaluation (Section 5) uses two inputs:

* ``random`` — ``n/p`` uniformly random keys generated on each processor
  ("close to the best case");
* ``sorted`` — the keys ``0..n-1`` with processor ``P_i`` holding the
  contiguous block ``i*n/p .. (i+1)*n/p - 1`` ("close to the worst case":
  after one iteration roughly half the processors lose all their keys).

Beyond those we provide distributions that stress different failure modes of
selection/load-balancing codes: reverse-sorted (worst case mirrored),
all-equal and few-distinct (duplicate handling — the inputs on which the
paper's 2-way partition livelocks), gaussian (clustered pivots), zipf
(heavy-tailed duplicates), and organ-pipe (adversarial for positional
median splits).

All generators are pure functions of ``(n, p, seed)`` and return one NumPy
array per processor; dtype is ``float64`` for continuous families and
``int64`` for integral ones.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigurationError

__all__ = ["DISTRIBUTIONS", "generate_shards", "shard_sizes", "describe"]


def shard_sizes(n: int, p: int) -> list[int]:
    """Block-distributed shard sizes: ``ceil``/``floor`` of ``n/p`` (the
    paper's starting condition: every processor gets n/p elements)."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    base, extra = divmod(n, p)
    return [base + (1 if r < extra else 0) for r in range(p)]


def _random(n: int, p: int, seed: int) -> list[np.ndarray]:
    sizes = shard_sizes(n, p)
    return [
        np.random.default_rng((seed, r)).random(sizes[r]) for r in range(p)
    ]


def _sorted(n: int, p: int, seed: int) -> list[np.ndarray]:
    sizes = shard_sizes(n, p)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    return [
        np.arange(offsets[r], offsets[r + 1], dtype=np.int64) for r in range(p)
    ]


def _reverse_sorted(n: int, p: int, seed: int) -> list[np.ndarray]:
    return [shard[::-1].copy() for shard in _sorted(n, p, seed)][::-1]


def _all_equal(n: int, p: int, seed: int) -> list[np.ndarray]:
    sizes = shard_sizes(n, p)
    return [np.full(sizes[r], 42, dtype=np.int64) for r in range(p)]


def _few_distinct(n: int, p: int, seed: int) -> list[np.ndarray]:
    sizes = shard_sizes(n, p)
    return [
        np.random.default_rng((seed, r)).integers(0, 8, size=sizes[r])
        for r in range(p)
    ]


def _gaussian(n: int, p: int, seed: int) -> list[np.ndarray]:
    sizes = shard_sizes(n, p)
    return [
        np.random.default_rng((seed, r)).normal(0.0, 1.0, size=sizes[r])
        for r in range(p)
    ]


def _zipf(n: int, p: int, seed: int) -> list[np.ndarray]:
    sizes = shard_sizes(n, p)
    return [
        np.random.default_rng((seed, r)).zipf(1.5, size=sizes[r]).astype(np.int64)
        for r in range(p)
    ]


def _organ_pipe(n: int, p: int, seed: int) -> list[np.ndarray]:
    """Ascending then descending ramp, block-distributed."""
    half = n // 2
    full = np.concatenate(
        [np.arange(half, dtype=np.int64), np.arange(n - half, dtype=np.int64)[::-1]]
    )
    sizes = shard_sizes(n, p)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    return [full[offsets[r]: offsets[r + 1]].copy() for r in range(p)]


def _skewed_shards(n: int, p: int, seed: int) -> list[np.ndarray]:
    """Uniform values but *unbalanced* shard sizes (first rank holds ~half):
    exercises load balancers on their own, independent of selection."""
    rng = np.random.default_rng((seed, 0xB17))
    remaining = n
    sizes = []
    for r in range(p - 1):
        take = remaining // 2 if r == 0 else int(rng.integers(0, remaining // 2 + 1))
        sizes.append(take)
        remaining -= take
    sizes.append(remaining)
    return [np.random.default_rng((seed, r)).random(s) for r, s in enumerate(sizes)]


DISTRIBUTIONS: dict[str, Callable[[int, int, int], list[np.ndarray]]] = {
    "random": _random,
    "sorted": _sorted,
    "reverse_sorted": _reverse_sorted,
    "all_equal": _all_equal,
    "few_distinct": _few_distinct,
    "gaussian": _gaussian,
    "zipf": _zipf,
    "organ_pipe": _organ_pipe,
    "skewed_shards": _skewed_shards,
}


def generate_shards(
    n: int, p: int, distribution: str = "random", seed: int = 0
) -> list[np.ndarray]:
    """One shard per processor for the named distribution.

    ``random`` and ``sorted`` reproduce the paper's Section 5 inputs exactly
    (modulo RNG). Total element count across shards is always ``n``.
    """
    try:
        gen = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution {distribution!r}; "
            f"available: {sorted(DISTRIBUTIONS)}"
        ) from None
    shards = gen(n, p, seed)
    assert sum(s.size for s in shards) == n
    return shards


def describe(distribution: str) -> str:
    """One-line description used by the bench harness reports."""
    docs = {
        "random": "uniform random per processor (paper's best case)",
        "sorted": "globally sorted blocks (paper's worst case)",
        "reverse_sorted": "globally reverse-sorted blocks",
        "all_equal": "every key identical (duplicate livelock stress)",
        "few_distinct": "8 distinct values (duplicate stress)",
        "gaussian": "normal(0,1) per processor",
        "zipf": "heavy-tailed integer duplicates",
        "organ_pipe": "ascending then descending ramp",
        "skewed_shards": "uniform values, heavily unbalanced shard sizes",
    }
    return docs.get(distribution, distribution)
