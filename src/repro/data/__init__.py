"""Workload generators for the paper's evaluation inputs and stress tests."""

from .generators import DISTRIBUTIONS, describe, generate_shards, shard_sizes

__all__ = ["DISTRIBUTIONS", "describe", "generate_shards", "shard_sizes"]
