"""RPR4xx — honest simulated-cost accounting.

Every simulated time this reproduction reports is the sum of explicit
charges: collectives price themselves through the topology schedules, and
*local* NumPy passes must be paid for via ``ctx.charge_compute`` or a
costed wrapper (:class:`repro.kernels.costed.CostedKernels`). A kernel
that touches a shard without charging silently deflates the simulated
clock — the model stays plausible and wrong, which is worse than broken.

* **RPR401** — a function in a costed path (``kernels/``, ``selection/``,
  ``psort/``, ``balance/``, ``stream/`` by default; configurable) that
  *could* charge (it has a ``ctx``/``kernels``/``K`` seam in scope) makes
  a direct array-pass NumPy call (``np.sort``, ``np.partition``,
  ``np.concatenate``, ...) but contains **no** charging call at all.

Granularity is per enclosing function, as a reviewable approximation:
one charge in the function is taken as evidence the author did the cost
math for the whole block. Pure implementation modules whose *callers*
charge (the ``CostedKernels`` pattern) either have no charging seam in
scope — and are skipped automatically — or can declare the module pragma
``# repro: costed-by-caller``.
"""

from __future__ import annotations

import ast

from ..core import ModuleContext, Rule, register_rule
from ..spmd import function_params

__all__ = ["UnchargedNumpyPass"]

#: NumPy module functions that are O(n) (or worse) passes over array data.
_NP_PASSES = frozenset(
    {
        "sort",
        "argsort",
        "lexsort",
        "partition",
        "argpartition",
        "concatenate",
        "unique",
        "bincount",
        "histogram",
        "median",
        "percentile",
        "quantile",
    }
)

#: Method names that advance the simulated clock.
_CHARGE_METHODS = frozenset(
    {"charge_compute", "charge_scan_evidence", "scan_pass", "rng_draw"}
)

#: Receivers whose *every* method call is a costed wrapper.
_KERNEL_NAMES = frozenset({"K", "kernels", "kern"})


def _is_charge_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _CHARGE_METHODS:
        return True
    base = func.value
    if isinstance(base, ast.Name) and base.id in _KERNEL_NAMES:
        return True
    if isinstance(base, ast.Attribute) and base.attr in _KERNEL_NAMES:
        return True
    return False


def _references_charging_seam(fn: ast.AST) -> bool:
    """Does ``fn`` have a clock in scope (``self.ctx`` / ``self.K`` ...)?"""
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and node.attr in (
            {"ctx"} | _KERNEL_NAMES
        ):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return True
    return False


@register_rule
class UnchargedNumpyPass(Rule):
    code = "RPR401"
    name = "uncharged-numpy-pass"
    description = (
        "array-pass NumPy call in a costed path without any "
        "charge_compute/costed-wrapper call in the enclosing function "
        "(simulated time silently under-counts)"
    )
    hint = (
        "route the pass through CostedKernels (K.sort/K.partition3/...) "
        "or pair it with ctx.charge_compute(<cost formula>); if the "
        "caller charges on this module's behalf, declare "
        "`# repro: costed-by-caller`"
    )

    def check(self, module: ModuleContext):
        if not module.config.in_costed_paths(module.posix_path):
            return
        if "costed-by-caller" in module.pragmas:
            return
        numpy_names = module.alias_of("numpy")
        if not numpy_names:
            return
        for fn in module.functions():
            params = function_params(fn)
            charge_capable = bool(
                params & ({"ctx"} | _KERNEL_NAMES)
            ) or _references_charging_seam(fn)
            if not charge_capable:
                continue
            passes: list[ast.Call] = []
            charges = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if _is_charge_call(node):
                    charges = True
                    break
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _NP_PASSES
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in numpy_names
                ):
                    passes.append(node)
            if charges:
                continue
            for call in passes:
                yield self.finding(
                    module,
                    call,
                    f"`np.{call.func.attr}` pass with no simulated-cost "
                    "charge in `"
                    f"{getattr(fn, 'name', '<fn>')}`",
                    self.hint,
                )
