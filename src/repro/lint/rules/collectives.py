"""RPR1xx — collective lockstep matching.

The SPMD contract every backend relies on: **all ranks issue the same
collective sequence**. A collective reached under rank-dependent control
flow desynchronises the machine — some ranks park in the rendezvous while
the rest never arrive. The serial backend's deadlock detector catches this
at *runtime* (and ``REPRO_VERIFY=lockstep`` catches the dynamic cases with
call-site hashing); these rules catch the statically provable cases before
anything runs:

* **RPR101** — collective call lexically inside an ``if``/``elif``/ternary
  whose condition derives from ``*.rank``.
* **RPR102** — collective call inside a ``for``/``while`` whose iterable /
  condition derives from ``*.rank`` (rank-dependent trip count: ranks run
  the loop a different number of times).
* **RPR103** — rank-dependent early exit (``return``/``break``/
  ``continue`` under a rank-dependent condition) with collectives issued
  later in the function: the exiting rank skips them. A rank-dependent
  ``raise`` is *not* flagged — raising is the sanctioned failure path
  (the runtime aborts the rendezvous; siblings unwind with
  ``WorkerAborted`` instead of hanging).

Rank-conditional *values* are fine (``comm.broadcast(x if ctx.rank == root
else None, root)``); only rank-conditional *reachability* of the call is
flagged. Values that went through a collective (``combine`` results etc.)
are globally agreed and never taint.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, register_rule
from ..spmd import (
    collect_comm_aliases,
    collective_calls,
    expr_is_rank_tainted,
    is_collective_call,
    rank_tainted_names,
)

__all__ = ["CollectiveInRankBranch", "CollectiveInRankLoop", "RankEarlyExit"]


def _analyze(fn: ast.FunctionDef | ast.AsyncFunctionDef):
    aliases = collect_comm_aliases(fn)
    tainted = rank_tainted_names(fn, aliases)
    return aliases, tainted


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested function definitions."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _collectives_under(node: ast.AST, aliases: set[str]) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if is_collective_call(sub, aliases):
            yield sub


@register_rule
class CollectiveInRankBranch(Rule):
    code = "RPR101"
    name = "collective-in-rank-branch"
    description = (
        "collective/barrier call reachable only under a rank-dependent "
        "branch (classic SPMD deadlock)"
    )
    hint = (
        "hoist the collective out of the rank-dependent branch; pass "
        "rank-dependent *values* instead (e.g. `x if ctx.rank == root "
        "else None`)"
    )

    def check(self, module: ModuleContext):
        for fn in module.functions():
            aliases, tainted = _analyze(fn)
            for node in _own_nodes(fn):
                branches: list[ast.AST] = []
                if isinstance(node, ast.If) and expr_is_rank_tainted(
                    node.test, tainted, aliases
                ):
                    branches = [*node.body, *node.orelse]
                elif isinstance(node, ast.IfExp) and expr_is_rank_tainted(
                    node.test, tainted, aliases
                ):
                    branches = [node.body, node.orelse]
                for branch in branches:
                    for call in _collectives_under(branch, aliases):
                        yield self.finding(
                            module,
                            call,
                            f"collective `{call.func.attr}` is only reached "
                            "when a rank-dependent condition holds",
                            self.hint,
                        )


@register_rule
class CollectiveInRankLoop(Rule):
    code = "RPR102"
    name = "collective-in-rank-loop"
    description = (
        "collective/barrier call inside a loop whose trip count is "
        "rank-dependent (ranks desynchronise after the shortest loop)"
    )
    hint = (
        "make the trip count a global property (combine/broadcast it "
        "first) so every rank runs the loop the same number of times"
    )

    def check(self, module: ModuleContext):
        for fn in module.functions():
            aliases, tainted = _analyze(fn)
            for node in _own_nodes(fn):
                if isinstance(node, ast.For):
                    dependent = expr_is_rank_tainted(node.iter, tainted, aliases)
                elif isinstance(node, ast.While):
                    dependent = expr_is_rank_tainted(node.test, tainted, aliases)
                else:
                    continue
                if not dependent:
                    continue
                for part in (*node.body, *node.orelse):
                    for call in _collectives_under(part, aliases):
                        yield self.finding(
                            module,
                            call,
                            f"collective `{call.func.attr}` runs a "
                            "rank-dependent number of times",
                            self.hint,
                        )


@register_rule
class RankEarlyExit(Rule):
    code = "RPR103"
    name = "rank-dependent-early-exit"
    description = (
        "rank-dependent return/break/continue before later collectives "
        "(the exiting rank skips them and siblings hang)"
    )
    hint = (
        "restructure so every rank reaches every collective; broadcast "
        "the decision to exit instead of deciding per rank (raising is "
        "fine: it aborts the rendezvous cleanly)"
    )

    _EXITS = (ast.Return, ast.Break, ast.Continue)

    def check(self, module: ModuleContext):
        for fn in module.functions():
            aliases, tainted = _analyze(fn)
            calls = [c for c, _name in collective_calls(fn, aliases)]
            if not calls:
                continue
            last_collective_line = max(c.lineno for c in calls)
            for node in _own_nodes(fn):
                if not (
                    isinstance(node, ast.If)
                    and expr_is_rank_tainted(node.test, tainted, aliases)
                ):
                    continue
                for branch in (*node.body, *node.orelse):
                    for sub in ast.walk(branch):
                        if (
                            isinstance(sub, self._EXITS)
                            and sub.lineno < last_collective_line
                        ):
                            kind = type(sub).__name__.lower()
                            yield self.finding(
                                module,
                                sub,
                                f"rank-dependent `{kind}` skips collectives "
                                "issued later in this function",
                                self.hint,
                            )
