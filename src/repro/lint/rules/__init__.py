"""Rule families of ``repro.lint``.

Importing this package registers every rule with
:data:`repro.lint.core.RULE_REGISTRY`:

* ``RPR1xx`` (:mod:`.collectives`) — collective lockstep matching.
* ``RPR2xx`` (:mod:`.determinism`) — nondeterminism sources in SPMD code.
* ``RPR3xx`` (:mod:`.picklability`) — unpicklable launch payloads.
* ``RPR4xx`` (:mod:`.costing`) — uncharged local work.

Adding a rule: subclass :class:`repro.lint.core.Rule` in the matching
family module (or a new one imported here), pick the next free code in
the family, decorate with ``@register_rule``, add a dirty + clean fixture
pair under ``tests/lint_fixtures/`` and a case in ``tests/test_lint.py``.
"""

from . import collectives, costing, determinism, picklability

__all__ = ["collectives", "costing", "determinism", "picklability"]
