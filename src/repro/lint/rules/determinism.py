"""RPR2xx — determinism inside SPMD programs and kernels.

The reproduction's headline guarantee is bit-identical values, RNG streams
and simulated times across 4 backends and 4 topologies. That only holds if
rank code never consults a nondeterminism source. The sanctioned paths
are: per-rank seeded generators derived from the plan seed
(``np.random.default_rng((cfg.seed, ...))``), and the *simulated* clock
(``ctx.charge_compute`` / ``ctx.clock``) instead of wall time.

Scope: functions that run on simulated ranks (``ctx``/``kernels``/``K``
parameter, or issuing a collective) plus every function in ``kernels/``
modules. Host-side code — backends measuring ``wall_time``, benches,
serving glue — is intentionally out of scope.

* **RPR201** — wall-clock reads (``time.time``/``perf_counter``/...).
* **RPR202** — global RNG state: any ``random`` module call, any
  ``np.random.*`` module-state call, and *unseeded* generator
  construction (``np.random.default_rng()`` with no arguments).
* **RPR203** — ``id(...)``: CPython addresses differ per process, so
  id-keyed logic diverges across the process/pool backends.
* **RPR204** — iteration over a set expression: set order is
  hash-randomized across processes; sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, register_rule
from ..spmd import collect_comm_aliases, is_spmd_scope

__all__ = [
    "WallClockRead",
    "GlobalRNGState",
    "IdentityKeyedLogic",
    "SetIterationOrder",
]

_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)

#: np.random generator constructors that are deterministic *when seeded*.
_SEEDED_CTORS = frozenset(
    {"default_rng", "Generator", "PCG64", "Philox", "SFC64", "MT19937",
     "SeedSequence"}
)


def _spmd_functions(
    module: ModuleContext,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions the determinism contract applies to."""
    kernels_module = "kernels/" in module.posix_path
    for fn in module.functions():
        if kernels_module or is_spmd_scope(fn, collect_comm_aliases(fn)):
            yield fn


class _ScopedRule(Rule):
    """Base: run :meth:`check_function` over every SPMD-scope function."""

    def check(self, module: ModuleContext):
        seen: set[int] = set()
        for fn in _spmd_functions(module):
            for f in self.check_function(module, fn):
                # Nested defs are visited by their own pass too; dedupe.
                key = hash((f.line, f.col, f.code))
                if key not in seen:
                    seen.add(key)
                    yield f

    def check_function(self, module: ModuleContext, fn: ast.AST):
        raise NotImplementedError


@register_rule
class WallClockRead(_ScopedRule):
    code = "RPR201"
    name = "wall-clock-in-spmd"
    description = (
        "wall-clock read inside an SPMD program/kernel (simulated time "
        "must come from the logical clock)"
    )
    hint = (
        "charge the simulated clock (`ctx.charge_compute(...)`) or read "
        "`ctx.clock.now`; wall time belongs to the backend layer"
    )

    def check_function(self, module: ModuleContext, fn: ast.AST):
        time_names = module.alias_of("time")
        if not time_names:
            return
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _TIME_FNS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in time_names
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{node.func.value.id}.{node.func.attr}()` read inside "
                    "an SPMD program",
                    self.hint,
                )


@register_rule
class GlobalRNGState(_ScopedRule):
    code = "RPR202"
    name = "global-rng-in-spmd"
    description = (
        "global/module-state RNG inside an SPMD program/kernel (breaks "
        "cross-backend RNG-stream identity)"
    )
    hint = (
        "derive a per-rank generator from the plan seed: "
        "`np.random.default_rng((cfg.seed, ctx.rank, salt))`"
    )

    def check_function(self, module: ModuleContext, fn: ast.AST):
        random_names = module.alias_of("random")
        numpy_names = module.alias_of("numpy")
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            base = node.func.value
            # random.<anything>() — the stdlib module is global state.
            if isinstance(base, ast.Name) and base.id in random_names:
                yield self.finding(
                    module,
                    node,
                    f"stdlib `random.{node.func.attr}()` uses global RNG "
                    "state",
                    self.hint,
                )
                continue
            # np.random.<fn>() — module state, or unseeded construction.
            if (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_names
            ):
                attr = node.func.attr
                if attr in _SEEDED_CTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            module,
                            node,
                            f"`np.random.{attr}()` without a seed is "
                            "entropy-seeded (nondeterministic)",
                            self.hint,
                        )
                else:
                    yield self.finding(
                        module,
                        node,
                        f"`np.random.{attr}()` mutates NumPy's global RNG "
                        "state",
                        self.hint,
                    )


@register_rule
class IdentityKeyedLogic(_ScopedRule):
    code = "RPR203"
    name = "id-keyed-in-spmd"
    description = (
        "`id(...)` inside an SPMD program/kernel (object addresses differ "
        "across processes, so id-keyed logic diverges on the process/pool "
        "backends)"
    )
    hint = "key by value (fingerprint/bytes) or by (rank, index) instead"

    def check_function(self, module: ModuleContext, fn: ast.AST):
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield self.finding(
                    module,
                    node,
                    "`id(...)` is a per-process address, not a stable key",
                    self.hint,
                )


@register_rule
class SetIterationOrder(_ScopedRule):
    code = "RPR204"
    name = "set-iteration-in-spmd"
    description = (
        "iteration over a set expression inside an SPMD program/kernel "
        "(set order is hash-randomized across processes)"
    )
    hint = "iterate `sorted(...)` of the set so every rank sees one order"

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )

    def check_function(self, module: ModuleContext, fn: ast.AST):
        for node in ast.walk(fn):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        module,
                        it,
                        "iterating a set draws a hash-randomized order",
                        self.hint,
                    )
