"""RPR3xx — picklable launch payloads.

The process and pool backends ship the SPMD program (or a job descriptor
referencing it) across process boundaries. PR 6 paid for this invariant
the hard way: an unpicklable payload died silently on multiprocessing's
queue feeder thread and stranded the sibling ranks until the stall
timeout. These rules catch the static half at the launch seams
(``machine.run`` / ``runtime.run`` / ``run_spmd`` / ``Machine(...).run``):

* **RPR301** — a ``lambda`` anywhere in a launch call's arguments.
  Lambdas cannot be pickled at all; even on in-process backends they make
  the launch silently backend-dependent.
* **RPR302** — a locally defined program function that closes over a
  resource that cannot cross a process boundary: open files, locks /
  events / semaphores, generators, sockets, or ``Machine`` / runtime /
  backend objects. Closures ride the pool backend's one-shot inherited
  fork, but captured handles are duplicated per process — locks stop
  excluding, file offsets diverge, machines nest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, register_rule

__all__ = ["LambdaLaunchPayload", "RiskyClosureCapture"]

#: Receivers whose ``.run(...)`` is an SPMD launch seam.
_SEAM_BASES = frozenset({"machine", "runtime"})
_SEAM_CLASSES = frozenset({"Machine", "SPMDRuntime"})
_SEAM_FUNCS = frozenset({"run_spmd"})

#: Constructors whose results must not be captured by a launched closure.
_RISKY_CTORS: dict[str, str] = {
    "open": "an open file handle",
    "Lock": "a lock",
    "RLock": "a lock",
    "Semaphore": "a semaphore",
    "BoundedSemaphore": "a semaphore",
    "Condition": "a condition variable",
    "Event": "an event",
    "Barrier": "a barrier",
    "Queue": "a queue",
    "socket": "a socket",
    "iter": "a live iterator",
    "Machine": "a Machine (nests the runtime into its own workers)",
    "SPMDRuntime": "a runtime object",
}


def is_launch_seam(node: ast.Call) -> bool:
    """Is this call one of the SPMD launch entry points?"""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _SEAM_FUNCS
    if not (isinstance(func, ast.Attribute) and func.attr == "run"):
        return False
    base = func.value
    if isinstance(base, ast.Name):
        return base.id in _SEAM_BASES
    if isinstance(base, ast.Attribute):
        return base.attr in _SEAM_BASES
    if isinstance(base, ast.Call) and isinstance(base.func, ast.Name):
        return base.func.id in _SEAM_CLASSES
    return False


def _program_argument(node: ast.Call) -> ast.expr | None:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "fn":
            return kw.value
    return None


def _risky_bindings(scope: ast.AST) -> dict[str, str]:
    """Names in ``scope`` bound to resources that cannot cross processes."""
    risky: dict[str, str] = {}

    def classify(value: ast.expr) -> str | None:
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            f = value.func
            name = f.id if isinstance(f, ast.Name) else (
                f.attr if isinstance(f, ast.Attribute) else None
            )
            if name in _RISKY_CTORS:
                return _RISKY_CTORS[name]
        return None

    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            kind = classify(node.value)
            if kind:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        risky[t.id] = kind
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            kind = classify(node.context_expr)
            if kind and isinstance(node.optional_vars, ast.Name):
                risky[node.optional_vars.id] = kind
    return risky


def _free_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names loaded in ``fn`` (or its nested scopes) but bound outside it."""
    bound: set[str] = set()
    loaded: set[str] = set()
    params = fn.args
    for p in (*params.posonlyargs, *params.args, *params.kwonlyargs):
        bound.add(p.arg)
    if params.vararg:
        bound.add(params.vararg.arg)
    if params.kwarg:
        bound.add(params.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                loaded.add(node.id)
            else:
                bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                bound.add(node.name)
        elif isinstance(node, ast.Lambda):
            a = node.args
            for p in (*a.posonlyargs, *a.args, *a.kwonlyargs):
                bound.add(p.arg)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
    return loaded - bound


def _scope_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements belonging to ``scope``, descending through compound
    statements (with/if/for/try) but never into nested function scopes."""
    stack: list[ast.stmt] = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)


def _launch_calls(module: ModuleContext) -> Iterator[ast.Call]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and is_launch_seam(node):
            yield node


@register_rule
class LambdaLaunchPayload(Rule):
    code = "RPR301"
    name = "lambda-launch-payload"
    description = (
        "lambda in the arguments of an SPMD launch (lambdas are "
        "unpicklable; the process/pool backends reject them)"
    )
    hint = "use a module-level `def` (or functools.partial over one)"

    def check(self, module: ModuleContext):
        for call in _launch_calls(module):
            for sub in ast.walk(call):
                if isinstance(sub, ast.Lambda):
                    yield self.finding(
                        module,
                        sub,
                        "lambda passed into an SPMD launch",
                        self.hint,
                    )


@register_rule
class RiskyClosureCapture(Rule):
    code = "RPR302"
    name = "risky-closure-capture"
    description = (
        "launched program closes over a resource that cannot cross a "
        "process boundary (file handle, lock, generator, Machine, ...)"
    )
    hint = (
        "pass the data through `rank_args`/`args` instead, or open the "
        "resource inside the program body"
    )

    def check(self, module: ModuleContext):
        # Map: enclosing function scope -> its launch calls.
        scopes: list[ast.AST] = [module.tree, *module.functions()]
        for scope in scopes:
            local_defs = {
                n.name: n
                for n in _scope_statements(scope)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            # Only nested defs can capture function locals.
            if isinstance(scope, ast.Module):
                continue
            risky = _risky_bindings(scope)
            if not risky:
                continue
            for call in ast.walk(scope):
                if not (isinstance(call, ast.Call) and is_launch_seam(call)):
                    continue
                prog = _program_argument(call)
                if not (isinstance(prog, ast.Name) and prog.id in local_defs):
                    continue
                captured = _free_names(local_defs[prog.id]) & set(risky)
                for name in sorted(captured):
                    yield self.finding(
                        module,
                        call,
                        f"program `{prog.id}` closes over `{name}` "
                        f"({risky[name]})",
                        self.hint,
                    )
