"""Shared AST analyses for the SPMD rule families.

Three building blocks every rule family leans on:

* **collective-call detection** — a call is a collective when it invokes
  one of the :class:`~repro.machine.comm.Comm` collective methods on a
  comm-like receiver (``comm``, ``ctx.comm``, ``self.comm`` or a local
  alias assigned from one). Point-to-point ``send``/``recv`` are *not*
  collectives — rank-dependent p2p is the normal idiom.
* **rank-taint analysis** — which local names (transitively) derive from
  ``*.rank``. Deliberately *explicit-flow only* and flow-insensitive: a
  name assigned from a rank-dependent expression anywhere in the function
  is tainted everywhere. Collective *results* are sanitizers — a value
  that went through ``combine``/``broadcast``/... is globally agreed, so
  branching on it is lockstep-safe (the taint walk does not descend into
  collective calls).
* **SPMD-scope classification** — the determinism rules only apply inside
  code that runs on simulated ranks: any function with a ``ctx`` (or
  ``kernels``/``K``) parameter, or one that issues a collective.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "COLLECTIVE_METHODS",
    "collect_comm_aliases",
    "collective_calls",
    "function_params",
    "is_collective_call",
    "is_comm_expr",
    "is_spmd_scope",
    "rank_tainted_names",
    "expr_is_rank_tainted",
]

#: Collective entry points of :class:`repro.machine.comm.Comm` (the paper's
#: six primitives, the barrier, and the numeric convenience wrappers that
#: delegate to them). All ranks must call these in lockstep.
COLLECTIVE_METHODS = frozenset(
    {
        "broadcast",
        "combine",
        "prefix_sum",
        "gather",
        "global_concat",
        "allgather",
        "alltoallv",
        "pairwise_exchange",
        "barrier",
        "allreduce_sum",
        "exscan_sum",
        "gather_concat_array",
    }
)


def function_params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = fn.args
    names = [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]
    if a.vararg:
        names.append(a.vararg.arg)
    if a.kwarg:
        names.append(a.kwarg.arg)
    return set(names)


def is_comm_expr(node: ast.expr, comm_aliases: set[str]) -> bool:
    """Is ``node`` a comm-like receiver (``comm``/``ctx.comm``/alias)?"""
    if isinstance(node, ast.Name):
        return node.id == "comm" or node.id in comm_aliases
    if isinstance(node, ast.Attribute):
        return node.attr == "comm"
    return False


def collect_comm_aliases(fn: ast.AST) -> set[str]:
    """Local names bound to a comm object (``comm = ctx.comm``)."""
    aliases: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not is_comm_expr(node.value, aliases):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in aliases:
                    aliases.add(target.id)
                    changed = True
    return aliases


def is_collective_call(node: ast.AST, comm_aliases: set[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in COLLECTIVE_METHODS
        and is_comm_expr(node.func.value, comm_aliases)
    )


def collective_calls(
    fn: ast.AST, comm_aliases: set[str] | None = None
) -> Iterator[tuple[ast.Call, str]]:
    """Every ``(call_node, method_name)`` collective issued in ``fn``."""
    aliases = comm_aliases if comm_aliases is not None else collect_comm_aliases(fn)
    for node in ast.walk(fn):
        if is_collective_call(node, aliases):
            yield node, node.func.attr  # type: ignore[union-attr]


def is_spmd_scope(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    comm_aliases: set[str] | None = None,
) -> bool:
    """Does ``fn`` (directly) run on simulated ranks?"""
    params = function_params(fn)
    if params & {"ctx", "kernels", "K"}:
        return True
    return next(collective_calls(fn, comm_aliases), None) is not None


# ------------------------------------------------------------- rank taint


class _TaintProbe(ast.NodeVisitor):
    """Does an expression mention ``*.rank`` or a tainted name?

    Does not descend into collective calls (their results are coordinated
    across ranks — sanitized) or into nested function definitions.
    """

    def __init__(self, tainted: set[str], comm_aliases: set[str]):
        self.tainted = tainted
        self.comm_aliases = comm_aliases
        self.hit = False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "rank":
            self.hit = True
            return
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.tainted:
            self.hit = True

    def visit_Call(self, node: ast.Call) -> None:
        if is_collective_call(node, self.comm_aliases):
            return  # sanitizer: collective results are globally agreed
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def expr_is_rank_tainted(
    node: ast.expr, tainted: set[str], comm_aliases: set[str]
) -> bool:
    probe = _TaintProbe(tainted, comm_aliases)
    probe.visit(node)
    return probe.hit


def _assign_targets(node: ast.expr) -> Iterator[str]:
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _assign_targets(elt)
    elif isinstance(node, ast.Starred):
        yield from _assign_targets(node.value)


def rank_tainted_names(fn: ast.AST, comm_aliases: set[str]) -> set[str]:
    """Names in ``fn`` (transitively) assigned from rank-dependent values.

    Fixpoint over direct assignments, augmented assignments, ``for``
    targets, walrus expressions and ``with ... as`` bindings. Explicit
    flows only: branch *conditions* never taint the values assigned under
    them (that would drown real findings in false positives).
    """
    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            value: ast.expr | None = None
            targets: list[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                for t in node.targets:
                    targets.extend(_assign_targets(t))
            elif isinstance(node, ast.AugAssign):
                value = node.value
                targets.extend(_assign_targets(node.target))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                targets.extend(_assign_targets(node.target))
            elif isinstance(node, ast.NamedExpr):
                value = node.value
                targets.extend(_assign_targets(node.target))
            elif isinstance(node, ast.For):
                value = node.iter
                targets.extend(_assign_targets(node.target))
            if value is None or not targets:
                continue
            if expr_is_rank_tainted(value, tainted, comm_aliases):
                new = set(targets) - tainted
                if new:
                    tainted |= new
                    changed = True
    return tainted
