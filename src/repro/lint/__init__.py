"""``repro.lint`` — the SPMD static analyzer.

Turns the conventions every guarantee of this reproduction rests on into
machine-checked rules (see DESIGN.md "Static analysis & verification"):

=========  ==============================================================
Family     Invariant
=========  ==============================================================
RPR1xx     all ranks issue the same collective sequence (lockstep)
RPR2xx     SPMD programs/kernels touch no nondeterminism source
RPR3xx     launch payloads are picklable (no lambdas / risky closures)
RPR4xx     local NumPy passes charge the simulated clock
=========  ==============================================================

Usage::

    python -m repro.lint src examples           # CI entry point
    python -m repro.lint --list-rules
    python -m repro.lint --select RPR1 src

or programmatically::

    from repro.lint import run_lint, LintConfig
    findings = run_lint(["src/repro"], LintConfig(select=("RPR2",)))

Suppress a reviewed finding in place with ``# repro: noqa[RPR101]``; the
runtime complement for the dynamic cases is ``REPRO_VERIFY=lockstep``
(:mod:`repro.machine.verify`).
"""

from .core import (
    Finding,
    LintConfig,
    ModuleContext,
    Rule,
    RULE_REGISTRY,
    all_rules,
    lint_source,
    register_rule,
    run_lint,
)
from . import rules  # noqa: F401  (importing registers every rule)
from .reporters import render_json, render_rule_catalog, render_text

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "lint_source",
    "register_rule",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "run_lint",
]
