"""``python -m repro.lint [paths]`` — the analyzer's command line.

Exit status: 0 when clean, 1 when findings (or unparseable files) remain,
2 on usage errors. ``--select``/``--ignore`` take code *prefixes*
(``RPR1`` = the whole family); ``--costed-path`` rescopes the RPR4xx
family; ``--format json`` emits machine-readable findings for CI
annotation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core import LintConfig, run_lint
from .reporters import render_json, render_rule_catalog, render_text

__all__ = ["main"]


def _codes(raw: str) -> tuple[str, ...]:
    return tuple(c.strip().upper() for c in raw.split(",") if c.strip())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "SPMD static analyzer: collective lockstep (RPR1xx), "
            "determinism (RPR2xx), picklable launch payloads (RPR3xx), "
            "simulated-cost accounting (RPR4xx)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "examples"],
        help="files or directories to analyze (default: src examples)",
    )
    parser.add_argument(
        "--select", type=_codes, default=(),
        help="comma-separated code prefixes to enable (default: all)",
    )
    parser.add_argument(
        "--ignore", type=_codes, default=(),
        help="comma-separated code prefixes to disable",
    )
    parser.add_argument(
        "--costed-path", action="append", default=None, metavar="PART",
        help=(
            "path substring where the RPR4xx cost-accounting family "
            "applies (repeatable; replaces the defaults)"
        ),
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="append a per-code count summary (text format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    config = LintConfig(
        select=args.select,
        ignore=args.ignore,
        costed_paths=(
            tuple(args.costed_path)
            if args.costed_path is not None
            else LintConfig.costed_paths
        ),
    )
    findings = run_lint(args.paths, config)
    if args.format == "json":
        print(render_json(findings))
    else:
        text = render_text(findings, statistics=args.statistics)
        print(text if text else "no findings")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
