"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .core import Finding, all_rules

__all__ = ["render_text", "render_json", "render_rule_catalog"]


def render_text(findings: Sequence[Finding], statistics: bool = False) -> str:
    """One ``path:line:col: CODE message [hint: ...]`` line per finding."""
    lines = [f.render() for f in findings]
    if statistics and findings:
        lines.append("")
        counts = Counter(f.code for f in findings)
        for code, n in sorted(counts.items()):
            lines.append(f"{n:5d}  {code}")
    if findings:
        lines.append(
            f"found {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''}"
        )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps([f.as_dict() for f in findings], indent=2)


def render_rule_catalog() -> str:
    """The ``--list-rules`` table."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       {rule.description}")
    return "\n".join(lines)
