"""The rule-visitor framework behind ``repro.lint``.

``repro.lint`` is a *domain* static analyzer: it does not re-check general
Python hygiene (ruff owns that) but the SPMD invariants every guarantee of
this reproduction rests on — collective lockstep, determinism, picklable
launch payloads, honest simulated-cost accounting. The pieces:

* :class:`Finding` — one diagnostic: rule code, message, ``path:line:col``
  and a fix hint.
* :class:`Rule` — base class; concrete rules register themselves with
  :func:`register_rule` under a stable ``RPRxxx`` code and implement
  ``check(module) -> iterable[Finding]``.
* :class:`ModuleContext` — one parsed file: source, AST, per-line
  ``# repro: noqa[...]`` suppressions, module pragmas, import aliases.
* :class:`LintConfig` — rule selection (``RPR1`` selects the family,
  ``RPR101`` one rule) and path scoping for the cost-accounting family.
* :func:`run_lint` — parse, run the selected rules, apply suppressions.

Suppression grammar (comments anywhere on the flagged line)::

    x = unsafe()  # repro: noqa[RPR202]
    y = thing()   # repro: noqa[RPR202,RPR401]
    z = other()   # repro: noqa          (blanket: every rule)

and one module-level pragma, for implementation modules whose callers pay
the simulated cost on their behalf (disables the RPR4xx family)::

    # repro: costed-by-caller
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "iter_python_files",
    "register_rule",
    "run_lint",
]

#: Code used for files that fail to parse (always enabled).
SYNTAX_ERROR_CODE = "RPR000"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_, ]+)\])?")
_PRAGMA_RE = re.compile(r"#\s*repro:\s*([a-z][a-z0-9-]*)\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class LintConfig:
    """Which rules run, and where the cost-accounting family applies.

    ``select``/``ignore`` entries are code *prefixes*: ``RPR1`` matches the
    whole collective-matching family, ``RPR101`` exactly one rule. An empty
    ``select`` means every registered rule. ``costed_paths`` are substrings
    matched against each file's POSIX path; RPR4xx only fires in matching
    files (the simulated-cost invariant is owned by the kernel/algorithm
    layers, not by host-side serving code).
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    costed_paths: tuple[str, ...] = (
        "kernels/", "selection/", "psort/", "balance/", "stream/"
    )

    def rule_enabled(self, code: str) -> bool:
        if any(code.startswith(pref) for pref in self.ignore):
            return False
        if not self.select:
            return True
        return any(code.startswith(pref) for pref in self.select)

    def in_costed_paths(self, posix_path: str) -> bool:
        return any(part in posix_path for part in self.costed_paths)


class ModuleContext:
    """One parsed Python file plus everything rules commonly need."""

    def __init__(self, path: Path, source: str, config: LintConfig):
        self.path = path
        self.posix_path = path.as_posix()
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        #: line -> None (blanket) or frozenset of suppressed codes.
        self.noqa: dict[int, frozenset[str] | None] = {}
        #: module-level ``# repro: <pragma>`` markers (e.g. costed-by-caller).
        self.pragmas: set[str] = set()
        self._scan_comments()
        #: local alias -> canonical module name, for top-level imports of
        #: interest (``import numpy as np`` -> {"np": "numpy"}).
        self.import_aliases: dict[str, str] = {}
        self._scan_imports()

    # ------------------------------------------------------------ comments

    def _scan_comments(self) -> None:
        for i, line in enumerate(self.lines, start=1):
            if "#" not in line:
                continue
            m = _NOQA_RE.search(line)
            if m:
                codes = m.group(1)
                if codes is None:
                    self.noqa[i] = None
                else:
                    parsed = frozenset(
                        c.strip().upper() for c in codes.split(",") if c.strip()
                    )
                    # Merge with an earlier directive on the same line.
                    prev = self.noqa.get(i, frozenset())
                    self.noqa[i] = None if prev is None else prev | parsed
            stripped = line.strip()
            if stripped.startswith("#"):
                pm = _PRAGMA_RE.match(stripped)
                if pm and pm.group(1) != "noqa":
                    self.pragmas.add(pm.group(1))

    def suppressed(self, finding: Finding) -> bool:
        entry = self.noqa.get(finding.line, frozenset())
        if entry is None:
            return True
        return finding.code.upper() in entry

    # ------------------------------------------------------------- imports

    def _scan_imports(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def alias_of(self, canonical: str) -> set[str]:
        """Local names bound to module ``canonical`` (includes itself)."""
        return {
            local
            for local, mod in self.import_aliases.items()
            if mod == canonical
        }

    # ------------------------------------------------------------- helpers

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method definition in the module, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


class Rule:
    """Base class for one lint rule.

    Subclasses set ``code`` (stable ``RPRxxx`` identifier), ``name`` (short
    kebab-case slug) and ``description`` (one line, shown by
    ``--list-rules``), then implement :meth:`check`.
    """

    code: str = "RPR999"
    name: str = "abstract"
    description: str = ""

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    # Convenience for subclasses.
    def finding(
        self, module: ModuleContext, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            path=module.posix_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            hint=hint,
        )


#: code -> rule class, in registration order.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add ``cls`` to the global registry by its code."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate lint rule code {cls.code!r}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]


# ---------------------------------------------------------------- the run


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to analyze."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" not in f.parts:
                    yield f
        elif p.suffix == ".py":
            yield p


def lint_source(
    source: str, path: str | Path, config: LintConfig | None = None
) -> list[Finding]:
    """Lint one in-memory module (the unit tests' entry point)."""
    config = config or LintConfig()
    try:
        module = ModuleContext(Path(path), source, config)
    except SyntaxError as exc:
        return [
            Finding(
                path=Path(path).as_posix(),
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule_cls in all_rules():
        if not config.rule_enabled(rule_cls.code):
            continue
        for f in rule_cls().check(module):
            if not module.suppressed(f):
                findings.append(f)
    findings.sort()
    return findings


def run_lint(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> list[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings."""
    config = config or LintConfig()
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path, config))
    findings.sort()
    return findings
