"""Exception hierarchy for :mod:`repro`.

All library errors derive from :class:`ReproError` so callers can catch one
base class. Errors raised inside SPMD worker ranks are wrapped in
:class:`WorkerError` (carrying the failing rank) by the runtime; sibling ranks
that were parked in a barrier when the failure happened receive
:class:`WorkerAborted`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid machine, cost-model, or algorithm configuration."""


class CommunicationError(ReproError, RuntimeError):
    """A point-to-point or collective communication misuse.

    Examples: mismatched collective participation, a receive with no matching
    send after the runtime drained, or payload type violations.
    """


class WorkerAborted(ReproError, RuntimeError):
    """Raised *inside* surviving ranks when a sibling rank failed.

    The runtime converts the first real failure into :class:`WorkerError` for
    the caller; ``WorkerAborted`` instances from other ranks are suppressed.
    """


class WorkerError(ReproError, RuntimeError):
    """Raised by the runtime when one or more SPMD ranks raised.

    Attributes
    ----------
    rank:
        The lowest-numbered rank that failed.
    cause:
        The original exception raised on that rank (also chained via
        ``__cause__``).
    """

    def __init__(self, rank: int, cause: BaseException):
        self.rank = rank
        self.cause = cause
        super().__init__(f"rank {rank} failed: {cause!r}")


class RankMismatchError(CommunicationError):
    """Collective called with inconsistent arguments across ranks."""


class AdmissionError(ReproError, RuntimeError):
    """A serving-tier query was rejected by admission control.

    Raised *pre-launch* by :class:`repro.serve.SelectionService` when the
    bounded in-flight queue (or the submitting tenant's fair share of it)
    is full. The query consumed no SPMD launch; retrying after in-flight
    work drains is always safe.
    """


class ServiceClosed(ReproError, RuntimeError):
    """A query was submitted to (or cancelled by) a closed
    :class:`repro.serve.SelectionService`."""


class ConvergenceError(ReproError, RuntimeError):
    """A selection algorithm failed to converge within its iteration guard.

    This should never fire for the paper's algorithms on valid inputs; it
    exists as a safety net so a logic regression surfaces as a clean error
    instead of a hung run.
    """
