"""repro.serve — the async multi-tenant serving tier.

:class:`SelectionService` front-doors one shared
:class:`~repro.core.array.Machine` for many concurrent tenants: queries
are admitted (bounded, per-tenant fair), held for a short coalescing
window, answered in batched SPMD launches through the
:class:`~repro.core.session.Session` machinery, and resolved as
individual :mod:`asyncio` futures — with per-query latency telemetry
summarised by the library's own
:class:`~repro.stream.sketch.QuantileSketch`.

:mod:`repro.serve.trace` synthesises and replays the multi-tenant query
traces the bench and tests drive the service with.
"""

from .service import SelectionService, ServiceStats
from .trace import TraceQuery, direct_answers, replay, synthetic_trace

__all__ = [
    "SelectionService",
    "ServiceStats",
    "TraceQuery",
    "direct_answers",
    "replay",
    "synthetic_trace",
]
