"""Multi-tenant query traces: synthesis and replay.

The serving tier's bench and tests need a reproducible stream of mixed
quantile / rank / multi-rank queries spread over several tenants and
arrays. :func:`synthetic_trace` builds one deterministically from a seed;
:func:`replay` plays it through a live :class:`~repro.serve.SelectionService`
with a closed loop of concurrent clients; :func:`direct_answers` computes
the ground truth the slow way — one uncached query-at-a-time
:class:`~repro.core.session.Session` launch per query — which is both the
bit-identity oracle and the throughput baseline coalescing is measured
against.

Queries carry rank *fractions*, not ranks, so one trace replays against
arrays of any size (``frac`` resolves to rank ``max(1, ceil(frac * n))``,
the library's quantile convention).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.session import Session
from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..core.array import Machine
    from .service import SelectionService

__all__ = ["TraceQuery", "synthetic_trace", "replay", "direct_answers"]


@dataclass(frozen=True)
class TraceQuery:
    """One query of a trace.

    ``kind`` is ``"select"`` (one rank from ``fracs[0]``), ``"quantile"``
    (fraction ``fracs[0]`` in ``(0, 1]``) or ``"multi"`` (one batched
    query over every fraction in ``fracs``).
    """

    tenant: str
    array: str
    kind: str
    fracs: tuple

    def ranks(self, n: int) -> list[int]:
        """The 1-based target ranks this query resolves to on ``n`` keys."""
        return [max(1, int(np.ceil(f * n))) for f in self.fracs]


def synthetic_trace(
    n_queries: int,
    *,
    tenants: int = 4,
    arrays: Sequence[str] = ("a",),
    kinds: Sequence[str] = ("select", "quantile", "multi"),
    distinct_fracs: int = 32,
    multi_width: int = 4,
    hot_share: float = 0.0,
    seed: int = 0,
) -> list:
    """A deterministic mixed multi-tenant trace.

    Rank fractions are drawn from a fixed palette of ``distinct_fracs``
    values, so the expected cache-hit rate is controlled by palette size
    versus trace length. ``hot_share`` routes that extra fraction of
    queries to tenant 0 on top of the uniform spread — the skewed-tenant
    workload the fairness cap exists for.
    """
    if n_queries < 1:
        raise ConfigurationError(
            f"n_queries must be >= 1, got {n_queries}"
        )
    if tenants < 1:
        raise ConfigurationError(f"tenants must be >= 1, got {tenants}")
    if not (0.0 <= hot_share <= 1.0):
        raise ConfigurationError(
            f"hot_share must be in [0, 1], got {hot_share!r}"
        )
    bad = [k for k in kinds if k not in ("select", "quantile", "multi")]
    if bad or not kinds:
        raise ConfigurationError(f"unknown query kinds: {bad or kinds}")
    rng = np.random.default_rng(seed)
    palette = (np.arange(distinct_fracs) + 1) / (distinct_fracs + 1)
    names = [f"tenant{i}" for i in range(tenants)]
    out = []
    for _ in range(n_queries):
        if hot_share and rng.random() < hot_share:
            tenant = names[0]
        else:
            tenant = names[int(rng.integers(tenants))]
        array = arrays[int(rng.integers(len(arrays)))]
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "multi":
            fracs = tuple(
                float(palette[i])
                for i in rng.integers(distinct_fracs, size=multi_width)
            )
        else:
            fracs = (float(palette[int(rng.integers(distinct_fracs))]),)
        out.append(TraceQuery(tenant, array, kind, fracs))
    return out


async def _issue(service: "SelectionService", query: TraceQuery):
    """One trace query against the service; returns its answer values as
    a plain tuple (what bit-identity is asserted over)."""
    data = service.arrays[query.array]
    if query.kind == "multi":
        report = await service.multi_select(
            data, query.ranks(data.n), tenant=query.tenant
        )
        return tuple(report.values)
    if query.kind == "quantile":
        report = await service.quantile(
            data, query.fracs[0], tenant=query.tenant
        )
    else:
        report = await service.select(
            data, query.ranks(data.n)[0], tenant=query.tenant
        )
    return (report.value,)


async def replay(
    service: "SelectionService",
    trace: Sequence[TraceQuery],
    *,
    concurrency: int = 8,
) -> list:
    """Closed-loop replay: ``concurrency`` client tasks each keep exactly
    one query outstanding, pulling the next trace entry as soon as their
    previous answer lands. Returns per-query answer tuples in trace
    order. A client's own sizing keeps it under the per-tenant admission
    cap; an :class:`~repro.errors.AdmissionError` here means the trace
    was replayed hotter than the service was configured for — let it
    propagate, that is the signal."""
    if concurrency < 1:
        raise ConfigurationError(
            f"concurrency must be >= 1, got {concurrency}"
        )
    answers: list = [None] * len(trace)
    next_index = 0

    async def client() -> None:
        nonlocal next_index
        while next_index < len(trace):
            i = next_index
            next_index += 1
            answers[i] = await _issue(service, trace[i])

    await asyncio.gather(*(client() for _ in range(min(concurrency,
                                                       len(trace)))))
    return answers


def direct_answers(
    machine: "Machine",
    arrays: dict,
    trace: Sequence[TraceQuery],
    plan=None,
) -> list:
    """Ground truth and throughput baseline: every query answered NOW by
    its own uncached launch(es) on a fresh query-at-a-time
    :class:`~repro.core.session.Session` — the front door a service
    replaces. Returns per-query answer tuples in trace order."""
    one_shot = Session(machine, plan=plan, cache=False)
    out = []
    for query in trace:
        data = arrays[query.array]
        ks = query.ranks(data.n)
        if query.kind == "multi":
            out.append(tuple(one_shot.run_multi_select(data, ks).values))
        else:
            out.append((one_shot.run_select(data, ks[0]).value,))
    return out
