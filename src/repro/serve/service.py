"""The multi-tenant serving tier: :class:`SelectionService`.

A :class:`~repro.core.session.Session` coalesces whatever one caller has
queued when *that caller* decides to flush. A **service** turns the same
machinery into a long-running, shared front door: many tenants submit
quantile / rank / multi-rank queries concurrently from asyncio tasks, the
service holds them in a short **coalescing window**, groups everything
pending by ``(array fingerprint, plan)`` exactly like a session flush, and
answers each group with ONE batched SPMD launch on the shared
:class:`~repro.core.array.Machine` — resolving every caller's
``asyncio.Future`` individually.

Life cycle of one query::

    await service.select("prices", k, tenant="alice")
      -> admission control        (AdmissionError / ServiceClosed, no launch)
      -> pre-launch validation    (ConfigurationError, no launch)
      -> queued; coalescing window elapses
      -> one batched launch per (array, plan) group on the shared machine
      -> this query's future resolves with its own SelectionReport

Guarantees (all pinned by ``tests/test_serve.py``):

* **Coalescing.** Queries submitted within one window against the same
  array and plan cost one launch total, however many tenants they came
  from; repeated ranks are served from the session result cache with zero
  launches. ``ServiceStats.launches_saved`` counts the launches a
  query-at-a-time front door would have paid extra.
* **Admission control / fairness.** At most ``max_in_flight`` queries may
  be in flight overall and at most ``max_per_tenant`` per tenant, so one
  hot tenant exhausts its own allowance, not the service
  (:class:`~repro.errors.AdmissionError` is raised *before* anything is
  queued). Queued work is drained round-robin across tenants.
* **Error isolation.** A failing group (e.g. a plan whose launch raises
  :class:`~repro.errors.WorkerError`) fails only its own futures; every
  other group in the same cycle — and the flusher itself — is unaffected.
* **Graceful shutdown.** ``await service.close()`` stops admitting,
  drains every in-flight query, folds the latency buffer into the sketch
  and releases persistent backend workers
  (:meth:`~repro.core.array.Machine.release_workers`); ``drain=False``
  instead cancels *queued* queries with :class:`~repro.errors.ServiceClosed`
  (a launch already executing still completes).
* **Self-observability.** Per-query latencies feed the service's own
  :class:`~repro.stream.sketch.QuantileSketch` — the library's mergeable
  summary, eating its own dog food — and :attr:`stats` reports p50/p99
  from it next to the coalescing counters.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.session import Session, quantile_rank
from ..errors import AdmissionError, ConfigurationError, ServiceClosed
from ..kernels.select import median_rank
from ..stream.sketch import QuantileSketch

if TYPE_CHECKING:
    from ..core.array import DistributedArray, Machine
    from ..core.plan import SelectionPlan

__all__ = ["SelectionService", "ServiceStats"]


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's serving counters.

    ``launches_saved`` is the coalescing receipt: queries resolved without
    error minus launches actually paid, i.e. how many SPMD launches a
    query-at-a-time front door would have executed on top. ``p50_s`` /
    ``p99_s`` are read from the service's own latency
    :class:`~repro.stream.sketch.QuantileSketch` (ε-approximate, upper
    bracket key — a reported p99 never understates the true one by more
    than the sketch guarantee).
    """

    #: Queries admitted (select/median/quantile/multi_select submissions).
    queries: int = 0
    #: Submissions refused by admission control (AdmissionError).
    rejected: int = 0
    #: Queries resolved successfully.
    resolved: int = 0
    #: Queries resolved with an in-launch error (WorkerError etc.).
    errors: int = 0
    #: SPMD launches the service paid for.
    launches: int = 0
    #: Launches a query-at-a-time front door would have paid extra.
    launches_saved: int = 0
    #: Flush cycles that found work.
    flush_cycles: int = 0
    #: Individual ranks served from the result cache.
    cache_hits: int = 0
    #: Distinct tenants ever admitted.
    tenants: int = 0
    #: Latency observations folded into the sketch so far.
    latency_count: int = 0
    #: Median / 99th-percentile query latency in seconds (0.0 until the
    #: first observation).
    p50_s: float = 0.0
    p99_s: float = 0.0
    #: The machine's activity counters at snapshot time
    #: (:meth:`repro.core.array.Machine.counters`: launches / forks /
    #: reuses / pinned_bytes).
    machine_counters: dict = field(default_factory=dict)


class _Record:
    """One admitted query: the session future that will carry its answer
    and the asyncio future its submitter awaits."""

    __slots__ = ("tenant", "sess_fut", "async_fut", "t0")

    def __init__(self, tenant: str, sess_fut, async_fut, t0: float):
        self.tenant = tenant
        self.sess_fut = sess_fut
        self.async_fut = async_fut
        self.t0 = t0


class SelectionService:
    """An asyncio front door multiplexing many tenants onto one machine.

    Parameters
    ----------
    machine:
        The shared :class:`~repro.core.array.Machine` every query runs on.
        Any backend works; a ``backend="pool"`` machine gives the service
        its natural production shape (fork once, serve every launch warm —
        watch :attr:`~repro.core.array.Machine.reuse_count` grow while
        :attr:`~repro.core.array.Machine.fork_count` stays put).
    plan:
        Default :class:`~repro.core.plan.SelectionPlan` for queries that
        do not carry one. ``None`` (the default) serves with
        ``SelectionPlan(algorithm="auto")``: the query planner
        (:mod:`repro.planner`) picks the predicted-fastest algorithm per
        (array, machine shape), so serving traffic gets cost-model-driven
        plan choice for free. Pass an explicit plan to pin behaviour.
    window:
        Coalescing window in seconds: how long the flusher holds newly
        arrived queries so concurrent tenants land in the same batched
        launch. ``0`` still coalesces everything submitted in the same
        event-loop tick.
    max_in_flight / max_per_tenant:
        Admission bounds (service-wide / per tenant). ``max_per_tenant``
        defaults to a quarter of ``max_in_flight`` so a single hot tenant
        cannot occupy the whole queue.
    cache / max_cache_entries:
        Forwarded to the internal :class:`~repro.core.session.Session`.
    latency_eps:
        ε of the latency :class:`~repro.stream.sketch.QuantileSketch`.

    Usage::

        async with SelectionService(machine, window=0.002) as svc:
            svc.register("prices", machine.generate(1 << 20))
            p50, p99 = await asyncio.gather(
                svc.quantile("prices", 0.50, tenant="dash"),
                svc.quantile("prices", 0.99, tenant="alerts"),
            )
        # both queries shared ONE SPMD launch
    """

    def __init__(
        self,
        machine: "Machine",
        plan: "SelectionPlan | None" = None,
        *,
        window: float = 0.002,
        max_in_flight: int = 256,
        max_per_tenant: int | None = None,
        cache: bool = True,
        max_cache_entries: int = 65536,
        latency_eps: float = 0.01,
    ):
        if window < 0:
            raise ConfigurationError(
                f"coalescing window must be >= 0, got {window!r}"
            )
        if max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if max_per_tenant is None:
            max_per_tenant = max(1, max_in_flight // 4)
        if max_per_tenant < 1:
            raise ConfigurationError(
                f"max_per_tenant must be >= 1, got {max_per_tenant}"
            )
        self.machine = machine
        self.window = float(window)
        self.max_in_flight = int(max_in_flight)
        self.max_per_tenant = int(max_per_tenant)
        if plan is None:
            # Serving default: let the planner pick per (array, shape).
            from ..core.plan import SelectionPlan

            plan = SelectionPlan(algorithm="auto")
        self._session = Session(
            machine, plan=plan, cache=cache,
            max_cache_entries=max_cache_entries,
        )
        self._arrays: dict[str, "DistributedArray"] = {}
        # Per-tenant FIFO queues, drained round-robin by the flusher.
        self._queues: "OrderedDict[str, deque[_Record]]" = OrderedDict()
        self._queued_total = 0
        self._inflight: dict[str, int] = {}
        self._inflight_total = 0
        self._work = asyncio.Event()
        self._flusher: asyncio.Task | None = None
        self._closed = False
        # Counters behind the ServiceStats snapshot.
        self._queries = 0
        self._rejected = 0
        self._resolved = 0
        self._errors = 0
        self._launches_saved = 0
        self._flush_cycles = 0
        self._tenants_seen: set[str] = set()
        self._latency = QuantileSketch(eps=latency_eps)
        self._lat_buf: list[float] = []

    # ------------------------------------------------------------ registry

    def register(self, name: str, data) -> "DistributedArray":
        """Register an array under ``name`` so tenants can query it by
        name. ``data`` may be a :class:`~repro.core.array.DistributedArray`
        (or :class:`~repro.stream.stream.StreamingArray`) already on this
        service's machine, or any 1-D host array — which is distributed
        for you. Returns the registered distributed array."""
        from ..core.array import DistributedArray

        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"array name must be a non-empty string, got {name!r}"
            )
        if not hasattr(data, "shards"):
            data = self.machine.distribute(np.asarray(data))
        if data.machine is not self.machine:
            raise ConfigurationError(
                f"array {name!r} lives on a different Machine than this "
                "service"
            )
        self._arrays[name] = data
        return data

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (queries already queued
        against the underlying array still resolve)."""
        if name not in self._arrays:
            raise ConfigurationError(f"no array registered as {name!r}")
        del self._arrays[name]

    @property
    def arrays(self) -> dict:
        """Read-only view of the registered arrays."""
        return dict(self._arrays)

    def _resolve(self, array):
        if isinstance(array, str):
            data = self._arrays.get(array)
            if data is None:
                raise ConfigurationError(
                    f"no array registered as {array!r} "
                    f"(have {sorted(self._arrays)})"
                )
            return data
        if hasattr(array, "shards"):
            return array
        raise ConfigurationError(
            "query target must be a registered name or a distributed "
            f"array, got {type(array).__name__}"
        )

    # ----------------------------------------------------------- admission

    def _admit(self, tenant: str) -> None:
        """All the reasons a submission is refused before anything is
        queued — none of them consumes an SPMD launch."""
        if not isinstance(tenant, str) or not tenant:
            raise ConfigurationError(
                f"tenant must be a non-empty string, got {tenant!r}"
            )
        if self._closed:
            raise ServiceClosed("service is closed to new queries")
        if self._inflight_total >= self.max_in_flight:
            self._rejected += 1
            raise AdmissionError(
                f"service at capacity: {self._inflight_total} queries in "
                f"flight (max_in_flight={self.max_in_flight})"
            )
        if self._inflight.get(tenant, 0) >= self.max_per_tenant:
            self._rejected += 1
            raise AdmissionError(
                f"tenant {tenant!r} at its fairness cap: "
                f"{self._inflight[tenant]} queries in flight "
                f"(max_per_tenant={self.max_per_tenant})"
            )

    async def _submit(self, tenant: str, make_session_future):
        """Admission -> validation -> queue -> await the answer."""
        self._admit(tenant)
        # Pre-launch validation (rank/quantile range, machine identity)
        # happens HERE, inside the session submit — a bad query raises
        # ConfigurationError to its own caller with zero launches and
        # nothing queued.
        sess_fut = make_session_future()
        loop = asyncio.get_running_loop()
        record = _Record(tenant, sess_fut, loop.create_future(), loop.time())
        self._queues.setdefault(tenant, deque()).append(record)
        self._queued_total += 1
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        self._inflight_total += 1
        self._queries += 1
        self._tenants_seen.add(tenant)
        self._ensure_flusher()
        self._work.set()
        return await record.async_fut

    # ------------------------------------------------------------- queries

    async def select(self, array, k: int, *, tenant: str = "default",
                     plan: "SelectionPlan | None" = None, **overrides):
        """Rank-``k`` selection; resolves to a
        :class:`~repro.core.reports.SelectionReport`."""
        data = self._resolve(array)
        return await self._submit(
            tenant, lambda: self._session.select(data, k, plan, **overrides)
        )

    async def median(self, array, *, tenant: str = "default",
                     plan: "SelectionPlan | None" = None, **overrides):
        """The paper's flagship query, rank ``ceil(n/2)``."""
        data = self._resolve(array)
        return await self.select(
            data, median_rank(data.n), tenant=tenant, plan=plan, **overrides
        )

    async def quantile(self, array, q: float, *, tenant: str = "default",
                       plan: "SelectionPlan | None" = None, **overrides):
        """The exact quantile ``q`` in ``(0, 1]`` (rank ``ceil(q * n)``)."""
        data = self._resolve(array)
        return await self.select(
            data, quantile_rank(float(q), data.n), tenant=tenant, plan=plan,
            **overrides,
        )

    async def multi_select(self, array, ks: Sequence[int], *,
                           tenant: str = "default",
                           plan: "SelectionPlan | None" = None, **overrides):
        """A whole rank set as one query; resolves to a
        :class:`~repro.core.reports.MultiSelectionReport` (``values``
        align with ``ks``, duplicates and order preserved)."""
        data = self._resolve(array)
        return await self._submit(
            tenant,
            lambda: self._session.multi_select(data, ks, plan, **overrides),
        )

    # ------------------------------------------------------------- flusher

    def _ensure_flusher(self) -> None:
        if self._flusher is None or self._flusher.done():
            self._flusher = asyncio.get_running_loop().create_task(
                self._run(), name="repro-serve-flusher"
            )

    def _drain_round_robin(self) -> list[_Record]:
        """Everything queued, interleaved one-per-tenant so no tenant's
        burst monopolises the resolution order."""
        out: list[_Record] = []
        queues = [q for q in self._queues.values() if q]
        while queues:
            still = []
            for q in queues:
                out.append(q.popleft())
                if q:
                    still.append(q)
            queues = still
        self._queued_total = 0
        return out

    async def _run(self) -> None:
        while True:
            if self._closed and self._queued_total == 0:
                break
            await self._work.wait()
            if self.window > 0 and not self._closed:
                await asyncio.sleep(self.window)
            records = self._drain_round_robin()
            if self._queued_total == 0 and not self._closed:
                self._work.clear()
            if not records:
                continue
            self._flush_cycles += 1
            launches_before = self._session.stats.launches
            try:
                # One blocking, batched flush off the event loop. Session
                # flush already isolates failures per (array, plan) group
                # — it records each group's error on its own futures and
                # re-raises the first one, which we swallow here because
                # per-record routing below is the real delivery path.
                await asyncio.to_thread(self._flush_cycle, len(records))
            except Exception:
                pass
            launch_delta = self._session.stats.launches - launches_before
            now = asyncio.get_running_loop().time()
            ok = 0
            for rec in records:
                self._inflight[rec.tenant] -= 1
                self._inflight_total -= 1
                fut = rec.sess_fut
                if fut._error is not None:
                    self._errors += 1
                    if not rec.async_fut.done():
                        rec.async_fut.set_exception(fut._error)
                elif fut._report is not None:
                    ok += 1
                    self._resolved += 1
                    self._lat_buf.append(now - rec.t0)
                    if not rec.async_fut.done():
                        rec.async_fut.set_result(fut._report)
                else:  # pragma: no cover - internal invariant
                    err = RuntimeError("flush did not resolve this query")
                    if not rec.async_fut.done():
                        rec.async_fut.set_exception(err)
            self._launches_saved += max(0, ok - launch_delta)
            self._fold_latencies()

    def _flush_cycle(self, n_records: int) -> None:
        """One blocking flush, span-wrapped *inside* the worker thread so
        the session's flush/group/query spans nest under ``serve.cycle``
        (span stacks are thread-local)."""
        from ..obs import get_recorder

        with get_recorder().span("serve.cycle", records=n_records):
            self._session.flush()

    def _fold_latencies(self) -> None:
        if self._lat_buf:
            self._latency.update(np.asarray(self._lat_buf))
            self._lat_buf.clear()

    # ------------------------------------------------------------ shutdown

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        """Admitted queries not yet resolved."""
        return self._inflight_total

    async def close(self, drain: bool = True) -> None:
        """Stop admitting and shut down.

        ``drain=True`` (default) answers every in-flight query first.
        ``drain=False`` cancels *queued* queries with
        :class:`~repro.errors.ServiceClosed`; a batched launch already
        executing still completes and resolves its queries. Either way the
        latency buffer is folded into the sketch and the machine's
        persistent workers are released. Idempotent.
        """
        self._closed = True
        if not drain:
            for rec in self._drain_round_robin():
                self._inflight[rec.tenant] -= 1
                self._inflight_total -= 1
                if not rec.async_fut.done():
                    rec.async_fut.set_exception(
                        ServiceClosed("service closed before this query ran")
                    )
        self._work.set()
        if self._flusher is not None:
            await self._flusher
            self._flusher = None
        self._fold_latencies()
        self.machine.release_workers()

    async def __aenter__(self) -> "SelectionService":
        self._ensure_flusher()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(drain=exc_type is None)

    # ----------------------------------------------------------- telemetry

    @property
    def latency_sketch(self) -> QuantileSketch:
        """The service's own per-query latency summary (seconds)."""
        self._fold_latencies()
        return self._latency

    @property
    def stats(self) -> ServiceStats:
        """Snapshot the serving counters (see :class:`ServiceStats`)."""
        sk = self.latency_sketch
        return ServiceStats(
            queries=self._queries,
            rejected=self._rejected,
            resolved=self._resolved,
            errors=self._errors,
            launches=self._session.stats.launches,
            launches_saved=self._launches_saved,
            flush_cycles=self._flush_cycles,
            cache_hits=self._session.stats.cache_hits,
            tenants=len(self._tenants_seen),
            latency_count=sk.count,
            p50_s=float(sk.quantile(0.50)) if sk.count else 0.0,
            p99_s=float(sk.quantile(0.99)) if sk.count else 0.0,
            machine_counters=self.machine.counters(),
        )

    @property
    def session(self) -> Session:
        """The internal session (cache inspection / advanced use)."""
        return self._session

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SelectionService(p={self.machine.n_procs}, "
            f"arrays={len(self._arrays)}, in_flight={self._inflight_total}, "
            f"closed={self._closed})"
        )
