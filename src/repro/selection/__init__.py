"""The four parallel selection algorithms (paper Section 3) + hybrids.

All of them share the contraction engine of :mod:`repro.selection.engine`
(iterate-shrink-endgame with pluggable pivot strategies); each algorithm
module contributes its pivot rule and keeps its historical SPMD entry
point.

Registry keys (used by :func:`repro.select` and the bench harness):

=========================  ==============================================
``median_of_medians``      Algorithm 1 (deterministic; needs balancing)
``bucket_based``           Algorithm 2 (deterministic; no balancing)
``randomized``             Algorithm 3 (expected O(log n) iterations)
``fast_randomized``        Algorithm 4 (O(log log n) iterations w.h.p.)
``hybrid_median_of_medians``  Section 5 hybrid of Algorithm 1
``hybrid_bucket_based``       Section 5 hybrid of Algorithm 2
``sort_based``                related-work baseline: full sort + index
=========================  ==============================================

:data:`STRATEGIES` maps the same keys to pivot-strategy factories for the
multi-rank path (:func:`repro.multi_select`); ``sort_based`` is handled
specially there (one full sort answers every rank).
"""

from .base import (
    Decision,
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    decide_side,
    endgame,
    endgame_threshold,
)
from .bucket_based import BucketStrategy, bucket_based_select
from .engine import (
    ContractionEngine,
    MultiSelectionStats,
    PivotStrategy,
    contract_multi_select,
    contract_select,
)
from .fast_randomized import (
    FastRandomizedParams,
    FastRandomizedStrategy,
    fast_randomized_select,
)
from .hybrid import hybrid_bucket_based_select, hybrid_median_of_medians_select
from .median_of_medians import MedianOfMediansStrategy, median_of_medians_select
from .randomized import RandomizedStrategy, randomized_select
from .sort_based import sort_based_multi_select, sort_based_select

#: name -> (SPMD function, default sequential method, needs balancing)
ALGORITHMS = {
    "median_of_medians": (median_of_medians_select, "deterministic", True),
    "bucket_based": (bucket_based_select, "deterministic", False),
    "randomized": (randomized_select, "randomized", False),
    "fast_randomized": (fast_randomized_select, "randomized", False),
    "hybrid_median_of_medians": (hybrid_median_of_medians_select, "randomized", True),
    "hybrid_bucket_based": (hybrid_bucket_based_select, "randomized", False),
    "sort_based": (sort_based_select, "randomized", False),
}

#: name -> pivot-strategy factory for the multi-rank contraction path.
#: ``fast_params`` is only meaningful for the fast randomized strategy;
#: the hybrids reuse their parent's strategy (the API layer swaps the
#: sequential method, exactly as the single-rank hybrids do).
STRATEGIES = {
    "randomized": lambda fast_params=None: RandomizedStrategy(),
    "median_of_medians": lambda fast_params=None: MedianOfMediansStrategy(),
    "bucket_based": lambda fast_params=None: BucketStrategy(),
    "fast_randomized": lambda fast_params=None: FastRandomizedStrategy(fast_params),
    "hybrid_median_of_medians": lambda fast_params=None: MedianOfMediansStrategy(),
    "hybrid_bucket_based": lambda fast_params=None: BucketStrategy(),
}

__all__ = [
    "ALGORITHMS",
    "STRATEGIES",
    "ContractionEngine",
    "Decision",
    "IterationRecord",
    "MultiSelectionStats",
    "PivotStrategy",
    "SelectionConfig",
    "SelectionStats",
    "contract_multi_select",
    "contract_select",
    "decide_side",
    "endgame",
    "endgame_threshold",
    "BucketStrategy",
    "FastRandomizedParams",
    "FastRandomizedStrategy",
    "MedianOfMediansStrategy",
    "RandomizedStrategy",
    "bucket_based_select",
    "fast_randomized_select",
    "hybrid_bucket_based_select",
    "hybrid_median_of_medians_select",
    "median_of_medians_select",
    "randomized_select",
    "sort_based_multi_select",
    "sort_based_select",
]
