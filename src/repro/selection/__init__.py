"""The four parallel selection algorithms (paper Section 3) + hybrids.

Registry keys (used by :func:`repro.select` and the bench harness):

=========================  ==============================================
``median_of_medians``      Algorithm 1 (deterministic; needs balancing)
``bucket_based``           Algorithm 2 (deterministic; no balancing)
``randomized``             Algorithm 3 (expected O(log n) iterations)
``fast_randomized``        Algorithm 4 (O(log log n) iterations w.h.p.)
``hybrid_median_of_medians``  Section 5 hybrid of Algorithm 1
``hybrid_bucket_based``       Section 5 hybrid of Algorithm 2
``sort_based``                related-work baseline: full sort + index
=========================  ==============================================
"""

from .base import (
    Decision,
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    decide_side,
    endgame,
    endgame_threshold,
)
from .bucket_based import bucket_based_select
from .fast_randomized import FastRandomizedParams, fast_randomized_select
from .hybrid import hybrid_bucket_based_select, hybrid_median_of_medians_select
from .median_of_medians import median_of_medians_select
from .randomized import randomized_select
from .sort_based import sort_based_select

#: name -> (SPMD function, default sequential method, needs balancing)
ALGORITHMS = {
    "median_of_medians": (median_of_medians_select, "deterministic", True),
    "bucket_based": (bucket_based_select, "deterministic", False),
    "randomized": (randomized_select, "randomized", False),
    "fast_randomized": (fast_randomized_select, "randomized", False),
    "hybrid_median_of_medians": (hybrid_median_of_medians_select, "randomized", True),
    "hybrid_bucket_based": (hybrid_bucket_based_select, "randomized", False),
    "sort_based": (sort_based_select, "randomized", False),
}

__all__ = [
    "ALGORITHMS",
    "Decision",
    "IterationRecord",
    "SelectionConfig",
    "SelectionStats",
    "decide_side",
    "endgame",
    "endgame_threshold",
    "FastRandomizedParams",
    "bucket_based_select",
    "fast_randomized_select",
    "hybrid_bucket_based_select",
    "hybrid_median_of_medians_select",
    "median_of_medians_select",
    "randomized_select",
    "sort_based_select",
]
