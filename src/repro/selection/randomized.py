"""Algorithm 3 — Randomized selection (paper Section 3.3; Floyd & Rivest).

Every processor runs an identical random number generator with an identical
seed (the paper's trick to avoid communicating the pivot choice): all ranks
draw the same global index ``nr`` in ``[0, n)``; a parallel prefix over the
live counts tells each rank whether it owns that index; the owner broadcasts
the key, and every rank 3-way-partitions its live keys around it. One
Combine decides the surviving side.

The iterate-shrink-endgame skeleton lives in
:mod:`repro.selection.engine`; this module contributes only the pivot rule
(:class:`RandomizedStrategy`: prefix + shared draw + owner Combine) and the
historical SPMD entry point.

Expected time without balancing on well-behaved data (paper Table 1):
``O(n/p + (tau + mu) log p log n)``. Load balancing is optional (Step 7) —
the paper's experiments show it *never* pays off for this algorithm, which
the benches reproduce.
"""

from __future__ import annotations

import numpy as np

from ..machine.engine import ProcContext
from .base import SelectionConfig, SelectionStats
from .engine import PivotProposal, PivotStrategy, contract_select

__all__ = ["randomized_select", "RandomizedStrategy"]


class _Nothing:
    """Identity element for the pivot-combine (exactly one rank deposits)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<nothing>"


_NOTHING = _Nothing()


def _keep_value(a, b):
    """Binary op selecting the single non-sentinel deposit."""
    return b if isinstance(a, _Nothing) else a


class RandomizedStrategy(PivotStrategy):
    """Steps 1-3: prefix the live counts, draw one shared global index, the
    owner deposits the pivot into a Combine (the paper's realised
    Broadcast — identical ``(tau + mu) log p`` cost)."""

    name = "randomized"

    def _start(self) -> None:
        # The shared stream: same seed on every rank => same draws
        # everywhere. One draw per iteration regardless of interval.
        self.shared_rng = np.random.default_rng((self.cfg.seed, 0x5A))
        self.local_rng = np.random.default_rng(
            (self.cfg.seed, self.ctx.rank, 0x5B)
        )

    def propose(self, interval) -> PivotProposal:
        ctx, K = self.ctx, self.K
        ni = interval.live.count

        # Step 1: inclusive prefix sum of live counts.
        s = int(ctx.comm.prefix_sum(ni))

        # Step 2: one shared random draw — identical on all ranks.
        K.rng_draw()
        nr = int(self.shared_rng.integers(0, interval.n))

        # Step 3: the owner (s - ni <= nr < s) deposits the pivot. The
        # paper writes this as a Broadcast rooted at the owner; ranks other
        # than the owner cannot name the root from their local prefix
        # alone, so (as a real MPI code would) we realise it as a Combine
        # with a select-the-deposit operator.
        if s - ni <= nr < s:
            pivot = interval.live.arr[nr - (s - ni)]
        else:
            pivot = None
        pivot = ctx.comm.combine(
            pivot if pivot is not None else _NOTHING, _keep_value
        )
        return PivotProposal(pivot)

    @property
    def endgame_rng(self) -> np.random.Generator:
        return self.local_rng


def randomized_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point for the randomized selection algorithm."""
    return contract_select(ctx, shard, k, cfg, RandomizedStrategy())
