"""Algorithm 3 — Randomized selection (paper Section 3.3; Floyd & Rivest).

Every processor runs an identical random number generator with an identical
seed (the paper's trick to avoid communicating the pivot choice): all ranks
draw the same global index ``nr`` in ``[0, n)``; a parallel prefix over the
live counts tells each rank whether it owns that index; the owner broadcasts
the key, and every rank 3-way-partitions its live keys around it. One
Combine decides the surviving side.

Expected time without balancing on well-behaved data (paper Table 1):
``O(n/p + (tau + mu) log p log n)``. Load balancing is optional (Step 7) —
the paper's experiments show it *never* pays off for this algorithm, which
the benches reproduce.
"""

from __future__ import annotations

import numpy as np

from ..balance.base import NoBalance
from ..errors import ConvergenceError
from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from .base import (
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    check_rank,
    decide_side,
    endgame,
    endgame_threshold,
)

__all__ = ["randomized_select"]


def randomized_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point for the randomized selection algorithm."""
    K = CostedKernels(ctx)
    p = ctx.size
    arr = np.asarray(shard)
    n = int(ctx.comm.allreduce_sum(int(arr.size)))
    check_rank(n, k)
    stats = SelectionStats(algorithm="randomized", n=n, p=p, k=k)
    # The shared stream: same seed on every rank => same draws everywhere.
    shared_rng = np.random.default_rng((cfg.seed, 0x5A))
    local_rng = np.random.default_rng((cfg.seed, ctx.rank, 0x5B))
    threshold = endgame_threshold(cfg, p)
    guard = cfg.iteration_guard(n)

    while n > threshold:
        if len(stats.iterations) > guard:
            raise ConvergenceError(
                f"randomized exceeded {guard} iterations (n={n})"
            )
        n_before, k_before = n, k
        ni = int(arr.size)

        # Step 1: inclusive prefix sum of live counts.
        s = int(ctx.comm.prefix_sum(ni))

        # Step 2: one shared random draw — identical on all ranks.
        K.rng_draw()
        nr = int(shared_rng.integers(0, n))

        # Step 3: the owner (s - ni <= nr < s) broadcasts the pivot.
        if s - ni <= nr < s:
            pivot = arr[nr - (s - ni)]
        else:
            pivot = None
        # The paper writes this as a Broadcast rooted at the owner; ranks
        # other than the owner cannot name the root from their local prefix
        # alone, so (as a real MPI code would) we realise it as a Combine
        # with a select-the-deposit operator — identical (tau+mu)log p cost.
        pivot = ctx.comm.combine(
            pivot if pivot is not None else _NOTHING, _keep_value
        )

        # Steps 4-5: 3-way split + Combine of counts.
        parts = K.partition3(arr, pivot)
        c_less, c_eq = ctx.comm.combine(
            np.array([parts.n_lt, parts.n_eq], dtype=np.int64)
        )
        c_less, c_eq = int(c_less), int(c_eq)

        # Step 6.
        decision = decide_side(k, c_less, c_eq, n)
        if decision.found:
            stats.record(IterationRecord(
                n_before=n_before, n_after=0, k_before=k_before, k_after=k,
                pivot=pivot, local_before=ni, local_after=0, balanced=False,
            ))
            stats.found_by_pivot = True
            return pivot, stats
        arr = parts.lt if decision.keep_low else parts.gt
        n, k = decision.new_n, decision.new_k

        # Step 7 (optional): load balance.
        balanced = not isinstance(cfg.balancer, NoBalance)
        if balanced:
            arr = cfg.balancer.rebalance(ctx, K, arr)
        stats.record(IterationRecord(
            n_before=n_before, n_after=n, k_before=k_before, k_after=k,
            pivot=pivot, local_before=ni, local_after=int(arr.size),
            balanced=balanced,
        ))

    # Steps 8-9 (paper numbering: 7-8): endgame.
    stats.endgame_n = n
    value = endgame(ctx, K, arr, k, cfg.sequential_method, rng=local_rng,
                    impl=cfg.impl_override)
    return value, stats


class _Nothing:
    """Identity element for the pivot-combine (exactly one rank deposits)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<nothing>"


_NOTHING = _Nothing()


def _keep_value(a, b):
    """Binary op selecting the single non-sentinel deposit."""
    return b if isinstance(a, _Nothing) else a
