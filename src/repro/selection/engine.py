"""The unified contraction engine behind every selection algorithm.

All four Section-3 algorithms share one skeleton — iterate, shrinking the
set of live keys, until the global count drops below ``p^2`` (or the
algorithm's own floor), then gather-and-finish. Historically each algorithm
module carried its own copy of that loop; this engine owns the skeleton
once, and each algorithm plugs in only the part that actually differs —
*how the next pivot is proposed*:

=========================  ==============================================
``randomized``             shared-RNG random draw (one pivot)
``median_of_medians``      gather local medians, P0 selects their median
``bucket_based``           weighted median of (median, count) pairs
``fast_randomized``        sampled bracket ``[k1, k2]`` (a pivot *band*)
=========================  ==============================================

The engine also generalises the live-set bookkeeping from one target rank
to a **set of ranks** (``repro.multi_select``): when a pivot lands between
two targets, the live set *forks* into independent sub-intervals — each a
smaller selection problem over disjoint keys — all tracked in the same
SPMD launch. The total partitioning work is then ``O((n/p) log q)`` for
``q`` targets instead of ``q`` full contractions, and the endgame costs a
single Gather + Broadcast regardless of how many intervals survive
(Saukas-Song-style contraction, cf. arXiv:1712.00870; the fast randomized
strategy brackets *all* targets of an interval from one sorted sample and
splits multiway in one pass, cf. arXiv:1611.05549).

Single-target runs reproduce the historical algorithms *exactly*: the same
collective sequence per iteration (pinned by the pseudocode-fidelity
tests), the same RNG streams, the same simulated charges, and the same
:class:`~repro.selection.base.SelectionStats` evidence.

Layout: this module owns the engine, the live-set representations and the
strategy base class; each algorithm module owns its concrete strategy
(``randomized.RandomizedStrategy`` etc.) plus its historical SPMD entry
point, now a thin wrapper over :func:`contract_select`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..balance.base import Balancer, NoBalance
from ..errors import ConvergenceError
from ..kernels.buckets import LocalBuckets
from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from .base import (
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    check_rank,
    endgame_threshold,
)

__all__ = [
    "ArrayLive",
    "BucketLive",
    "BandProposal",
    "ContractionEngine",
    "EndgameProposal",
    "MultiCutProposal",
    "MultiSelectionStats",
    "PivotProposal",
    "PivotStrategy",
    "contract_select",
    "contract_multi_select",
]


# --------------------------------------------------------------- proposals

@dataclass(frozen=True)
class PivotProposal:
    """One pivot value: 3-way partition, keep/fork around the ``==`` band."""

    pivot: object


@dataclass(frozen=True)
class BandProposal:
    """A pivot band ``[lo, hi]`` (fast randomized, single target): keep the
    band when the target is inside, else rescue the near side."""

    lo: object
    hi: object


@dataclass(frozen=True)
class MultiCutProposal:
    """Several strictly-ascending cut values: one multiway partition pass
    forks the interval at every cut (fast randomized, many targets)."""

    cuts: tuple


class EndgameProposal:
    """Strategy cannot make progress (e.g. an empty sample): go straight to
    the endgame with the current live set."""

    __slots__ = ()


# --------------------------------------------------------------- live sets

class ArrayLive:
    """Live keys held as a flat array (randomized / MoM / fast randomized)."""

    kind = "array"

    def __init__(self, arr: np.ndarray):
        self.arr = np.asarray(arr)
        self._parts = None

    @property
    def count(self) -> int:
        return int(self.arr.size)

    def classify(self, K: CostedKernels, pivot) -> tuple[int, int]:
        """3-way partition around ``pivot``; returns local (lt, eq) counts.

        The materialised split is kept so :meth:`take` / :meth:`split` are
        free (the partition pass was already charged).
        """
        self._parts = K.partition3(self.arr, pivot)
        return self._parts.n_lt, self._parts.n_eq

    def take(self, K: CostedKernels, pivot, keep_low: bool) -> "ArrayLive":
        return ArrayLive(self._parts.lt if keep_low else self._parts.gt)

    def split(self, K: CostedKernels, pivot) -> tuple["ArrayLive", "ArrayLive"]:
        return ArrayLive(self._parts.lt), ArrayLive(self._parts.gt)

    def rebalance(self, ctx, K: CostedKernels, balancer: Balancer) -> "ArrayLive":
        return ArrayLive(balancer.rebalance(ctx, K, self.arr))

    def endgame_array(self) -> np.ndarray:
        return self.arr


class BucketLive:
    """Live keys held as ordered buckets (the bucket-based algorithm).

    Never load-balanced (the weighted-median pivot rule tolerates arbitrary
    imbalance by construction — that is the algorithm's whole point).
    """

    kind = "buckets"

    def __init__(self, buckets: LocalBuckets):
        self.buckets = buckets

    @property
    def count(self) -> int:
        return self.buckets.total

    def classify(self, K: CostedKernels, pivot) -> tuple[int, int]:
        lt, eq, _gt, scan = self.buckets.count3_vs(pivot)
        K.charge_scan_evidence(scan)
        return lt, eq

    def take(self, K: CostedKernels, pivot, keep_low: bool) -> "BucketLive":
        if keep_low:
            K.charge_scan_evidence(self.buckets.keep_lt(pivot))
        else:
            K.charge_scan_evidence(self.buckets.keep_gt(pivot))
        return self

    def split(self, K: CostedKernels, pivot) -> tuple["BucketLive", "BucketLive"]:
        low, high, scan = self.buckets.split3_vs(pivot)
        K.charge_scan_evidence(scan)
        return BucketLive(low), BucketLive(high)

    def endgame_array(self) -> np.ndarray:
        return self.buckets.as_array()


# --------------------------------------------------------------- intervals

@dataclass(frozen=True)
class _Target:
    """One requested rank: output slot + rank relative to its interval."""

    idx: int
    k: int


@dataclass
class _Interval:
    """An independent contraction sub-problem (disjoint live keys)."""

    live: object
    n: int
    targets: list[_Target]
    stalled: int = 0


# --------------------------------------------------------------- strategies

class PivotStrategy:
    """Base class for the pluggable per-iteration pivot proposal.

    A strategy is instantiated per run *inside* the SPMD program (each rank
    owns its copy) and bound to the rank's context before the first
    iteration; ``_start`` is where subclasses seed their RNG streams.
    """

    #: Registry/stats name; also used in convergence-guard messages.
    name = "abstract"
    #: Consecutive no-shrink iterations before an interval is sent to the
    #: endgame (``None`` = iterate for as long as the global count allows).
    stall_limit: int | None = None

    def bind(self, ctx: ProcContext, K: CostedKernels, cfg: SelectionConfig):
        self.ctx = ctx
        self.K = K
        self.cfg = cfg
        self._start()
        return self

    def _start(self) -> None:  # pragma: no cover - trivial default
        pass

    def threshold(self, p: int) -> int:
        """Live-count bound below which the endgame takes over."""
        return endgame_threshold(self.cfg, p)

    def make_live(self, arr: np.ndarray):
        """Wrap the initial shard (bucket strategy preprocesses here)."""
        return ArrayLive(arr)

    def propose(self, interval: _Interval):
        """One pivot round: collectives + charges exactly as the paper's
        pseudocode box prescribes; returns a proposal object."""
        raise NotImplementedError

    @property
    def endgame_rng(self) -> np.random.Generator | None:
        """RNG handed to the sequential endgame selection."""
        return None


# ------------------------------------------------------------- multi stats

@dataclass
class MultiSelectionStats:
    """Run evidence of a multi-rank selection (identical on every rank).

    Mirrors :class:`~repro.selection.base.SelectionStats` (same
    ``iterations`` records, counters and properties) with multi-target
    extensions: how many independent intervals the live set forked into,
    how many targets a pivot resolved directly, and the total endgame load.
    """

    algorithm: str = ""
    n: int = 0
    p: int = 0
    ks: list[int] = field(default_factory=list)
    iterations: list[IterationRecord] = field(default_factory=list)
    n_intervals: int = 1
    endgame_n: int = 0
    endgame_intervals: int = 0
    found_by_pivot: int = 0
    balance_invocations: int = 0
    unsuccessful_iterations: int = 0
    #: Sketch pre-filter evidence (a
    #: :class:`~repro.core.reports.PrefilterStats`) when the run was
    #: sketch-accelerated; ``None`` for plain contractions.
    prefilter: object = None

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def k(self) -> int:
        """First requested rank (parity with ``SelectionStats.k``)."""
        return self.ks[0] if self.ks else 0

    def record(self, rec: IterationRecord) -> None:
        self.iterations.append(rec)
        if rec.balanced:
            self.balance_invocations += 1
        if not rec.successful:
            self.unsuccessful_iterations += 1

    def mark_found_by_pivot(self) -> None:
        self.found_by_pivot += 1


# ------------------------------------------------------------------ engine

class ContractionEngine:
    """The shared iterate-shrink-endgame state machine.

    Processes a work list of :class:`_Interval` depth-first (ascending key
    order). Every iteration asks the strategy for a proposal, applies it —
    3-way partition + Combine for a pivot, band split for a bracket,
    multiway split for several cuts — resolves any targets the proposal
    pinned exactly, forks the interval when targets survive on both sides,
    and optionally load-balances. Intervals whose global count falls below
    the strategy's threshold (or that stall) wait for the **batched
    endgame**: one Gather + one Broadcast finishes every surviving
    interval, however many there are.
    """

    def __init__(
        self,
        ctx: ProcContext,
        cfg: SelectionConfig,
        strategy: PivotStrategy,
        stats,
    ):
        self.ctx = ctx
        self.cfg = cfg
        self.K = CostedKernels(ctx, kernels=cfg.kernels)
        self.strategy = strategy.bind(ctx, self.K, cfg)
        self.stats = stats
        self.results: list = []

    # ------------------------------------------------------------- driving

    def run(self, arr: np.ndarray, ks: list[int]) -> list:
        """Contract until every rank in ``ks`` (sorted ascending) is found."""
        ctx, cfg, strat = self.ctx, self.cfg, self.strategy
        p = ctx.size
        arr = np.asarray(arr)
        n = int(ctx.comm.allreduce_sum(int(arr.size)))
        for k in ks:
            check_rank(n, k)
        self.stats.n, self.stats.p = n, p
        self.results = [None] * len(ks)
        threshold = strat.threshold(p)
        guard = cfg.iteration_guard(n)
        if cfg.max_iterations is None:
            # The default guard is per contraction problem; a multi-rank
            # run works through up to len(ks) independent intervals. An
            # explicit max_iterations stays the hard cap the caller set.
            guard *= len(ks)
        queue: list[_Interval] = [
            _Interval(strat.make_live(arr), n,
                      [_Target(i, k) for i, k in enumerate(ks)])
        ]
        endgame: list[_Interval] = []
        while queue:
            iv = queue[0]
            if not iv.targets:
                queue.pop(0)
                continue
            if iv.n <= threshold or (
                strat.stall_limit is not None
                and iv.stalled >= strat.stall_limit
            ):
                endgame.append(queue.pop(0))
                continue
            if len(self.stats.iterations) > guard:
                raise ConvergenceError(
                    f"{strat.name} exceeded {guard} iterations (n={iv.n})"
                )
            sim0 = ctx.clock.now
            first_new = len(self.stats.iterations)
            proposal = strat.propose(iv)
            if isinstance(proposal, PivotProposal):
                self._apply_pivot(iv, proposal.pivot, queue)
            elif isinstance(proposal, BandProposal):
                self._apply_band(iv, proposal.lo, proposal.hi, queue)
            elif isinstance(proposal, MultiCutProposal):
                self._apply_multicut(iv, proposal.cuts, queue)
            elif isinstance(proposal, EndgameProposal):
                endgame.append(queue.pop(0))
            else:  # pragma: no cover - strategy contract violation
                raise TypeError(f"unknown proposal {proposal!r}")
            # Stamp the simulated-clock interval onto the record(s) this
            # iteration produced. Pure bookkeeping after the fact: no
            # charges, no RNG draws, no collectives — the clock reads are
            # deterministic, so values/sim times stay bit-identical.
            sim1 = ctx.clock.now
            for j in range(first_new, len(self.stats.iterations)):
                self.stats.iterations[j] = dataclasses.replace(
                    self.stats.iterations[j], t_sim0=sim0, t_sim1=sim1,
                )
        self._run_endgame(endgame)
        return self.results

    # ----------------------------------------------------- proposal: pivot

    def _apply_pivot(self, iv: _Interval, pivot, queue: list) -> None:
        n_before, ni = iv.n, iv.live.count
        k_first = iv.targets[0].k
        lt, eq = iv.live.classify(self.K, pivot)
        c_less, c_eq = self.ctx.comm.combine(
            np.array([lt, eq], dtype=np.int64)
        )
        c_less, c_eq = int(c_less), int(c_eq)

        low_t: list[_Target] = []
        high_t: list[_Target] = []
        for t in iv.targets:
            if t.k <= c_less:
                low_t.append(t)
            elif t.k <= c_less + c_eq:
                self.results[t.idx] = pivot
                self.stats.mark_found_by_pivot()
            else:
                high_t.append(_Target(t.idx, t.k - c_less - c_eq))

        if not low_t and not high_t:
            # Every remaining target sat in the == band: interval resolved.
            self.stats.record(IterationRecord(
                n_before=n_before, n_after=0, k_before=k_first,
                k_after=k_first, pivot=pivot, local_before=ni,
                local_after=0, balanced=False,
            ))
            queue.pop(0)
            return

        if low_t and high_t:
            # The pivot landed between targets: fork into two independent
            # sub-intervals (multi-rank only; balancing resumes per child).
            low_live, high_live = iv.live.split(self.K, pivot)
            children = [
                _Interval(low_live, c_less, low_t),
                _Interval(high_live, n_before - c_less - c_eq, high_t),
            ]
            self.stats.n_intervals += 1
            self.stats.record(IterationRecord(
                n_before=n_before, n_after=children[0].n + children[1].n,
                k_before=k_first, k_after=low_t[0].k, pivot=pivot,
                local_before=ni,
                local_after=low_live.count + high_live.count,
                balanced=False,
            ))
            queue[0:1] = children
            return

        keep_low = bool(low_t)
        iv.live = iv.live.take(self.K, pivot, keep_low)
        iv.n = c_less if keep_low else n_before - c_less - c_eq
        iv.targets = low_t if keep_low else high_t
        balanced = self._maybe_balance(iv)
        self.stats.record(IterationRecord(
            n_before=n_before, n_after=iv.n, k_before=k_first,
            k_after=iv.targets[0].k, pivot=pivot, local_before=ni,
            local_after=iv.live.count, balanced=balanced,
        ))

    # ------------------------------------------------------ proposal: band

    def _apply_band(self, iv: _Interval, lo, hi, queue: list) -> None:
        n_before, ni = iv.n, iv.live.count
        k_first = iv.targets[0].k
        less, middle, high = self.K.partition_band(iv.live.arr, lo, hi)
        c_less, c_mid = self.ctx.comm.combine(
            np.array([less.size, middle.size], dtype=np.int64)
        )
        c_less, c_mid = int(c_less), int(c_mid)

        less_t: list[_Target] = []
        mid_t: list[_Target] = []
        high_t: list[_Target] = []
        for t in iv.targets:
            if t.k <= c_less:
                less_t.append(t)
            elif t.k <= c_less + c_mid:
                if lo == hi:
                    # Band collapsed onto one value covering the target.
                    self.results[t.idx] = lo
                    self.stats.mark_found_by_pivot()
                else:
                    mid_t.append(_Target(t.idx, t.k - c_less))
            else:
                high_t.append(_Target(t.idx, t.k - c_less - c_mid))

        # The iteration is "successful" when the sample bracketed every
        # surviving target (the paper's Step 8; a miss triggers the
        # one-sided rescue instead of a retry).
        successful = not less_t and not high_t
        children = []
        if less_t:
            children.append(_Interval(ArrayLive(less), c_less, less_t))
        if mid_t:
            children.append(
                _Interval(ArrayLive(middle), c_mid, mid_t)
            )
        if high_t:
            children.append(_Interval(
                ArrayLive(high), n_before - c_less - c_mid, high_t
            ))

        if not children:
            self.stats.record(IterationRecord(
                n_before=n_before, n_after=0, k_before=k_first,
                k_after=k_first, pivot=(lo, hi), local_before=ni,
                local_after=0, balanced=False,
            ))
            queue.pop(0)
            return

        for child in children:
            child.stalled = iv.stalled + 1 if child.n == n_before else 0
        balanced = False
        if len(children) == 1:
            balanced = self._maybe_balance(children[0])
        else:
            self.stats.n_intervals += len(children) - 1
        self.stats.record(IterationRecord(
            n_before=n_before, n_after=sum(c.n for c in children),
            k_before=k_first, k_after=children[0].targets[0].k,
            pivot=(lo, hi), local_before=ni,
            local_after=sum(c.live.count for c in children),
            balanced=balanced, successful=successful,
        ))
        queue[0:1] = children

    # -------------------------------------------------- proposal: multicut

    def _apply_multicut(self, iv: _Interval, cuts, queue: list) -> None:
        """Fork one interval at several cut values in a single local pass.

        ``partition_multiway`` yields ``2c + 1`` value-ordered segments
        (open ranges alternating with ``==`` bands); one Combine of the
        segment counts places every target. Targets landing in an ``==``
        band resolve immediately; segments holding no targets are
        discarded wholesale — they lie *between* requested ranks.
        """
        n_before, ni = iv.n, iv.live.count
        k_first = iv.targets[0].k
        cuts = np.asarray(cuts)
        segs = self.K.partition_multiway(iv.live.arr, cuts)
        counts = self.ctx.comm.combine(
            np.array([s.size for s in segs], dtype=np.int64)
        )
        cum = np.concatenate([[0], np.cumsum(counts)])

        by_seg: dict[int, list[_Target]] = {}
        for t in iv.targets:
            j = int(np.searchsorted(cum[1:], t.k, side="left"))
            if j % 2 == 1:
                # Equality band of cuts[(j - 1) // 2]: resolved exactly.
                self.results[t.idx] = cuts[(j - 1) // 2]
                self.stats.mark_found_by_pivot()
            else:
                by_seg.setdefault(j, []).append(
                    _Target(t.idx, t.k - int(cum[j]))
                )

        children = [
            _Interval(ArrayLive(segs[j]), int(counts[j]), ts)
            for j, ts in sorted(by_seg.items())
        ]
        if not children:
            self.stats.record(IterationRecord(
                n_before=n_before, n_after=0, k_before=k_first,
                k_after=k_first, pivot=tuple(cuts.tolist()),
                local_before=ni, local_after=0, balanced=False,
            ))
            queue.pop(0)
            return
        for child in children:
            child.stalled = iv.stalled + 1 if child.n == n_before else 0
        balanced = False
        if len(children) == 1:
            balanced = self._maybe_balance(children[0])
        else:
            self.stats.n_intervals += len(children) - 1
        self.stats.record(IterationRecord(
            n_before=n_before, n_after=sum(c.n for c in children),
            k_before=k_first, k_after=children[0].targets[0].k,
            pivot=tuple(cuts.tolist()), local_before=ni,
            local_after=sum(c.live.count for c in children),
            balanced=balanced,
        ))
        queue[0:1] = children

    # ------------------------------------------------------------- helpers

    def _maybe_balance(self, iv: _Interval) -> bool:
        if iv.live.kind != "array" or isinstance(self.cfg.balancer, NoBalance):
            return False
        iv.live = iv.live.rebalance(self.ctx, self.K, self.cfg.balancer)
        return True

    # ------------------------------------------------------------- endgame

    def _run_endgame(self, intervals: list[_Interval]) -> None:
        """Batched final Steps: ONE Gather of every surviving interval's
        keys, sequential (multi-)selection per interval on P0, ONE
        Broadcast of all the answers."""
        if not intervals:
            return
        ctx, cfg = self.ctx, self.cfg
        method = cfg.sequential_method
        payload = [iv.live.endgame_array() for iv in intervals]
        gathered = ctx.comm.gather(payload, root=0)
        order = [t.idx for iv in intervals for t in iv.targets]
        if ctx.rank == 0:
            values: list = []
            for j, iv in enumerate(intervals):
                parts = [g[j] for g in gathered if g is not None]
                live = [q for q in parts if q.size]
                merged = np.concatenate(live) if live else np.array([])
                if merged.size == 0:
                    raise ConvergenceError(
                        "endgame reached with no surviving keys"
                    )
                ks = [t.k for t in iv.targets]
                for k in ks:
                    if not (1 <= k <= merged.size):
                        raise ConvergenceError(
                            f"endgame rank {k} inconsistent with "
                            f"{merged.size} survivors"
                        )
                values.extend(self.K.select_multi_kth(
                    merged, ks, method, rng=self.strategy.endgame_rng,
                    impl=cfg.impl_override,
                ))
        else:
            values = None
        values = ctx.comm.broadcast(values, root=0)
        for idx, v in zip(order, values):
            self.results[idx] = v
        for iv in intervals:
            self.stats.endgame_n += iv.n
        if hasattr(self.stats, "endgame_intervals"):
            self.stats.endgame_intervals += len(intervals)


# ------------------------------------------------------------ entry points

def contract_select(
    ctx: ProcContext,
    shard: np.ndarray,
    k: int,
    cfg: SelectionConfig,
    strategy: PivotStrategy,
) -> tuple[object, SelectionStats]:
    """Single-rank selection through the engine (the four classic SPMD
    entry points delegate here)."""
    stats = SelectionStats(algorithm=strategy.name, k=k)
    engine = ContractionEngine(ctx, cfg, strategy, stats)
    values = engine.run(np.asarray(shard), [k])
    return values[0], stats


def contract_multi_select(
    ctx: ProcContext,
    shard: np.ndarray,
    ks: list[int],
    cfg: SelectionConfig,
    strategy: PivotStrategy,
    algorithm: str | None = None,
) -> tuple[list, MultiSelectionStats]:
    """Multi-rank selection: all of ``ks`` (sorted ascending, distinct) in
    one contraction.

    On one processor the whole problem is sequential: skip the contraction
    and run a single-pass multi-rank ``np.partition`` directly (charged at
    ``multi_select_cost``) — the ``p = 1`` fast path.
    """
    stats = MultiSelectionStats(
        algorithm=algorithm or strategy.name, ks=list(ks)
    )
    arr = np.asarray(shard)
    if ctx.size == 1:
        K = CostedKernels(ctx, kernels=cfg.kernels)
        n = int(arr.size)
        for k in ks:
            check_rank(n, k)
        stats.n, stats.p = n, 1
        rng = np.random.default_rng((cfg.seed, 0, 0xE1))
        values = K.select_multi_kth(
            arr, list(ks), cfg.sequential_method, rng=rng,
            impl=cfg.impl_override,
        )
        stats.endgame_n = n
        stats.endgame_intervals = 1
        return values, stats
    engine = ContractionEngine(ctx, cfg, strategy, stats)
    values = engine.run(arr, list(ks))
    return values, stats
