"""Algorithm 1 — Median of Medians selection (paper Section 3.1).

Straightforward parallelisation of the deterministic sequential algorithm
(Blum et al.), as implemented on distributed-memory machines by Bader &
JaJa: every iteration each processor finds its *local median* with
sequential deterministic selection, the medians are gathered, processor 0
selects their median (the "median of medians"), broadcasts it as the
estimated global median, and every processor partitions its keys around it.
A Combine of the split counts picks the surviving side.

The iterate-shrink-endgame skeleton lives in
:mod:`repro.selection.engine`; this module contributes only the pivot rule
(:class:`MedianOfMediansStrategy`) and the historical SPMD entry point.

The algorithm *requires* load balancing between iterations (Step 7): its
pivot guarantee assumes near-equal local counts. The paper's figures pair it
with global exchange; that is this implementation's default when the caller
passes no balancer (``select(..., algorithm="median_of_medians")`` resolves
the default at the API layer).

Expected time with balancing: ``O(n/p + tau log p log n + mu p log n)``
(paper Table 1).
"""

from __future__ import annotations

import numpy as np

from ..kernels.select import median_rank, select_cost, select_kth
from ..machine.engine import ProcContext
from .base import SelectionConfig, SelectionStats
from .engine import PivotProposal, PivotStrategy, contract_select

__all__ = ["median_of_medians_select", "MedianOfMediansStrategy"]


class MedianOfMediansStrategy(PivotStrategy):
    """Steps 1-3: local median (the expensive part — the deterministic
    constant is what Section 5 blames), Gather, P0 median of the pool,
    Broadcast."""

    name = "median_of_medians"

    def _start(self) -> None:
        self.rng = np.random.default_rng((self.cfg.seed, self.ctx.rank, 0xA1))

    def propose(self, interval) -> PivotProposal:
        ctx, K, cfg = self.ctx, self.K, self.cfg
        ni = interval.live.count

        # Step 1: local median via sequential selection.
        if ni:
            local_med = K.select_kth(
                interval.live.arr, median_rank(ni), cfg.sequential_method,
                rng=self.rng, impl=cfg.impl_override,
            )
        else:
            local_med = None

        # Steps 2-3: Gather medians; P0 selects their median; Broadcast.
        medians = ctx.comm.gather(local_med, root=0)
        if ctx.rank == 0:
            pool = np.array([m for m in medians if m is not None])
            ctx.charge_compute(
                select_cost(ctx.model, pool.size, cfg.sequential_method)
            )
            mom = select_kth(
                pool, median_rank(pool.size),
                method=cfg.impl_override or cfg.sequential_method,
                rng=self.rng,
            )
        else:
            mom = None
        return PivotProposal(ctx.comm.broadcast(mom, root=0))

    @property
    def endgame_rng(self) -> np.random.Generator:
        return self.rng


def median_of_medians_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point: every rank passes its shard; returns (value, stats).

    ``cfg.sequential_method`` is ``"deterministic"`` for the paper's
    Algorithm 1 and ``"randomized"`` for the Section 5 hybrid variant.
    """
    return contract_select(ctx, shard, k, cfg, MedianOfMediansStrategy())
