"""Algorithm 1 — Median of Medians selection (paper Section 3.1).

Straightforward parallelisation of the deterministic sequential algorithm
(Blum et al.), as implemented on distributed-memory machines by Bader &
JaJa: every iteration each processor finds its *local median* with
sequential deterministic selection, the medians are gathered, processor 0
selects their median (the "median of medians"), broadcasts it as the
estimated global median, and every processor partitions its keys around it.
A Combine of the split counts picks the surviving side.

The algorithm *requires* load balancing between iterations (Step 7): its
pivot guarantee assumes near-equal local counts. The paper's figures pair it
with global exchange; that is this implementation's default when the caller
passes no balancer (``select(..., algorithm="median_of_medians")`` resolves
the default at the API layer).

Expected time with balancing: ``O(n/p + tau log p log n + mu p log n)``
(paper Table 1).
"""

from __future__ import annotations

import numpy as np

from ..balance.base import NoBalance
from ..kernels.costed import CostedKernels
from ..kernels.select import median_rank, select_cost, select_kth
from ..machine.engine import ProcContext
from .base import (
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    check_rank,
    decide_side,
    endgame,
    endgame_threshold,
)
from ..errors import ConvergenceError

__all__ = ["median_of_medians_select"]


def median_of_medians_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point: every rank passes its shard; returns (value, stats).

    ``cfg.sequential_method`` is ``"deterministic"`` for the paper's
    Algorithm 1 and ``"randomized"`` for the Section 5 hybrid variant.
    """
    K = CostedKernels(ctx)
    p = ctx.size
    arr = np.asarray(shard)
    n = int(ctx.comm.allreduce_sum(int(arr.size)))
    check_rank(n, k)
    stats = SelectionStats(
        algorithm="median_of_medians", n=n, p=p, k=k
    )
    rng = np.random.default_rng((cfg.seed, ctx.rank, 0xA1))
    threshold = endgame_threshold(cfg, p)
    guard = cfg.iteration_guard(n)

    while n > threshold:
        if len(stats.iterations) > guard:
            raise ConvergenceError(
                f"median_of_medians exceeded {guard} iterations (n={n})"
            )
        n_before, k_before = n, k
        ni = int(arr.size)

        # Step 1: local median via sequential selection (the expensive part —
        # the deterministic constant is what Section 5 blames).
        if ni:
            local_med = K.select_kth(
                arr, median_rank(ni), cfg.sequential_method, rng=rng,
                impl=cfg.impl_override,
            )
        else:
            local_med = None

        # Steps 2-3: Gather medians; P0 selects their median; Broadcast.
        medians = ctx.comm.gather(local_med, root=0)
        if ctx.rank == 0:
            pool = np.array([m for m in medians if m is not None])
            ctx.charge_compute(select_cost(ctx.model, pool.size, cfg.sequential_method))
            mom = select_kth(
                pool, median_rank(pool.size),
                method=cfg.impl_override or cfg.sequential_method, rng=rng,
            )
        else:
            mom = None
        mom = ctx.comm.broadcast(mom, root=0)

        # Steps 4-5: 3-way split + Combine of the counts.
        parts = K.partition3(arr, mom)
        c_less, c_eq = ctx.comm.combine(
            np.array([parts.n_lt, parts.n_eq], dtype=np.int64)
        )
        c_less, c_eq = int(c_less), int(c_eq)

        # Step 6: pick the side (or finish on the pivot band).
        decision = decide_side(k, c_less, c_eq, n)
        if decision.found:
            stats.record(IterationRecord(
                n_before=n, n_after=0, k_before=k, k_after=k, pivot=mom,
                local_before=ni, local_after=0, balanced=False,
            ))
            stats.found_by_pivot = True
            return mom, stats
        arr = parts.lt if decision.keep_low else parts.gt
        n, k = decision.new_n, decision.new_k

        # Step 7: load balance (required by this algorithm).
        balanced = not isinstance(cfg.balancer, NoBalance)
        if balanced:
            arr = cfg.balancer.rebalance(ctx, K, arr)
        stats.record(IterationRecord(
            n_before=n_before, n_after=n, k_before=k_before, k_after=k,
            pivot=mom, local_before=ni, local_after=int(arr.size),
            balanced=balanced,
        ))

    # Steps 8-9: endgame.
    stats.endgame_n = n
    value = endgame(ctx, K, arr, k, cfg.sequential_method, rng=rng,
                    impl=cfg.impl_override)
    return value, stats
