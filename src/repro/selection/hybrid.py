"""The Section 5 hybrid experiment: deterministic *parallel* structure with
randomized *sequential* local parts.

The paper splits each deterministic algorithm into a parallel part (combine
local results across processors) and a sequential part (local selections),
then swaps the sequential deterministic kernels for randomized ones to see
where the randomized algorithms' advantage comes from. Finding: the hybrids
land between the deterministic and randomized algorithms — for large ``n``
most of the gap is sequential, for large ``p`` it is parallel.

These wrappers simply re-run Algorithms 1 and 2 with
``sequential_method="randomized"``; they exist as named entry points so the
bench harness and the experiment index can refer to them directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..machine.engine import ProcContext
from .base import SelectionConfig, SelectionStats
from .bucket_based import bucket_based_select
from .median_of_medians import median_of_medians_select

__all__ = ["hybrid_median_of_medians_select", "hybrid_bucket_based_select"]


def _randomized_sequential(cfg: SelectionConfig) -> SelectionConfig:
    return dataclasses.replace(cfg, sequential_method="randomized")


def hybrid_median_of_medians_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """Algorithm 1's parallel skeleton + randomized sequential selection."""
    value, stats = median_of_medians_select(ctx, shard, k, _randomized_sequential(cfg))
    stats.algorithm = "hybrid_median_of_medians"
    return value, stats


def hybrid_bucket_based_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """Algorithm 2's parallel skeleton + randomized sequential selection."""
    value, stats = bucket_based_select(ctx, shard, k, _randomized_sequential(cfg))
    stats.algorithm = "hybrid_bucket_based"
    return value, stats
