"""Algorithm 2 — Bucket-based selection (paper Section 3.2; Rajasekaran et
al. [17]).

Deterministic like Algorithm 1, but engineered to *avoid load balancing*:

* the estimated median is the **weighted** median of the local medians
  (weights = live counts), which keeps the guaranteed-discard fraction even
  under arbitrary imbalance;
* a one-off preprocessing pass splits each processor's keys into
  ``O(log p)`` value-ordered buckets, after which both per-iteration chores
  (find the local median; partition around the broadcast pivot) only touch
  one bucket plus ``O(log log p)`` boundary probes instead of scanning all
  live keys.

The iterate-shrink-endgame skeleton lives in
:mod:`repro.selection.engine`; this module contributes the pivot rule
(:class:`BucketStrategy`: weighted median of (median, count) pairs) and the
bucketed live-set preprocessing, plus the historical SPMD entry point.

Worst-case time (paper Table 2, no balancing):
``O(n/p (log log p + log n / log p) + tau log p log n + mu p log n)``.
"""

from __future__ import annotations

import numpy as np

from ..kernels.buckets import default_n_buckets
from ..kernels.select import median_rank
from ..machine.engine import ProcContext
from .base import SelectionConfig, SelectionStats
from .engine import BucketLive, PivotProposal, PivotStrategy, contract_select

__all__ = ["bucket_based_select", "BucketStrategy"]


class BucketStrategy(PivotStrategy):
    """Steps 1-3: local median through the bucket walk, Gather of
    (median, live-count) pairs, P0 takes the *weighted* median, Broadcast.

    The live set is the bucket structure itself (Step 0 preprocessing);
    partitioning and discarding touch only straddling buckets. Never
    load-balanced.
    """

    name = "bucket_based"

    def _start(self) -> None:
        self.rng = np.random.default_rng((self.cfg.seed, self.ctx.rank, 0xB0))

    def make_live(self, arr: np.ndarray) -> BucketLive:
        # Step 0: preprocess the local keys into O(log p) ordered buckets.
        return BucketLive(
            self.K.build_buckets(arr, default_n_buckets(self.ctx.size))
        )

    def propose(self, interval) -> PivotProposal:
        ctx, K, cfg = self.ctx, self.K, self.cfg
        ni = interval.live.count

        # Step 1: local median through the bucket walk (binary search for
        # the bucket + in-bucket sequential selection).
        if ni:
            local_med, scan = interval.live.buckets.kth(median_rank(ni))
            K.charge_scan_evidence(scan, select_method=cfg.sequential_method)
        else:
            local_med = None

        # Steps 2-3: gather (median, live-count) pairs; P0 takes the
        # *weighted* median; broadcast.
        pairs = ctx.comm.gather((local_med, ni), root=0)
        if ctx.rank == 0:
            vals = np.array([v for v, c in pairs if v is not None])
            wts = np.array(
                [c for v, c in pairs if v is not None], dtype=np.float64
            )
            wm = K.weighted_median(vals, wts)
        else:
            wm = None
        return PivotProposal(ctx.comm.broadcast(wm, root=0))

    @property
    def endgame_rng(self) -> np.random.Generator:
        return self.rng


def bucket_based_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point for the bucket-based deterministic algorithm."""
    return contract_select(ctx, shard, k, cfg, BucketStrategy())
