"""Algorithm 2 — Bucket-based selection (paper Section 3.2; Rajasekaran et
al. [17]).

Deterministic like Algorithm 1, but engineered to *avoid load balancing*:

* the estimated median is the **weighted** median of the local medians
  (weights = live counts), which keeps the guaranteed-discard fraction even
  under arbitrary imbalance;
* a one-off preprocessing pass splits each processor's keys into
  ``O(log p)`` value-ordered buckets, after which both per-iteration chores
  (find the local median; partition around the broadcast pivot) only touch
  one bucket plus ``O(log log p)`` boundary probes instead of scanning all
  live keys.

Worst-case time (paper Table 2, no balancing):
``O(n/p (log log p + log n / log p) + tau log p log n + mu p log n)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError
from ..kernels.buckets import default_n_buckets
from ..kernels.costed import CostedKernels
from ..kernels.select import median_rank
from ..machine.engine import ProcContext
from .base import (
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    check_rank,
    decide_side,
    endgame,
    endgame_threshold,
)

__all__ = ["bucket_based_select"]


def bucket_based_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point for the bucket-based deterministic algorithm."""
    K = CostedKernels(ctx)
    p = ctx.size
    arr = np.asarray(shard)
    n = int(ctx.comm.allreduce_sum(int(arr.size)))
    check_rank(n, k)
    stats = SelectionStats(algorithm="bucket_based", n=n, p=p, k=k)
    rng = np.random.default_rng((cfg.seed, ctx.rank, 0xB0))
    threshold = endgame_threshold(cfg, p)
    guard = cfg.iteration_guard(n)

    # Step 0: preprocess the local keys into O(log p) ordered buckets.
    buckets = K.build_buckets(arr, default_n_buckets(p))

    while n > threshold:
        if len(stats.iterations) > guard:
            raise ConvergenceError(
                f"bucket_based exceeded {guard} iterations (n={n})"
            )
        n_before, k_before = n, k
        ni = buckets.total

        # Step 1: local median through the bucket walk (binary search for
        # the bucket + in-bucket sequential selection).
        if ni:
            local_med, scan = buckets.kth(median_rank(ni))
            K.charge_scan_evidence(scan, select_method=cfg.sequential_method)
        else:
            local_med = None

        # Step 2-3: gather (median, live-count) pairs; P0 takes the
        # *weighted* median; broadcast.
        pairs = ctx.comm.gather((local_med, ni), root=0)
        if ctx.rank == 0:
            vals = np.array([v for v, c in pairs if v is not None])
            wts = np.array([c for v, c in pairs if v is not None], dtype=np.float64)
            wm = K.weighted_median(vals, wts)
        else:
            wm = None
        wm = ctx.comm.broadcast(wm, root=0)

        # Steps 4-5: 3-way counts against the pivot using only straddling
        # buckets; Combine the global counts.
        lt, eq, gt, scan = buckets.count3_vs(wm)
        K.charge_scan_evidence(scan)
        c_less, c_eq = ctx.comm.combine(np.array([lt, eq], dtype=np.int64))
        c_less, c_eq = int(c_less), int(c_eq)

        # Step 6: decide and discard wholesale buckets.
        decision = decide_side(k, c_less, c_eq, n)
        if decision.found:
            stats.record(IterationRecord(
                n_before=n_before, n_after=0, k_before=k_before, k_after=k,
                pivot=wm, local_before=ni, local_after=0, balanced=False,
            ))
            stats.found_by_pivot = True
            return wm, stats
        if decision.keep_low:
            K.charge_scan_evidence(buckets.keep_lt(wm))
        else:
            K.charge_scan_evidence(buckets.keep_gt(wm))
        n, k = decision.new_n, decision.new_k
        stats.record(IterationRecord(
            n_before=n_before, n_after=n, k_before=k_before, k_after=k,
            pivot=wm, local_before=ni, local_after=buckets.total,
            balanced=False,
        ))

    # Steps 7-8: endgame on the surviving keys.
    stats.endgame_n = n
    value = endgame(ctx, K, buckets.as_array(), k, cfg.sequential_method,
                    rng=rng, impl=cfg.impl_override)
    return value, stats
