"""Algorithm 4 — Fast randomized selection (paper Section 3.4; Rajasekaran
et al. [17]).

Instead of one random pivot per iteration, sample ``o(n)`` keys, sort the
sample in parallel, and pick *two* keys ``k1 <= k2`` whose sample ranks
bracket the target's expected rank by ``±sqrt(|S| log n)``. With high
probability the answer lies in ``[k1, k2]``, and everything outside the band
is discarded — the live set shrinks geometrically and only
``O(log log n)`` iterations are needed.

Two refinements from the paper are implemented:

* **one-sided rescue** — if the target's rank falls outside the band (an
  "unsuccessful" iteration), the far side is still discarded rather than
  repeating the iteration verbatim (Section 3.4's modification);
* **sample size** ``|S| ~ n^delta`` with ``delta = 0.6``, the value the
  paper found best experimentally (DESIGN.md deviation #3 documents the
  reconstruction of the garbled pseudocode).

The iterate-shrink-endgame skeleton lives in
:mod:`repro.selection.engine`; this module contributes the sampling rule
(:class:`FastRandomizedStrategy`). When an interval carries **several**
target ranks (``repro.multi_select``), one sorted sample brackets *all* of
them at once — per-target rank brackets are merged, every boundary key is
fetched with a single batched lookup, and the live keys fork multiway in
one partition pass (the regular-sampling multi-selection of
arXiv:1611.05549).

Expected time (paper Table 1): ``O(n/p + (tau + mu) log p log log n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..machine.engine import ProcContext
from ..psort.sample_sort import (
    element_at_global_rank,
    elements_at_global_ranks,
    sample_sort,
)
from .base import SelectionConfig, SelectionStats, endgame_threshold
from .engine import (
    BandProposal,
    EndgameProposal,
    MultiCutProposal,
    PivotStrategy,
    contract_select,
)

__all__ = ["fast_randomized_select", "FastRandomizedParams",
           "FastRandomizedStrategy"]


@dataclass(frozen=True)
class FastRandomizedParams:
    """Tuning knobs of Algorithm 4.

    ``delta`` is the sample-size exponent (``|S| ~ n^delta``); the paper
    settled on 0.6. ``stall_limit`` bounds consecutive iterations without
    shrinkage before the algorithm falls back to the endgame (duplicates or
    pathological samples can pin the band). ``endgame_floor`` is the paper's
    constant ``C`` (declared in Algorithm 4's preamble): below it the
    geometric shrink stalls — the ±sqrt(|S| log n) band covers most of a
    small live set — so survivors are gathered and solved directly.
    """

    delta: float = 0.6
    stall_limit: int = 3
    min_sample: int = 8
    endgame_floor: int = 2048


class FastRandomizedStrategy(PivotStrategy):
    """Steps 1-4: per-rank Bernoulli sample, parallel sample sort, bracket
    the expected sample rank(s) by ``±sqrt(|S| log n)``, fetch the
    bracketing keys from the sorted sample."""

    name = "fast_randomized"

    def __init__(self, params: FastRandomizedParams | None = None):
        self.params = params if params is not None else FastRandomizedParams()
        self.stall_limit = self.params.stall_limit

    def _start(self) -> None:
        self.local_rng = np.random.default_rng(
            (self.cfg.seed, self.ctx.rank, 0xF5)
        )

    def threshold(self, p: int) -> int:
        t = endgame_threshold(self.cfg, p)
        if self.cfg.endgame_threshold is None:
            # Algorithm 4's constant C: while (n > max(p^2, C)).
            t = max(t, self.params.endgame_floor)
        return t

    def propose(self, interval):
        ctx, K, params = self.ctx, self.K, self.params
        n = interval.n
        ni = interval.live.count
        arr = interval.live.arr

        # Step 1: per-rank sample — expected global size n^delta, each key
        # kept independently with probability n^delta / n so the expected
        # per-rank share is n_i * n^delta / n (the paper's Step 1).
        s_target = max(params.min_sample, int(math.ceil(n ** params.delta)))
        prob = min(1.0, s_target / n)
        take = int(self.local_rng.binomial(ni, prob)) if ni else 0
        take = min(take, ni)
        if take:
            idx = self.local_rng.choice(ni, size=take, replace=False)
            sample = arr[idx]
        else:
            sample = arr[:0]
        K.scan_pass(take)

        # Step 2: parallel sort of the sample.
        sorted_run = sample_sort(ctx, K, sample)
        slen = int(ctx.comm.allreduce_sum(int(sorted_run.size)))
        if slen == 0:
            # No rank sampled anything (tiny n): bail out to the endgame.
            # Consistent on every rank — slen came from an allreduce.
            return EndgameProposal()

        # Step 3: bracket each target's expected sample rank by
        # ±sqrt(|S| log n).
        spread = int(math.ceil(
            math.sqrt(slen * max(1.0, math.log(max(n, 2))))
        ))

        if len(interval.targets) == 1:
            k = interval.targets[0].k
            m = -((-k * slen) // n)  # ceil(k * |S| / n)
            r1 = max(1, min(slen, m - spread))
            r2 = max(1, min(slen, m + spread))
            # Step 4: broadcast k1, k2 (owner lookup in the sorted sample).
            k1 = element_at_global_rank(ctx, sorted_run, r1)
            k2 = element_at_global_rank(ctx, sorted_run, r2)
            return BandProposal(k1, k2)

        # Multi-target: bracket every target, fetch ALL boundary keys in
        # one batched lookup, and let the engine fork the interval multiway
        # at the (deduplicated) keys. Every boundary stays a cut — even
        # when neighbouring brackets overlap — so each target ends up in
        # its own narrow segment and the stretches *between* targets are
        # discarded wholesale (merging overlapping brackets instead would
        # collapse dense targets into one giant band that barely shrinks).
        ranks: set[int] = set()
        for t in interval.targets:
            m = -((-t.k * slen) // n)
            ranks.add(max(1, min(slen, m - spread)))
            ranks.add(max(1, min(slen, m + spread)))
        values = elements_at_global_ranks(ctx, sorted_run, sorted(ranks))
        cuts = np.unique(np.asarray(values))
        return MultiCutProposal(tuple(cuts.tolist()))

    @property
    def endgame_rng(self) -> np.random.Generator:
        return self.local_rng


def fast_randomized_select(
    ctx: ProcContext,
    shard: np.ndarray,
    k: int,
    cfg: SelectionConfig,
    params: FastRandomizedParams | None = None,
) -> tuple[object, SelectionStats]:
    """SPMD entry point for fast randomized selection."""
    if params is None:
        params = FastRandomizedParams()
    return contract_select(
        ctx, shard, k, cfg, FastRandomizedStrategy(params)
    )
