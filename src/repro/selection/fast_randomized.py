"""Algorithm 4 — Fast randomized selection (paper Section 3.4; Rajasekaran
et al. [17]).

Instead of one random pivot per iteration, sample ``o(n)`` keys, sort the
sample in parallel, and pick *two* keys ``k1 <= k2`` whose sample ranks
bracket the target's expected rank by ``±sqrt(|S| log n)``. With high
probability the answer lies in ``[k1, k2]``, and everything outside the band
is discarded — the live set shrinks geometrically and only
``O(log log n)`` iterations are needed.

Two refinements from the paper are implemented:

* **one-sided rescue** — if the target's rank falls outside the band (an
  "unsuccessful" iteration), the far side is still discarded rather than
  repeating the iteration verbatim (Section 3.4's modification);
* **sample size** ``|S| ~ n^delta`` with ``delta = 0.6``, the value the
  paper found best experimentally (DESIGN.md deviation #3 documents the
  reconstruction of the garbled pseudocode).

Expected time (paper Table 1): ``O(n/p + (tau + mu) log p log log n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..balance.base import NoBalance
from ..errors import ConvergenceError
from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from ..psort.sample_sort import element_at_global_rank, sample_sort
from .base import (
    IterationRecord,
    SelectionConfig,
    SelectionStats,
    check_rank,
    endgame,
    endgame_threshold,
)

__all__ = ["fast_randomized_select", "FastRandomizedParams"]


@dataclass(frozen=True)
class FastRandomizedParams:
    """Tuning knobs of Algorithm 4.

    ``delta`` is the sample-size exponent (``|S| ~ n^delta``); the paper
    settled on 0.6. ``stall_limit`` bounds consecutive iterations without
    shrinkage before the algorithm falls back to the endgame (duplicates or
    pathological samples can pin the band). ``endgame_floor`` is the paper's
    constant ``C`` (declared in Algorithm 4's preamble): below it the
    geometric shrink stalls — the ±sqrt(|S| log n) band covers most of a
    small live set — so survivors are gathered and solved directly.
    """

    delta: float = 0.6
    stall_limit: int = 3
    min_sample: int = 8
    endgame_floor: int = 2048


def fast_randomized_select(
    ctx: ProcContext,
    shard: np.ndarray,
    k: int,
    cfg: SelectionConfig,
    params: FastRandomizedParams = FastRandomizedParams(),
) -> tuple[object, SelectionStats]:
    """SPMD entry point for fast randomized selection."""
    K = CostedKernels(ctx)
    p = ctx.size
    arr = np.asarray(shard)
    n = int(ctx.comm.allreduce_sum(int(arr.size)))
    check_rank(n, k)
    stats = SelectionStats(algorithm="fast_randomized", n=n, p=p, k=k)
    local_rng = np.random.default_rng((cfg.seed, ctx.rank, 0xF5))
    threshold = endgame_threshold(cfg, p)
    if cfg.endgame_threshold is None:
        # Algorithm 4's constant C: while (n > max(p^2, C)).
        threshold = max(threshold, params.endgame_floor)
    guard = cfg.iteration_guard(n)
    stalled = 0

    while n > threshold and stalled < params.stall_limit:
        if len(stats.iterations) > guard:
            raise ConvergenceError(
                f"fast_randomized exceeded {guard} iterations (n={n})"
            )
        n_before, k_before = n, k
        ni = int(arr.size)

        # Step 1: per-rank sample — expected global size n^delta, each key
        # kept independently with probability n^delta / n so the expected
        # per-rank share is n_i * n^delta / n (the paper's Step 1).
        s_target = max(params.min_sample, int(math.ceil(n ** params.delta)))
        prob = min(1.0, s_target / n)
        take = int(local_rng.binomial(ni, prob)) if ni else 0
        take = min(take, ni)
        if take:
            idx = local_rng.choice(ni, size=take, replace=False)
            sample = arr[idx]
        else:
            sample = arr[:0]
        K.scan_pass(take)

        # Step 2: parallel sort of the sample.
        sorted_run = sample_sort(ctx, K, sample)
        slen = int(ctx.comm.allreduce_sum(int(sorted_run.size)))
        if slen == 0:
            # No rank sampled anything (tiny n): bail out to the endgame.
            # Consistent on every rank — slen came from an allreduce.
            break

        # Step 3: bracket the expected sample rank by ±sqrt(|S| log n).
        m = -((-k * slen) // n)  # ceil(k * |S| / n)
        spread = int(math.ceil(math.sqrt(slen * max(1.0, math.log(max(n, 2))))))
        r1 = max(1, min(slen, m - spread))
        r2 = max(1, min(slen, m + spread))

        # Step 4: broadcast k1, k2 (owner lookup inside the sorted sample).
        k1 = element_at_global_rank(ctx, sorted_run, r1)
        k2 = element_at_global_rank(ctx, sorted_run, r2)

        # Step 5: 3-way band split of the live keys.
        less, middle, high = K.partition_band(arr, k1, k2)

        # Steps 6-7: global counts.
        c_less, c_mid = ctx.comm.combine(
            np.array([less.size, middle.size], dtype=np.int64)
        )
        c_less, c_mid = int(c_less), int(c_mid)

        # Step 8: keep the band when the target is inside; otherwise keep
        # the near side (the paper's one-sided rescue).
        successful = True
        if c_less < k <= c_less + c_mid:
            if k1 == k2:
                # Band collapsed to a single value covering the target rank.
                stats.record(IterationRecord(
                    n_before=n_before, n_after=0, k_before=k_before,
                    k_after=k, pivot=(k1, k2), local_before=ni,
                    local_after=0, balanced=False,
                ))
                stats.found_by_pivot = True
                return k1, stats
            arr = middle
            n, k = c_mid, k - c_less
        elif k <= c_less:
            successful = False  # the sample bracketed too high
            arr = less
            n = c_less
        else:
            successful = False  # bracketed too low
            arr = high
            n, k = n - c_less - c_mid, k - (c_less + c_mid)

        stalled = stalled + 1 if n == n_before else 0

        # Optional load balancing (paper: modified OMLB helps on sorted data).
        balanced = not isinstance(cfg.balancer, NoBalance)
        if balanced:
            arr = cfg.balancer.rebalance(ctx, K, arr)
        stats.record(IterationRecord(
            n_before=n_before, n_after=n, k_before=k_before, k_after=k,
            pivot=(k1, k2), local_before=ni, local_after=int(arr.size),
            balanced=balanced, successful=successful,
        ))

    # Steps 9-10: endgame.
    stats.endgame_n = n
    value = endgame(ctx, K, arr, k, cfg.sequential_method, rng=local_rng,
                    impl=cfg.impl_override)
    return value, stats
