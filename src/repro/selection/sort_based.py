"""Sort-based selection baseline (related-work strawman).

The paper's related work covers sorting-based selection (Berthome et al. [6]
on hypercubic networks): sort all the keys, then read off rank ``k``. It is
the obvious upper bound every dedicated selection algorithm must beat —
selection is interesting *because* ``O(n/p)`` beats ``O((n log n)/p)`` and a
full sort's communication volume.

Implemented here over the same sample-sort substrate fast randomized
selection uses, so the comparison in the benches is apples-to-apples:

1. parallel sample sort of the *entire* input;
2. one Global Concatenate of run lengths + a broadcast from the owner of
   global rank ``k``.
"""

from __future__ import annotations

import numpy as np

from ..kernels.costed import CostedKernels
from ..machine.engine import ProcContext
from ..psort.sample_sort import (
    element_at_global_rank,
    elements_at_global_ranks,
    sample_sort,
)
from .base import SelectionConfig, SelectionStats, check_rank
from .engine import MultiSelectionStats

__all__ = ["sort_based_select", "sort_based_multi_select"]


def sort_based_select(
    ctx: ProcContext, shard: np.ndarray, k: int, cfg: SelectionConfig
) -> tuple[object, SelectionStats]:
    """SPMD entry point: full parallel sort, then an O(1) rank lookup."""
    K = CostedKernels(ctx, kernels=cfg.kernels)
    arr = np.asarray(shard)
    n = int(ctx.comm.allreduce_sum(int(arr.size)))
    check_rank(n, k)
    stats = SelectionStats(algorithm="sort_based", n=n, p=ctx.size, k=k)

    sorted_run = sample_sort(ctx, K, arr)
    value = element_at_global_rank(ctx, sorted_run, k)
    stats.endgame_n = 0
    stats.found_by_pivot = True  # no iterate-and-discard phase at all
    return value, stats


def sort_based_multi_select(
    ctx: ProcContext, shard: np.ndarray, ks: list[int], cfg: SelectionConfig
) -> tuple[list, MultiSelectionStats]:
    """Multi-rank baseline: ONE full parallel sort answers every rank.

    This is where sorting-based selection stops being a strawman: the sort
    cost amortises over all ``q`` targets, so for large ``q`` it converges
    on the dedicated algorithms. The batched rank lookup costs two extra
    collectives total, not two per rank.
    """
    K = CostedKernels(ctx, kernels=cfg.kernels)
    arr = np.asarray(shard)
    n = int(ctx.comm.allreduce_sum(int(arr.size)))
    for k in ks:
        check_rank(n, k)
    stats = MultiSelectionStats(
        algorithm="sort_based", n=n, p=ctx.size, ks=list(ks)
    )
    sorted_run = sample_sort(ctx, K, arr)
    values = elements_at_global_ranks(ctx, sorted_run, list(ks))
    stats.found_by_pivot = len(ks)
    return values, stats
