"""Shared scaffolding for the four parallel selection algorithms.

Every algorithm in Section 3 has the same skeleton: iterate, shrinking the
set of live keys, while the global count exceeds ``p^2``; then gather the
survivors on processor 0 and finish with sequential selection (the paper's
final Steps). This module holds that skeleton's common pieces:

* :class:`SelectionConfig` — knobs shared by all algorithms (target rank,
  balancer, sequential method, seeds, iteration guard);
* :class:`IterationRecord` / :class:`SelectionStats` — per-iteration
  evidence (live counts, pivots, balance invocations) used by tests and the
  bench harness (e.g. to verify the O(log n) / O(log log n) iteration-count
  claims);
* :func:`endgame` — the ``Gather + sequential selection + Broadcast`` coda;
* :func:`decide_side` — the 3-way Step 6 shared by Algorithms 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..balance.base import Balancer, NoBalance
from ..errors import ConfigurationError, ConvergenceError
from ..kernels.costed import CostedKernels
from ..kernels.select import SelectMethod, select_cost
from ..machine.engine import ProcContext

__all__ = [
    "SelectionConfig",
    "IterationRecord",
    "SelectionStats",
    "Decision",
    "decide_side",
    "endgame",
    "endgame_threshold",
    "check_rank",
]


@dataclass
class SelectionConfig:
    """Run-time knobs common to all four algorithms.

    Attributes
    ----------
    balancer:
        Load-balancing strategy applied at the end of each iteration
        (:class:`~repro.balance.base.NoBalance` disables, the paper's
        default for the randomized algorithms).
    sequential_method:
        Sequential kernel used for local medians and the endgame. The
        deterministic algorithms use ``"deterministic"`` per the paper; the
        hybrid experiment of Section 5 swaps in ``"randomized"``.
    seed:
        Seed for every stochastic choice. The paper's randomized algorithms
        require all processors to draw identical random numbers; each rank
        seeds an identical PCG64 stream from this value.
    max_iterations:
        Safety guard; a correct run needs ~log2(n) at most.
    endgame_threshold:
        Stop iterating when the live count drops to this value or below
        (``None`` = the paper's ``p^2``).
    impl_override:
        Sequential kernel that *executes* local selections (simulated cost
        still follows ``sequential_method``). Set to ``"introselect"`` by
        the bench harness on huge grids: the selected value is identical for
        every implementation, so results and simulated times are unchanged
        while wall-clock drops by the deterministic kernel's constant.
    kernels:
        Executing kernel mode for per-rank local work (``"reference"`` or
        ``"fast"``, see :mod:`repro.kernels.dispatch`); ``None`` defers to
        ``$REPRO_KERNELS``. Values and simulated times are unchanged —
        only host wall clock.
    """

    balancer: Balancer = field(default_factory=NoBalance)
    sequential_method: SelectMethod = "randomized"
    seed: int = 0
    max_iterations: int | None = None
    endgame_threshold: int | None = None
    impl_override: SelectMethod | None = None
    kernels: str | None = None

    def iteration_guard(self, n: int) -> int:
        if self.max_iterations is not None:
            return self.max_iterations
        return 4 * max(1, int(np.ceil(np.log2(max(n, 2))))) + 64


@dataclass(frozen=True)
class IterationRecord:
    """What one while-loop iteration did, as seen by every rank."""

    n_before: int
    n_after: int
    k_before: int
    k_after: int
    pivot: object
    local_before: int
    local_after: int
    balanced: bool
    successful: bool = True
    #: Simulated-clock interval of the iteration as this rank saw it
    #: (``ctx.clock.now`` checkpoints stamped by the contraction engine;
    #: deterministic — identical across backends — and the source the
    #: observability layer derives iteration spans from). Both 0.0 for
    #: records constructed outside the engine.
    t_sim0: float = 0.0
    t_sim1: float = 0.0

    @property
    def shrink(self) -> float:
        return self.n_after / self.n_before if self.n_before else 0.0

    @property
    def sim_duration(self) -> float:
        """Simulated seconds the iteration spanned (0.0 when unstamped)."""
        return self.t_sim1 - self.t_sim0


@dataclass
class SelectionStats:
    """Aggregated run evidence (identical content on every rank)."""

    algorithm: str = ""
    n: int = 0
    p: int = 0
    k: int = 0
    iterations: list[IterationRecord] = field(default_factory=list)
    endgame_n: int = 0
    found_by_pivot: bool = False
    balance_invocations: int = 0
    unsuccessful_iterations: int = 0
    #: Sketch pre-filter evidence (a
    #: :class:`~repro.core.reports.PrefilterStats`) when the run was
    #: sketch-accelerated; ``None`` for plain contractions.
    prefilter: object = None

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    def record(self, rec: IterationRecord) -> None:
        self.iterations.append(rec)
        if rec.balanced:
            self.balance_invocations += 1
        if not rec.successful:
            self.unsuccessful_iterations += 1

    def mark_found_by_pivot(self) -> None:
        """Engine hook: a target rank was resolved by a pivot hit."""
        self.found_by_pivot = True


def check_rank(n: int, k: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"selection from empty input (n={n})")
    if not (1 <= k <= n):
        raise ConfigurationError(f"rank k={k} out of range [1, {n}]")


def endgame_threshold(cfg: SelectionConfig, p: int) -> int:
    """The paper's ``while (n > p^2)`` bound (overridable)."""
    if cfg.endgame_threshold is not None:
        return max(1, cfg.endgame_threshold)
    return max(1, p * p)


@dataclass(frozen=True)
class Decision:
    """Outcome of Step 6: either the pivot is the answer, or one side
    survives with an adjusted target rank."""

    found: bool
    keep_low: bool = False
    new_n: int = 0
    new_k: int = 0


def decide_side(k: int, c_less: int, c_eq: int, n: int) -> Decision:
    """3-way Step 6 (DESIGN.md deviation #1 handles duplicate pivots).

    Ranks ``(c_less, c_less + c_eq]`` are occupied by keys equal to the
    pivot, so the pivot *is* the answer there — the 2-way paper scheme only
    has the ``<=``/``>`` split and livelocks when ``c_eq == n``.
    """
    if k <= c_less:
        return Decision(found=False, keep_low=True, new_n=c_less, new_k=k)
    if k <= c_less + c_eq:
        return Decision(found=True)
    return Decision(
        found=False,
        keep_low=False,
        new_n=n - c_less - c_eq,
        new_k=k - c_less - c_eq,
    )


def endgame(
    ctx: ProcContext,
    kernels: CostedKernels,
    arr: np.ndarray,
    k: int,
    method: SelectMethod,
    rng: np.random.Generator | None = None,
    impl: SelectMethod | None = None,
):
    """Final Steps: Gather survivors on P0, select sequentially, Broadcast."""
    gathered = ctx.comm.gather_concat_array(arr)
    if ctx.rank == 0:
        if gathered is None or gathered.size == 0:
            raise ConvergenceError("endgame reached with no surviving keys")
        if not (1 <= k <= gathered.size):
            raise ConvergenceError(
                f"endgame rank {k} inconsistent with {gathered.size} survivors"
            )
        ctx.charge_compute(select_cost(ctx.model, gathered.size, method))
        from ..kernels.select import select_kth

        value = select_kth(gathered, k, method=impl or method, rng=rng)
    else:
        value = None
    return ctx.comm.broadcast(value, root=0)
