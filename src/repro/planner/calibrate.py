"""Fit tau/mu from probe launches: ground predictions on the actual host.

The paper's constants (``CM5``) describe a 1993 CM-5; the simulator's
*wall clock* on this host is whatever Python and the execution backend
make it. For the planner's predictions to rank plans by what the user
actually waits for, the cost model's communication constants can be
re-fit from measurements: launch a small fixed grid of probe programs
(``reps`` combines of ``w``-word payloads), time them, and least-squares
fit ``wall(w) = c0 + reps * rounds * (tau + mu * w)`` — the same
per-collective shape every topology's schedule charges. ``c0`` absorbs
the launch overhead so it never pollutes the per-collective constants.

Hierarchical models keep their inter/intra ratios: ``tau_inter/tau`` and
``mu_inter/mu`` are preserved under the re-fit, since the probe grid
cannot separate link classes (every combine crosses both).

Entry points: :func:`calibrate_cost_model`, or the convenience method
``CostModel.calibrate(machine)``.
"""

from __future__ import annotations

import operator
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ConfigurationError
from ..machine.cost_model import CostModel
from ..machine.topology import log2_ceil

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.array import Machine

__all__ = ["calibrate_cost_model", "DEFAULT_PROBE_SIZES"]

#: Payload sizes (words) of the probe grid: a latency point, a mid point
#: and a bandwidth point, so tau and mu separate cleanly in the fit.
DEFAULT_PROBE_SIZES: tuple[int, ...] = (1, 2048, 65536)

#: Constants are clamped to this floor so a fast host can never fit a
#: zero/negative price (which would make every plan free and ranking moot).
_FLOOR = 1e-12


@dataclass(frozen=True)
class _ProbeProgram:
    """Picklable probe body: ``reps`` combines of a ``words``-word payload.

    A frozen dataclass (not a closure) so the persistent pool backend can
    ship it to workers; ``operator.add`` keeps the reduction picklable.
    """

    words: int
    reps: int

    def __call__(self, ctx, shard):
        payload = np.zeros(self.words, dtype=np.float64)
        acc = 0.0
        for _ in range(self.reps):
            out = ctx.comm.combine(payload, op=operator.add)
            acc += float(out[0])
        return acc


def _median_wall(machine: "Machine", program: _ProbeProgram,
                 trials: int) -> float:
    walls = []
    shards = [np.zeros(1) for _ in range(machine.n_procs)]
    for _ in range(trials):
        t0 = time.perf_counter()
        machine.run(program, rank_args=[(s,) for s in shards])
        walls.append(time.perf_counter() - t0)
    walls.sort()
    return walls[len(walls) // 2]


def calibrate_cost_model(
    machine: "Machine",
    reps: int = 8,
    sizes: tuple[int, ...] = DEFAULT_PROBE_SIZES,
    trials: int = 3,
    model: "CostModel | None" = None,
) -> CostModel:
    """Probe ``machine`` and return its cost model re-fit to wall time.

    Runs ``len(sizes) * trials`` launches (a few hundred milliseconds on
    the default shapes). The returned model has host-fitted ``tau``/``mu``
    (hierarchical ratios preserved from ``model``, defaulting to the
    machine's own), a ``*-calibrated`` name, and is otherwise identical;
    the machine itself is not mutated — rebuild it (or a Session) with the
    returned model to plan against it.
    """
    if reps < 1 or trials < 1 or len(sizes) < 2:
        raise ConfigurationError(
            "calibration needs reps >= 1, trials >= 1 and >= 2 probe sizes"
        )
    if model is None:
        model = machine.cost_model
    rounds = log2_ceil(max(machine.n_procs, 2))
    rows, walls = [], []
    for words in sizes:
        wall = _median_wall(machine, _ProbeProgram(int(words), reps), trials)
        rows.append([1.0, reps * rounds, reps * rounds * float(words)])
        walls.append(wall)
    coeff, *_ = np.linalg.lstsq(np.asarray(rows), np.asarray(walls),
                                rcond=None)
    tau = float(max(coeff[1], _FLOOR))
    mu = float(max(coeff[2], _FLOOR))
    changes: dict = {"tau": tau, "mu": mu,
                     "name": f"{model.name}-calibrated"}
    if model.tau_inter is not None and model.tau > 0.0:
        changes["tau_inter"] = tau * (model.tau_inter / model.tau)
    if model.mu_inter is not None and model.mu > 0.0:
        changes["mu_inter"] = mu * (model.mu_inter / model.mu)
    return model.replace(**changes)
