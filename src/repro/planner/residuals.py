"""Self-calibration: per-(algorithm, topology, p-bucket) residual store.

Closed-form predictions carry modelling error — leading constants are
calibrated on one machine shape and the formulas are expected-case. The
store closes the loop: every executed launch that carried a prediction
reports ``(predicted, actual)`` here, keyed by algorithm, topology base
name and a log2 bucket of ``p``, and the planner multiplies future
predictions by the median observed ``actual / predicted`` ratio for the
key. Medians over a bounded window make the correction robust to the odd
outlier launch and let it track drift.

Corrections are observable: each update sets the
``repro.planner.correction`` gauge for its key and bumps the
``repro.planner.mispredict`` counter when the *corrected* prediction was
still off by more than :data:`MISPREDICT_THRESHOLD` relative error.
"""

from __future__ import annotations

import statistics
import threading
from collections import deque
from contextlib import contextmanager

from ..machine.topology import Topology, log2_ceil
from ..obs.metrics import REGISTRY

__all__ = [
    "MISPREDICT_THRESHOLD",
    "ResidualStore",
    "default_store",
    "reset_default_store",
    "use_store",
]

#: Corrected-prediction relative error above which a launch counts as a
#: misprediction (bumps ``repro.planner.mispredict``).
MISPREDICT_THRESHOLD = 0.5

#: Ratios remembered per key; medians over a short window track drift.
_WINDOW = 32


def _topology_key(topology: "Topology | str | None") -> str:
    if topology is None:
        return "crossbar"
    if isinstance(topology, Topology):
        return topology.name
    return str(topology).split(":", 1)[0]


class ResidualStore:
    """Thread-safe map key -> recent ``actual / predicted`` ratios."""

    def __init__(self, window: int = _WINDOW):
        self._window = window
        self._ratios: dict[tuple, deque] = {}
        self._lock = threading.Lock()

    @staticmethod
    def key(algorithm: str, topology, p: int) -> tuple:
        """p is bucketed by log2 so nearby machine widths share evidence."""
        return (algorithm, _topology_key(topology), log2_ceil(max(p, 1)))

    def correction(self, algorithm: str, topology, p: int) -> float:
        """Multiplier for a fresh prediction (1.0 when no evidence yet)."""
        with self._lock:
            ratios = self._ratios.get(self.key(algorithm, topology, p))
            if not ratios:
                return 1.0
            return statistics.median(ratios)

    def observe(
        self,
        algorithm: str,
        topology,
        p: int,
        predicted: float,
        actual: float,
    ) -> float:
        """Record one launch; returns the corrected relative error."""
        if predicted <= 0.0 or actual <= 0.0:
            return 0.0
        key = self.key(algorithm, topology, p)
        with self._lock:
            ratios = self._ratios.setdefault(key, deque(maxlen=self._window))
            corrected = predicted * (statistics.median(ratios) if ratios
                                     else 1.0)
            ratios.append(actual / predicted)
            new_correction = statistics.median(ratios)
        rel_err = abs(corrected - actual) / actual
        alg, topo_name, bucket = key
        REGISTRY.gauge("repro.planner.correction", algorithm=alg,
                       topology=topo_name,
                       p_bucket=str(bucket)).set_value(new_correction)
        if rel_err > MISPREDICT_THRESHOLD:
            REGISTRY.counter("repro.planner.mispredict", algorithm=alg,
                             topology=topo_name).inc()
        return rel_err

    def clone(self) -> "ResidualStore":
        """An independent copy of the current evidence (benches use this
        to isolate measurement arms from each other's feedback)."""
        out = ResidualStore(window=self._window)
        with self._lock:
            for key, ratios in self._ratios.items():
                out._ratios[key] = deque(ratios, maxlen=self._window)
        return out

    def snapshot(self) -> dict:
        """Key -> (observations, median correction); for explain/debug."""
        with self._lock:
            return {k: (len(v), statistics.median(v))
                    for k, v in self._ratios.items() if v}

    def clear(self) -> None:
        with self._lock:
            self._ratios.clear()


_DEFAULT = ResidualStore()
_ACTIVE: list[ResidualStore] = [_DEFAULT]


def default_store() -> ResidualStore:
    """The store launches feed and the planner consults by default."""
    return _ACTIVE[-1]


def reset_default_store() -> None:
    """Drop all accumulated evidence (tests; fresh benchmarks)."""
    _ACTIVE[-1].clear()


@contextmanager
def use_store(store: ResidualStore):
    """Temporarily swap the process-default store (tests, benches)."""
    _ACTIVE.append(store)
    try:
        yield store
    finally:
        _ACTIVE.pop()
