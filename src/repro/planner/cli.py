"""``python -m repro.planner`` — explain a planning decision.

``explain`` runs the planner analytically (no launches, no arrays) for a
query shape you describe on the command line and prints the ranked
candidate table: per candidate the closed-form prediction, the residual
store's learned correction (1.0 in a fresh process) and the corrected
cost the argmin ranks on.

Example::

    python -m repro.planner explain --n 1000000 --p 16 --topology hypercube
"""

from __future__ import annotations

import argparse

from ..machine.cost_model import cm5, cm5_fast_network, cm5_two_level
from ..machine.topology import available_topologies
from .planner import choose_plan

__all__ = ["main"]

_MODELS = {
    "cm5": cm5,
    "cm5-fastnet": cm5_fast_network,
    "cm5-2level": cm5_two_level,
}


def _cmd_explain(args) -> int:
    decision = choose_plan(
        args.n,
        args.p,
        _MODELS[args.model](),
        topology=args.topology,
        sketches_available=args.sketch,
        hint=args.hint,
    )
    print(decision.table())
    winner = decision.winner
    if winner is not None:
        print(f"winner: {winner.label()} "
              f"(corrected {winner.corrected * 1e3:.4f} ms)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.planner",
        description="Explain cost-model-driven plan choices.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "explain", help="print the ranked candidate table for a query shape"
    )
    p.add_argument("--n", type=int, required=True, help="total keys")
    p.add_argument("--p", type=int, required=True, help="processors")
    p.add_argument("--topology", default=None,
                   help=f"machine shape ({', '.join(available_topologies())}; "
                        "default crossbar)")
    p.add_argument("--model", choices=sorted(_MODELS), default="cm5",
                   help="cost-model preset (default cm5)")
    p.add_argument("--sketch", action="store_true",
                   help="price sketch-prefiltered variants too (as if the "
                        "array maintained ingest-time sketches)")
    p.add_argument("--hint", choices=("sorted", "degenerate"), default=None,
                   help="distribution hint (sorted = Table 2 worst case)")
    p.set_defaults(fn=_cmd_explain)

    args = parser.parse_args(argv)
    return args.fn(args)
