"""Cost-model-driven query planner: pick the fast plan automatically.

The paper's central argument is that algorithm choice on a coarse-grained
machine is a *cost-model* question — which of the algorithms wins depends
on ``n``, ``p`` and the machine's communication constants. This package
turns that argument into a system component:

* :mod:`~repro.planner.cost` prices any (algorithm, n, p, topology)
  combination analytically by injecting lowered-:class:`Schedule` prices
  into the closed-form skeleton of :func:`repro.bench.model.predict`;
* :mod:`~repro.planner.planner` enumerates the candidate space
  (algorithm × prefilter, with the machine's topology and the base plan's
  kernel knobs carried through), applies per-(algorithm, topology,
  p-bucket) residual corrections, and returns the predicted winner as a
  concrete :class:`~repro.core.plan.SelectionPlan`;
* :mod:`~repro.planner.residuals` is the self-calibration loop: every
  executed launch's ``cost_residual`` feeds a correction store that
  scales future predictions;
* :mod:`~repro.planner.calibrate` fits the cost model's tau/mu constants
  from probe launches on the actual host;
* ``python -m repro.planner explain`` prints the ranked candidate table.

Entry points: ``SelectionPlan(algorithm="auto")`` resolves through
:func:`resolve_auto` on every launch, and ``SelectionService`` defaults
to auto when no plan is given.
"""

from __future__ import annotations

from .calibrate import calibrate_cost_model
from .cost import CLOSED_FORM_ALGORITHMS, predict_on_topology
from .planner import (
    Candidate,
    PlanDecision,
    choose_plan,
    enumerate_candidates,
    plan_query,
    resolve_auto,
)
from .residuals import ResidualStore, default_store, reset_default_store, use_store

__all__ = [
    "CLOSED_FORM_ALGORITHMS",
    "Candidate",
    "PlanDecision",
    "ResidualStore",
    "calibrate_cost_model",
    "choose_plan",
    "default_store",
    "enumerate_candidates",
    "plan_query",
    "predict_on_topology",
    "reset_default_store",
    "resolve_auto",
    "use_store",
]
