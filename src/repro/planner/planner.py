"""Candidate enumeration and plan choice: the planner proper.

Given a query's shape (``n``, ``p``), the machine's cost model and
topology, and optional distribution evidence (ingest-time sketches on a
:class:`~repro.stream.StreamingArray`), the planner:

1. enumerates candidate plans — every closed-form algorithm, each plain
   and (when sketches are already paid for) sketch-prefiltered, with the
   base plan's seed / kernel / backend knobs carried through unchanged;
2. prices each candidate analytically on the *actual* machine shape via
   :func:`~repro.planner.cost.predict_on_topology`;
3. scales every price by the residual store's learned correction for its
   (algorithm, topology, p-bucket) key;
4. returns the corrected-cost argmin as a concrete
   :class:`~repro.core.plan.SelectionPlan`, wrapped in a
   :class:`PlanDecision` that keeps the full ranked table for
   ``python -m repro.planner explain`` and the obs span.

Deviation note (see DESIGN.md): the kernel-mode dimension of the ISSUE's
candidate space collapses analytically — simulated charges follow the
reference cost formulas regardless of ``kernels``, so every kernel mode
prices identically and the base plan's choice is simply forwarded.
Likewise hybrids and ``sort_based`` never appear as candidates: the paper
states no closed-form bound for them, so the planner has no way to price
them (picking them explicitly still works and simply skips prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.plan import SelectionPlan, as_plan
from ..errors import ConfigurationError
from ..machine.cost_model import CostModel
from ..machine.topology import Topology, resolve_topology
from ..obs import get_recorder
from .cost import CLOSED_FORM_ALGORITHMS, predict_on_topology, predict_prefilter
from .residuals import ResidualStore, default_store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.array import DistributedArray

__all__ = [
    "Candidate",
    "PlanDecision",
    "choose_plan",
    "enumerate_candidates",
    "plan_query",
    "resolve_auto",
]

#: Fallback algorithm when nothing can be priced (n == 0 queries):
#: the paper's overall winner and the repo-wide default plan.
_FALLBACK_ALGORITHM = "fast_randomized"


@dataclass(frozen=True)
class Candidate:
    """One priced plan: analytic prediction × learned correction."""

    plan: SelectionPlan
    predicted: float
    correction: float

    @property
    def corrected(self) -> float:
        return self.predicted * self.correction

    def label(self) -> str:
        suffix = "+sketch" if self.plan.prefilter == "sketch" else ""
        return f"{self.plan.algorithm}{suffix}"


@dataclass(frozen=True)
class PlanDecision:
    """The chosen plan plus the full ranked candidate table."""

    chosen: SelectionPlan
    candidates: tuple[Candidate, ...]
    n: int
    p: int
    topology: str
    hint: str | None = None

    @property
    def winner(self) -> Candidate | None:
        for cand in self.candidates:
            if cand.plan is self.chosen:
                return cand
        return self.candidates[0] if self.candidates else None

    def table(self) -> str:
        """The ranked candidate table ``explain`` prints."""
        lines = [
            f"query: n={self.n} p={self.p} topology={self.topology}"
            + (f" hint={self.hint}" if self.hint else ""),
            f"{'rank':>4} {'candidate':<28} {'predicted_ms':>13} "
            f"{'correction':>11} {'corrected_ms':>13}",
        ]
        for i, cand in enumerate(self.candidates, 1):
            marker = " <- chosen" if cand.plan is self.chosen else ""
            lines.append(
                f"{i:>4} {cand.label():<28} {cand.predicted * 1e3:>13.4f} "
                f"{cand.correction:>11.3f} {cand.corrected * 1e3:>13.4f}"
                f"{marker}"
            )
        if not self.candidates:
            lines.append(
                f"  (no candidates priced; fell back to "
                f"{self.chosen.algorithm})"
            )
        return "\n".join(lines)


def enumerate_candidates(
    base: SelectionPlan,
    n: int,
    p: int,
    topology: "Topology | str | None",
    model: CostModel,
    store: ResidualStore,
    sketches_available: bool = False,
    hint: str | None = None,
) -> tuple[Candidate, ...]:
    """Price the candidate space for one query shape.

    One candidate per closed-form algorithm, carrying the base plan's
    knobs; when the array maintains ingest-time sketches (and the base
    plan does not already force a prefilter) each algorithm also gets a
    sketch-prefiltered variant. A ``"degenerate"`` hint (all-equal keys:
    the merged sketch window cannot shrink the live set) suppresses the
    prefiltered variants. A ``"sorted"`` hint prices with the paper's
    Table 2 worst-case forms instead of Table 1.
    """
    table = 2 if hint == "sorted" else 1
    prefilters: tuple[str | None, ...]
    if base.prefilter is not None:
        prefilters = (base.prefilter,)
    elif sketches_available and hint != "degenerate":
        prefilters = (None, "sketch")
    else:
        prefilters = (None,)
    out = []
    for algorithm in CLOSED_FORM_ALGORITHMS:
        for prefilter in prefilters:
            plan = base.replace(algorithm=algorithm, prefilter=prefilter)
            if prefilter == "sketch":
                pred = predict_prefilter(algorithm, n, p, model, topology,
                                         eps=plan.sketch_eps, table=table)
            else:
                pred = predict_on_topology(algorithm, n, p, model, topology,
                                           table=table)
            out.append(Candidate(
                plan=plan,
                predicted=pred.total,
                correction=store.correction(algorithm, topology, p),
            ))
    # Stable ranking: corrected cost, then name, so ties never flap.
    out.sort(key=lambda c: (c.corrected, c.label()))
    return tuple(out)


def choose_plan(
    n: int,
    p: int,
    model: CostModel,
    topology: "Topology | str | None" = None,
    base: SelectionPlan | None = None,
    store: ResidualStore | None = None,
    sketches_available: bool = False,
    hint: str | None = None,
) -> PlanDecision:
    """Rank the candidate space and return the predicted winner.

    Pure and analytic — no launches. Emits a ``planner.choose`` span with
    the candidate count and winner so planning is visible in traces.
    """
    base = as_plan(base, {})
    if base.algorithm == "auto":
        base = base.replace(algorithm=_FALLBACK_ALGORITHM)
    if store is None:
        store = default_store()
    topo = resolve_topology(topology, max(p, 1))
    with get_recorder().span("planner.choose", rank=None, n=n, p=p,
                             topology=topo.name) as span:
        if n > 0 and p > 0:
            candidates = enumerate_candidates(
                base, n, p, topo, model, store,
                sketches_available=sketches_available, hint=hint,
            )
        else:
            candidates = ()
        chosen = candidates[0].plan if candidates else base
        span.set(candidates=len(candidates), winner=chosen.algorithm,
                 predicted_s=candidates[0].predicted if candidates else None)
    return PlanDecision(chosen=chosen, candidates=candidates, n=n, p=p,
                        topology=topo.name, hint=hint)


def _distribution_hint(data: "DistributedArray", eps: float) -> str | None:
    """Degenerate-data evidence from ingest-time sketches, if maintained.

    All-equal keys make a sketch prefilter useless (the candidate window
    is the whole array), so detect that for free from the cached
    summaries' global min == max.
    """
    sketches_fn = getattr(data, "local_sketches", None)
    if sketches_fn is None:
        return None
    try:
        sketches = sketches_fn(eps)
    except Exception:  # pragma: no cover - defensive: hints are optional
        return None
    lo = hi = None
    for sk in sketches:
        if sk is None or getattr(sk, "count", 0) == 0 or sk.keys.size == 0:
            continue
        s_min, s_max = sk.keys[0], sk.keys[-1]
        lo = s_min if lo is None else min(lo, s_min)
        hi = s_max if hi is None else max(hi, s_max)
    if lo is not None and lo == hi:
        return "degenerate"
    return None


def plan_query(
    data: "DistributedArray",
    base: SelectionPlan | None = None,
    store: ResidualStore | None = None,
) -> PlanDecision:
    """Plan one query against a concrete array + machine.

    Reads everything the planner needs off the objects themselves: ``n``
    and ``p`` from the array, the cost model and topology from the
    machine (the plan's explicit topology wins, as it does at launch),
    and distribution evidence from ingest-time sketches when the array
    maintains them.
    """
    base = as_plan(base, {})
    machine = data.machine
    topology = (base.topology if base.topology is not None
                else machine.topology)
    sketches_available = getattr(data, "local_sketches", None) is not None
    hint = (_distribution_hint(data, base.sketch_eps)
            if sketches_available else None)
    return choose_plan(
        data.n, data.p, machine.cost_model, topology, base=base,
        store=store, sketches_available=sketches_available, hint=hint,
    )


def resolve_auto(
    data: "DistributedArray",
    plan: SelectionPlan,
    store: ResidualStore | None = None,
) -> SelectionPlan:
    """Resolve an ``algorithm="auto"`` plan to the planner's winner.

    The launch-path entry point: every knob of the incoming plan except
    ``algorithm``/``prefilter`` is preserved, so seeds, kernels, backend
    and topology behave exactly as if the user had named the winning
    algorithm explicitly — which is what makes auto bit-identical to the
    explicit plan.
    """
    if plan.algorithm != "auto":
        raise ConfigurationError(
            f"resolve_auto expects algorithm='auto', got {plan.algorithm!r}"
        )
    return plan_query(data, base=plan, store=store).chosen
