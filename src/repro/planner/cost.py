"""Schedule-based analytic pricing: closed forms on any topology.

:func:`repro.bench.model.predict` reproduces the paper's Tables 1-2 on the
crossbar. The compute side of those formulas is topology-independent; only
the collective prices change with the machine shape. So pricing a launch on
a binomial tree, hypercube or two-level machine is the same skeleton with
different per-collective constants — and every topology already knows its
own prices, because lowering a collective yields a
:class:`~repro.machine.topology.Schedule` whose ``cost`` is the simulated
seconds it will charge. :func:`predict_on_topology` injects those lowered
prices into the closed forms via the ``coll_cost``/``gather_cost`` hooks.

On the crossbar the injection is skipped entirely and the legacy
closed-form path runs unchanged, so existing crossbar predictions stay
bit-identical.
"""

from __future__ import annotations

from ..bench.model import Prediction, predict
from ..errors import ConfigurationError
from ..machine.cost_model import CostModel
from ..machine.topology import CrossbarTopology, Topology, resolve_topology

__all__ = [
    "CLOSED_FORM_ALGORITHMS",
    "predict_on_topology",
    "predict_prefilter",
]

#: Algorithms with a closed-form prediction (the planner's candidate pool).
#: Hybrids and sort_based have no closed form — the paper states no bound
#: for them — so the planner never proposes them and ``predicted_time``
#: stays ``None`` when the user picks one explicitly.
CLOSED_FORM_ALGORITHMS: tuple[str, ...] = (
    "median_of_medians",
    "bucket_based",
    "randomized",
    "fast_randomized",
)


def predict_on_topology(
    algorithm: str,
    n: int,
    p: int,
    model: CostModel,
    topology: "Topology | str | None" = None,
    table: int = 1,
) -> Prediction:
    """Closed-form estimate with collective prices from ``topology``.

    ``topology`` may be a spec string (``"hypercube"``,
    ``"two_level:cluster=8"``), a :class:`Topology` instance, or ``None``
    for the default crossbar. Raises
    :class:`~repro.errors.ConfigurationError` for algorithms without a
    closed form (hybrids, ``sort_based``), exactly like ``predict``.
    """
    topo = resolve_topology(topology, p)
    if isinstance(topo, CrossbarTopology):
        # Legacy path: bit-identical to the pre-planner crossbar predictor.
        return predict(algorithm, n, p, model, table)

    def coll_cost(m: CostModel, _p: int) -> float:
        return topo.combine_schedule(m, 1.0).cost

    def gather_cost(m: CostModel, _p: int, words: float = 1.0) -> float:
        return topo.gather_schedule(m, 0, words).cost

    return predict(algorithm, n, p, model, table,
                   coll_cost=coll_cost, gather_cost=gather_cost)


def predict_prefilter(
    algorithm: str,
    n: int,
    p: int,
    model: CostModel,
    topology: "Topology | str | None" = None,
    eps: float = 0.01,
    table: int = 1,
) -> Prediction:
    """Estimate for a sketch-prefiltered launch (planner ranking only).

    The refine path allgathers each rank's ~``2/eps`` sketch summary, scans
    the local shard once to carve the candidate window, then runs the
    algorithm on ``n_eff ~ 2 * eps * n`` survivors. This estimate prices
    those three stages; it is intentionally *not* used for
    ``report.predicted_time`` (the report predicts the launch it actually
    ran, and a prefiltered query runs a refine pass plus a smaller launch).
    """
    if not 0.0 < eps < 0.5:
        raise ConfigurationError(f"prefilter eps must be in (0, 0.5), got {eps}")
    topo = resolve_topology(topology, p)
    summary_words = 2.0 / eps
    exchange = topo.allgather_schedule(model, summary_words).cost
    scan = (n / max(p, 1)) * model.compute.partition
    n_eff = min(n, max(p, int(2.0 * eps * n) + 1))
    inner = predict_on_topology(algorithm, n_eff, p, model, topo, table)
    return Prediction(algorithm=algorithm, table=table,
                      compute=scan + inner.compute,
                      comm=exchange + inner.comm)
