"""The :class:`SelectionPlan`: a frozen, validated recipe for selection.

Historically every entry point (``select``, ``multi_select``, ``median``,
``quantiles``, the bench harness) re-declared the same eight tuning kwargs
and re-validated them on every call. A plan names that configuration ONCE —
algorithm, balancer, seed, sequential method, endgame/iteration limits,
fast-randomized parameters — validates it at construction (unknown names
raise :class:`~repro.errors.ConfigurationError` listing the available
options), and is then reused across any number of queries. Plans are frozen
and carry a stable :meth:`cache_key`, which is what lets a
:class:`~repro.core.session.Session` coalesce queries and cache results
per ``(array fingerprint, plan, rank)``.

``plan.resolve()`` reproduces the historical ``_resolve_config`` pairing
bit-for-bit: ``balancer="default"`` maps to the paper's pairing (global
exchange for median of medians, nothing otherwise), and a fresh balancer
instance is built per resolution so stateful balancers never leak between
launches.
"""

from __future__ import annotations

import dataclasses
import numbers
from dataclasses import dataclass
from typing import Sequence, get_args

from ..balance.base import Balancer, get_balancer
from ..errors import ConfigurationError
from ..kernels.dispatch import KERNEL_MODES
from ..kernels.select import SelectMethod
from ..machine.backends import available_backends
from ..machine.topology import validate_topology_spec
from ..selection import ALGORITHMS, SelectionConfig
from ..selection.fast_randomized import FastRandomizedParams

__all__ = [
    "SelectionPlan",
    "SEQUENTIAL_METHODS",
    "PREFILTERS",
    "as_plan",
    "validate_rank",
    "validate_targets",
]

#: The sequential kernels ``sequential_method`` / ``impl_override`` accept.
SEQUENTIAL_METHODS: tuple[str, ...] = get_args(SelectMethod)

#: Pre-filter stages a plan may request before the exact contraction.
PREFILTERS: tuple[str, ...] = ("sketch",)


def validate_rank(k, n: int) -> int:
    """Coerce and range-check one 1-based target rank against ``n`` keys.

    This is THE pre-launch validation seam: every query surface (Session,
    the launch primitives, the serve tier) funnels target ranks through
    here *before* any SPMD launch is assembled, so an out-of-range ``k``
    costs a clean :class:`ConfigurationError` and zero launches instead of
    a burned launch surfacing as ``WorkerError``.
    """
    if not isinstance(k, numbers.Integral) or isinstance(k, bool):
        raise ConfigurationError(
            f"rank k must be an integer, got {k!r}"
        )
    k = int(k)
    if not (1 <= k <= max(n, 0)):
        raise ConfigurationError(f"rank k={k} out of range [1, {n}]")
    return k


def validate_targets(ks: Sequence, n: int) -> list[int]:
    """Coerce and range-check a whole multi-select target list (shared by
    every launch path; see :func:`validate_rank`)."""
    return [validate_rank(k, n) for k in ks]


def _check_method(value: str | None, what: str) -> None:
    if value is not None and value not in SEQUENTIAL_METHODS:
        raise ConfigurationError(
            f"unknown {what} {value!r}; available: {sorted(SEQUENTIAL_METHODS)}"
        )


def _as_int(value, what: str, minimum: int | None = None) -> int:
    """Coerce any integral (int, numpy integer) to a plain int; bools and
    non-integrals are configuration errors."""
    if isinstance(value, numbers.Integral) and not isinstance(value, bool):
        value = int(value)
        if minimum is None or value >= minimum:
            return value
    kind = "an integer" if minimum is None else "a non-negative integer"
    raise ConfigurationError(f"{what} must be {kind}, got {value!r}")


@dataclass(frozen=True)
class SelectionPlan:
    """A validated, reusable selection configuration.

    Attributes
    ----------
    algorithm:
        One of :data:`repro.selection.ALGORITHMS`, or ``"auto"`` to let
        the query planner (:mod:`repro.planner`) pick the predicted-fastest
        algorithm per (array, machine shape) at launch time. Auto plans
        answer bit-identically to the plan the planner would return from
        :func:`repro.planner.plan_query` (selection values are
        algorithm-independent: the k-th order statistic).
    balancer:
        Load balancing strategy name (``"none"``, ``"omlb"``,
        ``"modified_omlb"``, ``"dimension_exchange"``, ``"global_exchange"``),
        a :class:`~repro.balance.base.Balancer` class/instance, ``None``
        (no balancing), or ``"default"`` for the paper's pairing.
    seed:
        Drives every stochastic choice; equal seeds give bit-identical runs
        (values *and* simulated times).
    sequential_method:
        Sequential kernel for local medians and the endgame (``None`` = the
        algorithm's paper default).
    endgame_threshold / max_iterations:
        Contraction limits (``None`` = the paper's ``p^2`` bound and the
        ``~4 log2 n`` safety guard).
    fast_params:
        Algorithm 4 tuning knobs; only consumed by ``fast_randomized``.
    impl_override:
        Sequential kernel that *executes* local selections while simulated
        cost still follows ``sequential_method`` (the bench harness sets
        ``"introselect"`` on huge grids).
    backend:
        Execution backend for launches this plan drives (``"serial"``,
        ``"threaded"``, ``"process"`` or ``"pool"``); ``None`` defers to
        the machine's backend (itself defaulting to ``$REPRO_BACKEND`` or
        threaded). Values, RNG streams and simulated times are
        backend-independent; only wall-clock changes.
    kernels:
        Executing kernel mode for per-rank local work (``"reference"`` or
        ``"fast"``); ``None`` defers to ``$REPRO_KERNELS`` (default
        reference). Values, RNG streams and simulated times are
        mode-independent — charges always follow the reference cost
        formulas; only wall-clock changes.
    topology:
        Machine shape the launches' collectives are lowered onto
        (``"crossbar"``, ``"binomial-tree"``, ``"hypercube"``,
        ``"two-level"`` or ``"two-level:<cluster_size>"``); ``None``
        defers to the machine's topology (itself defaulting to
        ``$REPRO_TOPOLOGY`` or crossbar). Values and RNG streams are
        topology-independent; simulated time is exactly what the shape
        changes, so the spec is part of the cache key.
    prefilter:
        ``"sketch"`` localises every target rank with a mergeable quantile
        sketch (one Global Concatenate + one Combine) and runs the exact
        contraction on the surviving candidate interval only
        (:mod:`repro.stream.refine`). Answers are bit-identical to the
        plain path; ``"none"``/``None`` disables.
    sketch_eps:
        Accuracy of the pre-filter sketch: stored size is ``O(1/eps)``
        and the surviving fraction ``O(eps)``. Only consumed when
        ``prefilter="sketch"``.
    trace:
        Per-launch collective tracing override: ``True`` forces a real
        tracer for launches this plan drives even on an untraced machine
        (so ``report.collective_rounds()`` and the observability layer's
        collective leaf spans are populated), ``False`` forces it off,
        ``None`` defers to the machine (and to :mod:`repro.obs` capture).
        Purely observational — values, RNG streams and simulated times are
        unchanged — so it is deliberately NOT part of :meth:`cache_key`.
    """

    algorithm: str = "fast_randomized"
    balancer: object = "default"
    seed: int = 0
    sequential_method: str | None = None
    endgame_threshold: int | None = None
    max_iterations: int | None = None
    fast_params: FastRandomizedParams | None = None
    impl_override: str | None = None
    backend: str | None = None
    kernels: str | None = None
    topology: str | None = None
    prefilter: str | None = None
    sketch_eps: float = 0.01
    trace: bool | None = None

    def __post_init__(self) -> None:
        if self.algorithm != "auto" and self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {sorted(ALGORITHMS) + ['auto']}"
            )
        if self.balancer != "default":
            # get_balancer raises the registry's "unknown balancer ...;
            # available: ..." message for bad names.
            get_balancer(self.balancer)
        # Coerce integral knobs (numpy integers from sweeps included) to
        # plain ints; the dataclass is frozen, hence object.__setattr__.
        object.__setattr__(self, "seed", _as_int(self.seed, "seed"))
        # 0 is meaningful for both limits: max_iterations=0 fires the guard
        # immediately, endgame_threshold=0 clamps to the minimum live set.
        for field_name in ("endgame_threshold", "max_iterations"):
            value = getattr(self, field_name)
            if value is not None:
                object.__setattr__(
                    self, field_name, _as_int(value, field_name, 0)
                )
        _check_method(self.sequential_method, "sequential method")
        _check_method(self.impl_override, "sequential method (impl_override)")
        if self.backend is not None and self.backend not in available_backends():
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; "
                f"available: {sorted(available_backends())}"
            )
        if self.kernels is not None and self.kernels not in KERNEL_MODES:
            raise ConfigurationError(
                f"unknown kernel mode {self.kernels!r}; "
                f"available: {sorted(KERNEL_MODES)}"
            )
        if self.topology is not None:
            # Canonicalise (aliases resolved, cluster size kept) so equal
            # shapes share one cache-key token.
            object.__setattr__(
                self, "topology", validate_topology_spec(self.topology)
            )
        if self.prefilter == "none":
            object.__setattr__(self, "prefilter", None)
        if self.prefilter is not None and self.prefilter not in PREFILTERS:
            raise ConfigurationError(
                f"unknown prefilter {self.prefilter!r}; "
                f"available: {sorted(PREFILTERS) + ['none']}"
            )
        if isinstance(self.sketch_eps, bool) or not isinstance(
            self.sketch_eps, numbers.Real
        ) or not (0.0 < float(self.sketch_eps) <= 0.5):
            raise ConfigurationError(
                f"sketch_eps must be a real number in (0, 0.5], "
                f"got {self.sketch_eps!r}"
            )
        object.__setattr__(self, "sketch_eps", float(self.sketch_eps))
        if self.trace is not None and not isinstance(self.trace, bool):
            raise ConfigurationError(
                f"trace must be True, False or None, got {self.trace!r}"
            )
        if self.fast_params is not None and not isinstance(
            self.fast_params, FastRandomizedParams
        ):
            raise ConfigurationError(
                f"fast_params must be a FastRandomizedParams, "
                f"got {type(self.fast_params).__name__}"
            )

    # ------------------------------------------------------------ resolution

    def resolve(self) -> tuple[object, SelectionConfig, str]:
        """Build ``(spmd_fn, SelectionConfig, balancer_name)`` for a launch.

        A fresh balancer instance is created per call, exactly as the
        historical per-call resolution did.
        """
        if self.algorithm == "auto":
            raise ConfigurationError(
                "algorithm='auto' must be resolved by the planner before "
                "launch (repro.planner.resolve_auto); launch paths do this "
                "automatically"
            )
        fn, default_seq, needs_balance = ALGORITHMS[self.algorithm]
        if self.balancer == "default":
            # Paper defaults: MoM requires balancing (its figures use global
            # exchange); everything else runs without.
            balancer_obj: Balancer = get_balancer(
                "global_exchange" if needs_balance else None
            )
        else:
            balancer_obj = get_balancer(self.balancer)
        cfg = SelectionConfig(
            balancer=balancer_obj,
            sequential_method=self.sequential_method or default_seq,
            seed=self.seed,
            endgame_threshold=self.endgame_threshold,
            max_iterations=self.max_iterations,
            impl_override=self.impl_override,
            kernels=self.kernels,
        )
        return fn, cfg, type(balancer_obj).__name__

    # --------------------------------------------------------------- keying

    def cache_key(self) -> tuple:
        """A hashable token identifying every behaviour-relevant knob.

        Two plans with equal keys produce bit-identical answers and
        simulated times over the same data, which is what the Session
        result cache relies on.
        """
        b = self.balancer
        if b is None:
            balancer_token = "none"
        elif isinstance(b, str):
            balancer_token = b
        elif isinstance(b, type):
            balancer_token = f"class:{b.__name__}"
        else:
            # A live instance: identity matters (it may carry state).
            balancer_token = f"instance:{type(b).__name__}:{id(b)}"
        fp = (
            dataclasses.astuple(self.fast_params)
            if self.fast_params is not None else None
        )
        return (
            self.algorithm,
            balancer_token,
            self.seed,
            self.sequential_method,
            self.endgame_threshold,
            self.max_iterations,
            fp,
            self.impl_override,
            self.backend,
            self.kernels,
            self.topology,
            self.prefilter,
            # sketch_eps only shapes behaviour when the pre-filter is on.
            self.sketch_eps if self.prefilter is not None else None,
            # trace is deliberately absent: it is purely observational
            # (values and simulated times are identical either way), so a
            # traced and an untraced plan share cached results.
        )

    def replace(self, **changes) -> "SelectionPlan":
        """A new plan with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """One-line human summary (bench tables, example output)."""
        bal = self.balancer if isinstance(self.balancer, str) else (
            "none" if self.balancer is None else type(self.balancer).__name__
        )
        parts = [f"algorithm={self.algorithm}", f"balancer={bal}",
                 f"seed={self.seed}"]
        for name in ("sequential_method", "endgame_threshold",
                     "max_iterations", "impl_override", "backend",
                     "kernels", "topology", "prefilter", "trace"):
            v = getattr(self, name)
            if v is not None:
                parts.append(f"{name}={v}")
        if self.prefilter is not None:
            parts.append(f"sketch_eps={self.sketch_eps}")
        if self.fast_params is not None:
            parts.append(f"fast_params={self.fast_params}")
        return "SelectionPlan(" + ", ".join(parts) + ")"


def as_plan(plan: SelectionPlan | None, overrides: dict) -> SelectionPlan:
    """Normalise ``(plan, kwargs)`` call sites to one validated plan.

    ``None`` + kwargs builds a fresh plan; an existing plan + kwargs is
    :meth:`SelectionPlan.replace`-d (both re-validate).
    """
    if plan is None:
        return SelectionPlan(**overrides)
    if not isinstance(plan, SelectionPlan):
        raise ConfigurationError(
            f"plan must be a SelectionPlan or None, got {type(plan).__name__}"
        )
    return plan.replace(**overrides) if overrides else plan
