"""Public API surface of the reproduction (see :mod:`repro.core.api`)."""

from .api import (
    DistributedArray,
    Machine,
    SelectionReport,
    median,
    quantiles,
    rebalance,
    select,
)

__all__ = [
    "DistributedArray",
    "Machine",
    "SelectionReport",
    "median",
    "quantiles",
    "rebalance",
    "select",
]
