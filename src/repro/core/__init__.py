"""Public API surface of the reproduction (see :mod:`repro.core.api`)."""

from .api import (
    DistributedArray,
    Machine,
    MultiSelectionReport,
    SelectionReport,
    median,
    multi_select,
    quantiles,
    rebalance,
    select,
)

__all__ = [
    "DistributedArray",
    "Machine",
    "MultiSelectionReport",
    "SelectionReport",
    "median",
    "multi_select",
    "quantiles",
    "rebalance",
    "select",
]
