"""Public API surface of the reproduction.

Layered as: :mod:`repro.core.array` (Machine + DistributedArray),
:mod:`repro.core.plan` (the frozen SelectionPlan), :mod:`repro.core.session`
(query coalescing + result caching), :mod:`repro.core.reports` (report
types), and :mod:`repro.core.api` (legacy one-shot shims).
"""

from .api import (
    DistributedArray,
    Machine,
    MultiSelectionReport,
    SelectionReport,
    median,
    multi_select,
    quantiles,
    rebalance,
    select,
)
from .plan import SelectionPlan
from .reports import PrefilterStats
from .session import (
    MultiSelectionFuture,
    SelectionFuture,
    Session,
    SessionStats,
)

__all__ = [
    "DistributedArray",
    "Machine",
    "MultiSelectionFuture",
    "MultiSelectionReport",
    "PrefilterStats",
    "SelectionFuture",
    "SelectionPlan",
    "SelectionReport",
    "Session",
    "SessionStats",
    "median",
    "multi_select",
    "quantiles",
    "rebalance",
    "select",
]
