"""Report types every selection launch produces.

A *report* is the caller-facing record of one answered query: the value(s),
the target rank(s), and the launch evidence (simulated-time breakdown,
per-iteration statistics, the raw :class:`~repro.machine.engine.SPMDResult`).
Three shapes exist:

* :class:`SelectionReport` — one rank, one value (``select`` / ``median``
  and every per-quantile view);
* :class:`MultiSelectionReport` — a whole set of ranks answered by one
  batched contraction (``multi_select`` and coalesced Session flushes);
* :class:`_RunReport` — the shared base carrying the launch metrics.

Reports served from a :class:`~repro.core.session.Session` result cache set
``cached=True``: the values and simulated metrics are those of the
originating launch (selection is deterministic per plan), but no new SPMD
launch was paid for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.clock import TimeBreakdown
from ..machine.engine import SPMDResult
from ..selection import MultiSelectionStats, SelectionStats

__all__ = ["PrefilterStats", "SelectionReport", "MultiSelectionReport"]


@dataclass(frozen=True)
class PrefilterStats:
    """Evidence of one sketch-accelerated pre-filter pass.

    Produced inside the SPMD launch by :mod:`repro.stream.refine` and
    carried on the run's stats (``report.stats.prefilter`` /
    ``report.prefilter``): how small the merged sketch was, what fraction
    of the keys survived into the exact contraction, and roughly how many
    contraction rounds the pre-filter saved.
    """

    #: Sketch accuracy parameter the plan requested.
    eps: float
    #: Stored keys in the merged (cross-rank) sketch.
    sketch_size: int
    #: Total keys in the queried array.
    n: int
    #: Keys that survived the candidate-interval pre-filter globally.
    survivors: int
    #: Disjoint candidate key intervals after merging per-rank bounds.
    intervals: int
    #: Contraction iterations the pre-filter skipped (a ``log2(n /
    #: survivors)`` halving estimate — each skipped iteration is a full
    #: partition pass plus its collectives).
    rounds_saved: int
    #: True when the sketch bounds failed verification against the exact
    #: counts and the launch fell back to the full input (never expected;
    #: kept as a safety valve and visible evidence).
    fallback: bool = False
    #: True when the local sketches were prebuilt at ingest time (a
    #: :class:`~repro.stream.stream.StreamingArray` maintains them per
    #: append) rather than built inside the query launch.
    prebuilt: bool = False

    @property
    def survivor_fraction(self) -> float:
        """Surviving fraction of the input (``1.0`` on fallback)."""
        if self.n <= 0:
            return 1.0
        return self.survivors / self.n


@dataclass
class _RunReport:
    """Metrics every selection launch produces (single- or multi-rank)."""

    n: int
    p: int
    algorithm: str
    balancer: str
    simulated_time: float
    wall_time: float
    breakdown: TimeBreakdown
    result: SPMDResult | None = field(repr=False, default=None)
    #: True when this report was served from a Session's result cache (the
    #: metrics describe the originating launch; no new launch happened).
    cached: bool = False
    #: Name of the execution backend that ran the launch (``"serial"``,
    #: ``"threaded"`` or ``"process"``; cached reports carry the backend of
    #: the originating launch).
    backend: str = ""
    #: Name of the machine topology the launch's collectives were lowered
    #: onto (``"crossbar"``, ``"binomial-tree"``, ``"hypercube"``,
    #: ``"two-level"``; cached reports carry the originating launch's).
    topology: str = ""
    #: The cost model's closed-form *prediction* of the launch's simulated
    #: time (:func:`repro.bench.model.predict`), attached at report
    #: assembly for the four algorithms with closed forms; ``None`` when no
    #: prediction exists (hybrids, sort-based, non-crossbar shapes). The
    #: predicted-vs-actual residual is the future planner's calibration
    #: feed (see :attr:`cost_residual`).
    predicted_time: float | None = None

    @property
    def cost_residual(self) -> float | None:
        """Actual minus predicted simulated seconds (positive = the model
        under-priced the launch); ``None`` without a prediction."""
        if self.predicted_time is None:
            return None
        return self.simulated_time - self.predicted_time

    @property
    def balance_time(self) -> float:
        """Simulated seconds spent load balancing (max across ranks)."""
        return self.result.balance_time if self.result else self.breakdown.balance

    @property
    def prefilter(self) -> PrefilterStats | None:
        """Sketch pre-filter evidence (``None`` for plain runs)."""
        return getattr(getattr(self, "stats", None), "prefilter", None)

    def collective_rounds(self) -> dict:
        """Per-collective round evidence of the launch, from the trace.

        ``{op: {"calls", "rounds", "max_congestion"}}`` — how many rounds
        each collective's topology schedule executed and the worst
        per-round message pile-up on one rank. Requires the machine to
        run with ``trace=True``; empty otherwise (and for cached reports
        whose originating launch was untraced)."""
        return self.result.collective_rounds() if self.result else {}


@dataclass
class SelectionReport(_RunReport):
    """Everything a run of :func:`repro.select` produced."""

    value: object = None
    k: int = 0
    stats: SelectionStats = field(default_factory=SelectionStats)


@dataclass
class MultiSelectionReport(_RunReport):
    """Everything a run of :func:`repro.multi_select` produced.

    ``values`` aligns with the caller's ``ks`` (duplicates included, input
    order preserved); the simulated metrics cover the whole batched run —
    one SPMD launch answered every rank.
    """

    values: list = field(default_factory=list)
    ks: list[int] = field(default_factory=list)
    stats: MultiSelectionStats = field(default_factory=MultiSelectionStats)

    def __len__(self) -> int:
        return len(self.values)
