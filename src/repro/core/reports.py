"""Report types every selection launch produces.

A *report* is the caller-facing record of one answered query: the value(s),
the target rank(s), and the launch evidence (simulated-time breakdown,
per-iteration statistics, the raw :class:`~repro.machine.engine.SPMDResult`).
Three shapes exist:

* :class:`SelectionReport` — one rank, one value (``select`` / ``median``
  and every per-quantile view);
* :class:`MultiSelectionReport` — a whole set of ranks answered by one
  batched contraction (``multi_select`` and coalesced Session flushes);
* :class:`_RunReport` — the shared base carrying the launch metrics.

Reports served from a :class:`~repro.core.session.Session` result cache set
``cached=True``: the values and simulated metrics are those of the
originating launch (selection is deterministic per plan), but no new SPMD
launch was paid for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine.clock import TimeBreakdown
from ..machine.engine import SPMDResult
from ..selection import MultiSelectionStats, SelectionStats

__all__ = ["SelectionReport", "MultiSelectionReport"]


@dataclass
class _RunReport:
    """Metrics every selection launch produces (single- or multi-rank)."""

    n: int
    p: int
    algorithm: str
    balancer: str
    simulated_time: float
    wall_time: float
    breakdown: TimeBreakdown
    result: Optional[SPMDResult] = field(repr=False, default=None)
    #: True when this report was served from a Session's result cache (the
    #: metrics describe the originating launch; no new launch happened).
    cached: bool = False
    #: Name of the execution backend that ran the launch (``"serial"``,
    #: ``"threaded"`` or ``"process"``; cached reports carry the backend of
    #: the originating launch).
    backend: str = ""

    @property
    def balance_time(self) -> float:
        """Simulated seconds spent load balancing (max across ranks)."""
        return self.result.balance_time if self.result else self.breakdown.balance


@dataclass
class SelectionReport(_RunReport):
    """Everything a run of :func:`repro.select` produced."""

    value: object = None
    k: int = 0
    stats: SelectionStats = field(default_factory=SelectionStats)


@dataclass
class MultiSelectionReport(_RunReport):
    """Everything a run of :func:`repro.multi_select` produced.

    ``values`` aligns with the caller's ``ks`` (duplicates included, input
    order preserved); the simulated metrics cover the whole batched run —
    one SPMD launch answered every rank.
    """

    values: list = field(default_factory=list)
    ks: list[int] = field(default_factory=list)
    stats: MultiSelectionStats = field(default_factory=MultiSelectionStats)

    def __len__(self) -> int:
        return len(self.values)
