"""Public API: :class:`Machine`, :class:`DistributedArray`, :func:`select`,
:func:`median`, :func:`rebalance`.

Quickstart::

    import repro

    machine = repro.Machine(n_procs=32)
    data = machine.generate(1 << 21, distribution="random", seed=7)
    report = repro.median(data)
    print(report.value, report.simulated_time, report.stats.n_iterations)

The API is deliberately small: a :class:`Machine` owns the simulated
processor count and cost model; a :class:`DistributedArray` is the data laid
out across its processors; :func:`select` runs any of the paper's algorithms
and returns a :class:`SelectionReport` with the answer, the simulated-time
breakdown, and per-iteration statistics.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..balance.base import Balancer, get_balancer
from ..balance.metrics import ImbalanceStats, imbalance_stats
from ..data.generators import generate_shards, shard_sizes
from ..errors import ConfigurationError
from ..kernels.costed import CostedKernels
from ..kernels.select import median_rank
from ..machine.clock import TimeBreakdown
from ..machine.cost_model import CM5, CostModel
from ..machine.engine import SPMDResult, SPMDRuntime
from ..selection import ALGORITHMS, SelectionConfig, SelectionStats
from ..selection.fast_randomized import FastRandomizedParams

__all__ = [
    "Machine",
    "DistributedArray",
    "SelectionReport",
    "select",
    "median",
    "quantiles",
    "rebalance",
]


class Machine:
    """A simulated coarse-grained machine: ``p`` processors + a cost model."""

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel | None = None,
        trace: bool = False,
    ):
        self.runtime = SPMDRuntime(
            n_procs, cost_model=cost_model if cost_model is not None else CM5,
            trace=trace,
        )

    @property
    def n_procs(self) -> int:
        return self.runtime.n_procs

    @property
    def cost_model(self) -> CostModel:
        return self.runtime.cost_model

    # ------------------------------------------------------------- data in

    def distribute(self, data: np.ndarray) -> "DistributedArray":
        """Block-distribute a host array over the processors."""
        data = np.asarray(data)
        if data.ndim != 1:
            raise ConfigurationError("distribute expects a 1-D array")
        sizes = shard_sizes(data.size, self.n_procs)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        shards = [
            data[offsets[r]: offsets[r + 1]].copy() for r in range(self.n_procs)
        ]
        return DistributedArray(self, shards)

    def from_shards(self, shards: Sequence[np.ndarray]) -> "DistributedArray":
        """Adopt externally-prepared per-processor shards."""
        if len(shards) != self.n_procs:
            raise ConfigurationError(
                f"need exactly {self.n_procs} shards, got {len(shards)}"
            )
        return DistributedArray(self, [np.asarray(s) for s in shards])

    def generate(
        self, n: int, distribution: str = "random", seed: int = 0
    ) -> "DistributedArray":
        """Generate one of the named workloads directly in distributed form."""
        return DistributedArray(
            self, generate_shards(n, self.n_procs, distribution, seed)
        )

    def run(self, fn, rank_args=None, args=(), kwargs=None) -> SPMDResult:
        """Escape hatch: run a raw SPMD program on this machine."""
        return self.runtime.run(fn, rank_args=rank_args, args=args, kwargs=kwargs)


@dataclass
class DistributedArray:
    """A 1-D array block-distributed over a machine's processors."""

    machine: Machine
    shards: list[np.ndarray]

    @property
    def n(self) -> int:
        return int(sum(s.size for s in self.shards))

    @property
    def p(self) -> int:
        return self.machine.n_procs

    @property
    def counts(self) -> list[int]:
        return [int(s.size) for s in self.shards]

    def imbalance(self) -> ImbalanceStats:
        return imbalance_stats(self.counts)

    def gather(self) -> np.ndarray:
        """Materialise the full array on the host (tests/examples only)."""
        live = [s for s in self.shards if s.size]
        return np.concatenate(live) if live else np.array([])

    def __len__(self) -> int:
        return self.n


@dataclass
class SelectionReport:
    """Everything a run of :func:`select` produced."""

    value: object
    k: int
    n: int
    p: int
    algorithm: str
    balancer: str
    simulated_time: float
    wall_time: float
    breakdown: TimeBreakdown
    stats: SelectionStats
    result: SPMDResult = field(repr=False, default=None)

    @property
    def balance_time(self) -> float:
        """Simulated seconds spent load balancing (max across ranks)."""
        return self.result.balance_time if self.result else self.breakdown.balance


def _resolve_config(
    algorithm: str,
    balancer,
    seed: int,
    sequential_method: str | None,
    endgame_threshold: int | None,
    max_iterations: int | None,
    impl_override: str | None = None,
) -> tuple[object, SelectionConfig, str]:
    try:
        fn, default_seq, needs_balance = ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    if balancer == "default":
        # Paper defaults: MoM requires balancing (its figures use global
        # exchange); everything else runs without.
        balancer_obj: Balancer = get_balancer(
            "global_exchange" if needs_balance else None
        )
    else:
        balancer_obj = get_balancer(balancer)
    cfg = SelectionConfig(
        balancer=balancer_obj,
        sequential_method=sequential_method or default_seq,
        seed=seed,
        endgame_threshold=endgame_threshold,
        max_iterations=max_iterations,
        impl_override=impl_override,
    )
    return fn, cfg, type(balancer_obj).__name__


def select(
    data: DistributedArray,
    k: int,
    algorithm: str = "fast_randomized",
    balancer="default",
    seed: int = 0,
    sequential_method: str | None = None,
    endgame_threshold: int | None = None,
    max_iterations: int | None = None,
    fast_params: FastRandomizedParams | None = None,
    impl_override: str | None = None,
) -> SelectionReport:
    """Find the key of global rank ``k`` (1-based) in ``data``.

    Parameters
    ----------
    data:
        The distributed input (left untouched: shards are copied before the
        algorithms shrink them).
    k:
        Target rank, ``1 <= k <= len(data)``.
    algorithm:
        One of :data:`repro.selection.ALGORITHMS`.
    balancer:
        Load balancing strategy name (``"none"``, ``"omlb"``,
        ``"modified_omlb"``, ``"dimension_exchange"``, ``"global_exchange"``)
        or ``"default"`` for the paper's pairing.
    seed:
        Drives every stochastic choice; equal seeds give bit-identical runs
        (values *and* simulated times).

    Returns
    -------
    SelectionReport
    """
    fn, cfg, balancer_name = _resolve_config(
        algorithm, balancer, seed, sequential_method, endgame_threshold,
        max_iterations, impl_override,
    )
    extra: tuple = ()
    if algorithm == "fast_randomized" and fast_params is not None:
        extra = (fast_params,)

    def program(ctx, shard, target_k, config):
        return fn(ctx, shard.copy(), target_k, config, *extra)

    result = data.machine.run(
        program,
        rank_args=[(s,) for s in data.shards],
        args=(k, cfg),
    )
    values = [v[0] for v in result.values]
    stats: SelectionStats = result.values[0][1]
    first = values[0]
    assert all(v == first for v in values), "ranks disagree on the answer"
    return SelectionReport(
        value=first,
        k=k,
        n=data.n,
        p=data.p,
        algorithm=algorithm,
        balancer=balancer_name,
        simulated_time=result.simulated_time,
        wall_time=result.wall_time,
        breakdown=result.breakdown,
        stats=stats,
        result=result,
    )


def median(data: DistributedArray, **kwargs) -> SelectionReport:
    """The paper's flagship special case: rank ``ceil(n/2)`` selection."""
    return select(data, median_rank(data.n), **kwargs)


def quantiles(
    data: DistributedArray, qs: Sequence[float], **kwargs
) -> list[SelectionReport]:
    """Exact quantiles via repeated selection (the paper's statistics
    motivation).

    ``qs`` are fractions in ``(0, 1]``; quantile ``q`` maps to rank
    ``ceil(q * n)`` (so ``q=0.5`` is the paper's median). Returns one
    :class:`SelectionReport` per quantile, in input order. Keyword
    arguments are forwarded to :func:`select`.
    """
    n = data.n
    reports = []
    for q in qs:
        if not (0.0 < q <= 1.0):
            raise ConfigurationError(f"quantile {q!r} outside (0, 1]")
        k = max(1, int(np.ceil(q * n)))
        reports.append(select(data, k, **kwargs))
    return reports


def rebalance(
    data: DistributedArray, method="global_exchange"
) -> tuple[DistributedArray, SPMDResult]:
    """Standalone load balancing of a distributed array.

    Returns the rebalanced array plus the raw :class:`SPMDResult` (for its
    simulated-time breakdown).
    """
    balancer = get_balancer(method)

    def program(ctx, shard):
        return balancer.rebalance(ctx, CostedKernels(ctx), shard)

    result = data.machine.run(program, rank_args=[(s,) for s in data.shards])
    return DistributedArray(data.machine, result.values), result
