"""Public API: :class:`Machine`, :class:`DistributedArray`, :func:`select`,
:func:`multi_select`, :func:`median`, :func:`quantiles`, :func:`rebalance`.

Quickstart::

    import repro

    machine = repro.Machine(n_procs=32)
    data = machine.generate(1 << 21, distribution="random", seed=7)
    report = repro.median(data)
    print(report.value, report.simulated_time, report.stats.n_iterations)

    # q ranks in ONE SPMD launch (quantiles() batches through this too):
    multi = repro.multi_select(data, [1000, data.n // 2, data.n])
    print(multi.values, multi.simulated_time)

The API is deliberately small: a :class:`Machine` owns the simulated
processor count and cost model; a :class:`DistributedArray` is the data laid
out across its processors; :func:`select` runs any of the paper's algorithms
and returns a :class:`SelectionReport` with the answer, the simulated-time
breakdown, and per-iteration statistics; :func:`multi_select` answers a
whole *set* of ranks in one contraction and returns a
:class:`MultiSelectionReport`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..balance.base import Balancer, get_balancer
from ..balance.metrics import ImbalanceStats, imbalance_stats
from ..data.generators import generate_shards, shard_sizes
from ..errors import ConfigurationError
from ..kernels.costed import CostedKernels
from ..kernels.select import median_rank
from ..machine.clock import TimeBreakdown
from ..machine.cost_model import CM5, CostModel
from ..machine.engine import SPMDResult, SPMDRuntime
from ..selection import (
    ALGORITHMS,
    STRATEGIES,
    MultiSelectionStats,
    SelectionConfig,
    SelectionStats,
    contract_multi_select,
    sort_based_multi_select,
)
from ..selection.fast_randomized import FastRandomizedParams

__all__ = [
    "Machine",
    "DistributedArray",
    "SelectionReport",
    "MultiSelectionReport",
    "select",
    "multi_select",
    "median",
    "quantiles",
    "rebalance",
]


class Machine:
    """A simulated coarse-grained machine: ``p`` processors + a cost model."""

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel | None = None,
        trace: bool = False,
    ):
        self.runtime = SPMDRuntime(
            n_procs, cost_model=cost_model if cost_model is not None else CM5,
            trace=trace,
        )

    @property
    def n_procs(self) -> int:
        return self.runtime.n_procs

    @property
    def cost_model(self) -> CostModel:
        return self.runtime.cost_model

    # ------------------------------------------------------------- data in

    def distribute(self, data: np.ndarray) -> "DistributedArray":
        """Block-distribute a host array over the processors."""
        data = np.asarray(data)
        if data.ndim != 1:
            raise ConfigurationError("distribute expects a 1-D array")
        sizes = shard_sizes(data.size, self.n_procs)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        shards = [
            data[offsets[r]: offsets[r + 1]].copy() for r in range(self.n_procs)
        ]
        return DistributedArray(self, shards)

    def from_shards(self, shards: Sequence[np.ndarray]) -> "DistributedArray":
        """Adopt externally-prepared per-processor shards."""
        if len(shards) != self.n_procs:
            raise ConfigurationError(
                f"need exactly {self.n_procs} shards, got {len(shards)}"
            )
        return DistributedArray(self, [np.asarray(s) for s in shards])

    def generate(
        self, n: int, distribution: str = "random", seed: int = 0
    ) -> "DistributedArray":
        """Generate one of the named workloads directly in distributed form."""
        return DistributedArray(
            self, generate_shards(n, self.n_procs, distribution, seed)
        )

    def run(self, fn, rank_args=None, args=(), kwargs=None) -> SPMDResult:
        """Escape hatch: run a raw SPMD program on this machine."""
        return self.runtime.run(fn, rank_args=rank_args, args=args, kwargs=kwargs)


@dataclass
class DistributedArray:
    """A 1-D array block-distributed over a machine's processors."""

    machine: Machine
    shards: list[np.ndarray]

    @property
    def n(self) -> int:
        return int(sum(s.size for s in self.shards))

    @property
    def p(self) -> int:
        return self.machine.n_procs

    @property
    def counts(self) -> list[int]:
        return [int(s.size) for s in self.shards]

    def imbalance(self) -> ImbalanceStats:
        return imbalance_stats(self.counts)

    def gather(self) -> np.ndarray:
        """Materialise the full array on the host (tests/examples only)."""
        live = [s for s in self.shards if s.size]
        return np.concatenate(live) if live else np.array([])

    def __len__(self) -> int:
        return self.n


@dataclass
class _RunReport:
    """Metrics every selection launch produces (single- or multi-rank)."""

    n: int
    p: int
    algorithm: str
    balancer: str
    simulated_time: float
    wall_time: float
    breakdown: TimeBreakdown

    @property
    def balance_time(self) -> float:
        """Simulated seconds spent load balancing (max across ranks)."""
        return self.result.balance_time if self.result else self.breakdown.balance


@dataclass
class SelectionReport(_RunReport):
    """Everything a run of :func:`select` produced."""

    value: object = None
    k: int = 0
    stats: SelectionStats = field(default_factory=SelectionStats)
    result: Optional[SPMDResult] = field(repr=False, default=None)


@dataclass
class MultiSelectionReport(_RunReport):
    """Everything a run of :func:`multi_select` produced.

    ``values`` aligns with the caller's ``ks`` (duplicates included, input
    order preserved); the simulated metrics cover the whole batched run —
    one SPMD launch answered every rank.
    """

    values: list = field(default_factory=list)
    ks: list[int] = field(default_factory=list)
    stats: MultiSelectionStats = field(default_factory=MultiSelectionStats)
    result: Optional[SPMDResult] = field(repr=False, default=None)

    def __len__(self) -> int:
        return len(self.values)


def _resolve_config(
    algorithm: str,
    balancer,
    seed: int,
    sequential_method: str | None,
    endgame_threshold: int | None,
    max_iterations: int | None,
    impl_override: str | None = None,
) -> tuple[object, SelectionConfig, str]:
    try:
        fn, default_seq, needs_balance = ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    if balancer == "default":
        # Paper defaults: MoM requires balancing (its figures use global
        # exchange); everything else runs without.
        balancer_obj: Balancer = get_balancer(
            "global_exchange" if needs_balance else None
        )
    else:
        balancer_obj = get_balancer(balancer)
    cfg = SelectionConfig(
        balancer=balancer_obj,
        sequential_method=sequential_method or default_seq,
        seed=seed,
        endgame_threshold=endgame_threshold,
        max_iterations=max_iterations,
        impl_override=impl_override,
    )
    return fn, cfg, type(balancer_obj).__name__


def select(
    data: DistributedArray,
    k: int,
    algorithm: str = "fast_randomized",
    balancer="default",
    seed: int = 0,
    sequential_method: str | None = None,
    endgame_threshold: int | None = None,
    max_iterations: int | None = None,
    fast_params: FastRandomizedParams | None = None,
    impl_override: str | None = None,
) -> SelectionReport:
    """Find the key of global rank ``k`` (1-based) in ``data``.

    Parameters
    ----------
    data:
        The distributed input (left untouched: shards are copied before the
        algorithms shrink them).
    k:
        Target rank, ``1 <= k <= len(data)``.
    algorithm:
        One of :data:`repro.selection.ALGORITHMS`.
    balancer:
        Load balancing strategy name (``"none"``, ``"omlb"``,
        ``"modified_omlb"``, ``"dimension_exchange"``, ``"global_exchange"``)
        or ``"default"`` for the paper's pairing.
    seed:
        Drives every stochastic choice; equal seeds give bit-identical runs
        (values *and* simulated times).

    Returns
    -------
    SelectionReport
    """
    fn, cfg, balancer_name = _resolve_config(
        algorithm, balancer, seed, sequential_method, endgame_threshold,
        max_iterations, impl_override,
    )
    extra: tuple = ()
    if algorithm == "fast_randomized" and fast_params is not None:
        extra = (fast_params,)

    def program(ctx, shard, target_k, config):
        return fn(ctx, shard.copy(), target_k, config, *extra)

    result = data.machine.run(
        program,
        rank_args=[(s,) for s in data.shards],
        args=(k, cfg),
    )
    values = [v[0] for v in result.values]
    stats: SelectionStats = result.values[0][1]
    first = values[0]
    assert all(v == first for v in values), "ranks disagree on the answer"
    return SelectionReport(
        value=first,
        k=k,
        n=data.n,
        p=data.p,
        algorithm=algorithm,
        balancer=balancer_name,
        simulated_time=result.simulated_time,
        wall_time=result.wall_time,
        breakdown=result.breakdown,
        stats=stats,
        result=result,
    )


def multi_select(
    data: DistributedArray,
    ks: Sequence[int],
    algorithm: str = "fast_randomized",
    balancer="default",
    seed: int = 0,
    sequential_method: str | None = None,
    endgame_threshold: int | None = None,
    max_iterations: int | None = None,
    fast_params: FastRandomizedParams | None = None,
    impl_override: str | None = None,
) -> MultiSelectionReport:
    """Find the keys of *every* global rank in ``ks`` in ONE SPMD launch.

    The contraction engine tracks the whole set of target ranks through a
    single iterate-shrink pass: when a pivot lands between two targets the
    live set forks into independent sub-intervals (each over disjoint
    keys), so the total partitioning work is ``O((n/p) log q)`` for ``q``
    ranks instead of ``q`` full contractions, and the endgame costs one
    Gather + Broadcast however many intervals survive. This is how
    :func:`quantiles` computes all its cut points at once.

    Parameters
    ----------
    data:
        The distributed input (left untouched; shards are copied first).
    ks:
        Target ranks, each in ``1 <= k <= len(data)``. Duplicates and
        arbitrary order are fine — ``values`` aligns with the input.
    algorithm:
        Any key of :data:`repro.selection.ALGORITHMS`. ``sort_based``
        answers every rank from one full parallel sort; on a single
        processor every algorithm takes a sequential one-pass
        multi-selection fast path.
    seed:
        Drives every stochastic choice; equal seeds give bit-identical
        runs (values *and* simulated times).

    Returns
    -------
    MultiSelectionReport
    """
    ks = [int(k) for k in ks]
    n = data.n
    for k in ks:
        if not (1 <= k <= max(n, 0)):
            raise ConfigurationError(f"rank k={k} out of range [1, {n}]")
    _fn, cfg, balancer_name = _resolve_config(
        algorithm, balancer, seed, sequential_method, endgame_threshold,
        max_iterations, impl_override,
    )
    if algorithm.startswith("hybrid_"):
        # Same forcing the single-rank hybrids apply: deterministic
        # parallel structure, randomized sequential parts.
        cfg = dataclasses.replace(cfg, sequential_method="randomized")
    if not ks:
        return MultiSelectionReport(
            values=[], ks=[], n=n, p=data.p, algorithm=algorithm,
            balancer=balancer_name, simulated_time=0.0, wall_time=0.0,
            breakdown=TimeBreakdown(),
            stats=MultiSelectionStats(algorithm=algorithm, n=n, p=data.p),
        )
    unique_ks = sorted(set(ks))

    if algorithm == "sort_based":
        def program(ctx, shard, ks_sorted, config):
            return sort_based_multi_select(ctx, shard.copy(), ks_sorted, config)
    else:
        strategy_factory = STRATEGIES[algorithm]

        def program(ctx, shard, ks_sorted, config):
            return contract_multi_select(
                ctx, shard.copy(), ks_sorted, config,
                strategy_factory(fast_params), algorithm=algorithm,
            )

    result = data.machine.run(
        program,
        rank_args=[(s,) for s in data.shards],
        args=(unique_ks, cfg),
    )
    all_values = [v[0] for v in result.values]
    stats: MultiSelectionStats = result.values[0][1]
    first = all_values[0]
    assert all(
        len(v) == len(first) and all(a == b for a, b in zip(v, first))
        for v in all_values
    ), "ranks disagree on the answers"
    by_rank = dict(zip(unique_ks, first))
    return MultiSelectionReport(
        values=[by_rank[k] for k in ks],
        ks=ks,
        n=n,
        p=data.p,
        algorithm=algorithm,
        balancer=balancer_name,
        simulated_time=result.simulated_time,
        wall_time=result.wall_time,
        breakdown=result.breakdown,
        stats=stats,
        result=result,
    )


def median(data: DistributedArray, **kwargs) -> SelectionReport:
    """The paper's flagship special case: rank ``ceil(n/2)`` selection."""
    return select(data, median_rank(data.n), **kwargs)


def quantiles(
    data: DistributedArray, qs: Sequence[float], **kwargs
) -> list[SelectionReport]:
    """Exact quantiles via single-pass multi-rank selection (the paper's
    statistics motivation, batched).

    ``qs`` are fractions in ``(0, 1]``; quantile ``q`` maps to rank
    ``ceil(q * n)`` (so ``q=0.5`` is the paper's median). All quantiles
    are answered by **one** :func:`multi_select` launch — one contraction
    over the data instead of one full selection per quantile, which is
    where the batched path wins its ``~q``-fold saving in scanned keys.

    Returns one :class:`SelectionReport` per quantile, in input order, for
    compatibility with the historical per-quantile API; the reports share
    the batched run's simulated metrics (``simulated_time``, ``breakdown``
    and the iteration evidence describe the single launch that answered
    *all* of them, so summing across reports would double-count). Keyword
    arguments are forwarded to :func:`multi_select`.
    """
    n = data.n
    ks = []
    for q in qs:
        if not (0.0 < q <= 1.0):
            raise ConfigurationError(f"quantile {q!r} outside (0, 1]")
        ks.append(max(1, int(np.ceil(q * n))))
    if not ks:
        return []
    multi = multi_select(data, ks, **kwargs)
    return [
        SelectionReport(
            value=value,
            k=k,
            n=n,
            p=data.p,
            algorithm=multi.algorithm,
            balancer=multi.balancer,
            simulated_time=multi.simulated_time,
            wall_time=multi.wall_time,
            breakdown=multi.breakdown,
            # A per-quantile view of the shared batched evidence: correct
            # target rank, SelectionStats-shaped, iteration records aliased
            # from the one launch that produced every answer.
            stats=SelectionStats(
                algorithm=multi.stats.algorithm,
                n=multi.stats.n,
                p=multi.stats.p,
                k=k,
                iterations=multi.stats.iterations,
                endgame_n=multi.stats.endgame_n,
                found_by_pivot=bool(multi.stats.found_by_pivot),
                balance_invocations=multi.stats.balance_invocations,
                unsuccessful_iterations=multi.stats.unsuccessful_iterations,
            ),
            result=multi.result,
        )
        for k, value in zip(ks, multi.values)
    ]


def rebalance(
    data: DistributedArray, method="global_exchange"
) -> tuple[DistributedArray, SPMDResult]:
    """Standalone load balancing of a distributed array.

    Returns the rebalanced array plus the raw :class:`SPMDResult` (for its
    simulated-time breakdown).
    """
    balancer = get_balancer(method)

    def program(ctx, shard):
        return balancer.rebalance(ctx, CostedKernels(ctx), shard)

    result = data.machine.run(program, rank_args=[(s,) for s in data.shards])
    return DistributedArray(data.machine, result.values), result
