"""Legacy one-shot API: :func:`select`, :func:`multi_select`,
:func:`median`, :func:`quantiles`, :func:`rebalance`.

These are thin shims over the Plan/Session layer, kept for the historical
call shape (``repro.select(data, k, algorithm=..., seed=...)``). Each call
builds a validated :class:`~repro.core.plan.SelectionPlan` from its kwargs
and runs it through an uncached one-shot
:class:`~repro.core.session.Session`, so values, RNG streams and simulated
times are bit-identical to the pre-Session API — one SPMD launch per call,
no memoisation.

New code should prefer the composable surface::

    import repro

    machine = repro.Machine(n_procs=32)
    data = machine.generate(1 << 21, distribution="random", seed=7)
    plan = repro.SelectionPlan(algorithm="fast_randomized", seed=7)

    # Fluent, cached:
    report = data.median(plan)

    # Coalesced serving: many rank queries, ONE SPMD launch on flush.
    with machine.session(plan) as s:
        futures = [s.select(data, k) for k in (1000, data.n // 2, data.n)]
    print([f.value for f in futures])

:class:`Machine` / :class:`DistributedArray` live in
:mod:`repro.core.array`, the report types in :mod:`repro.core.reports`;
they are re-exported here for backwards compatibility.
"""

from __future__ import annotations

from typing import Sequence

from ..machine.engine import SPMDResult
from ..selection.fast_randomized import FastRandomizedParams
from .array import DistributedArray, Machine
from .plan import SelectionPlan
from .reports import MultiSelectionReport, SelectionReport
from .session import Session

__all__ = [
    "Machine",
    "DistributedArray",
    "SelectionReport",
    "MultiSelectionReport",
    "select",
    "multi_select",
    "median",
    "quantiles",
    "rebalance",
]


def _one_shot(data: DistributedArray) -> Session:
    """An uncached throwaway session: exactly one launch per query, the
    historical cost model of the legacy functions."""
    return Session(data.machine, cache=False)


def select(
    data: DistributedArray,
    k: int,
    algorithm: str = "fast_randomized",
    balancer="default",
    seed: int = 0,
    sequential_method: str | None = None,
    endgame_threshold: int | None = None,
    max_iterations: int | None = None,
    fast_params: FastRandomizedParams | None = None,
    impl_override: str | None = None,
    backend: str | None = None,
) -> SelectionReport:
    """Find the key of global rank ``k`` (1-based) in ``data``.

    Parameters
    ----------
    data:
        The distributed input (left untouched: shards are copied before the
        algorithms shrink them).
    k:
        Target rank, ``1 <= k <= len(data)``.
    algorithm:
        One of :data:`repro.selection.ALGORITHMS`.
    balancer:
        Load balancing strategy name (``"none"``, ``"omlb"``,
        ``"modified_omlb"``, ``"dimension_exchange"``, ``"global_exchange"``)
        or ``"default"`` for the paper's pairing.
    seed:
        Drives every stochastic choice; equal seeds give bit-identical runs
        (values *and* simulated times).

    Returns
    -------
    SelectionReport
    """
    plan = SelectionPlan(
        algorithm=algorithm,
        balancer=balancer,
        seed=seed,
        sequential_method=sequential_method,
        endgame_threshold=endgame_threshold,
        max_iterations=max_iterations,
        fast_params=fast_params,
        impl_override=impl_override,
        backend=backend,
    )
    return _one_shot(data).run_select(data, k, plan)


def multi_select(
    data: DistributedArray,
    ks: Sequence[int],
    algorithm: str = "fast_randomized",
    balancer="default",
    seed: int = 0,
    sequential_method: str | None = None,
    endgame_threshold: int | None = None,
    max_iterations: int | None = None,
    fast_params: FastRandomizedParams | None = None,
    impl_override: str | None = None,
    backend: str | None = None,
) -> MultiSelectionReport:
    """Find the keys of *every* global rank in ``ks`` in ONE SPMD launch.

    The contraction engine tracks the whole set of target ranks through a
    single iterate-shrink pass: when a pivot lands between two targets the
    live set forks into independent sub-intervals (each over disjoint
    keys), so the total partitioning work is ``O((n/p) log q)`` for ``q``
    ranks instead of ``q`` full contractions, and the endgame costs one
    Gather + Broadcast however many intervals survive. This is how
    :func:`quantiles` computes all its cut points at once.

    Parameters
    ----------
    data:
        The distributed input (left untouched; shards are copied first).
    ks:
        Target ranks, each in ``1 <= k <= len(data)``. Duplicates and
        arbitrary order are fine — ``values`` aligns with the input.
    algorithm:
        Any key of :data:`repro.selection.ALGORITHMS`. ``sort_based``
        answers every rank from one full parallel sort; on a single
        processor every algorithm takes a sequential one-pass
        multi-selection fast path.
    seed:
        Drives every stochastic choice; equal seeds give bit-identical
        runs (values *and* simulated times).

    Returns
    -------
    MultiSelectionReport
    """
    plan = SelectionPlan(
        algorithm=algorithm,
        balancer=balancer,
        seed=seed,
        sequential_method=sequential_method,
        endgame_threshold=endgame_threshold,
        max_iterations=max_iterations,
        fast_params=fast_params,
        impl_override=impl_override,
        backend=backend,
    )
    return _one_shot(data).run_multi_select(data, ks, plan)


def median(data: DistributedArray, **kwargs) -> SelectionReport:
    """The paper's flagship special case: rank ``ceil(n/2)`` selection."""
    from ..kernels.select import median_rank

    return select(data, median_rank(data.n), **kwargs)


def quantiles(
    data: DistributedArray, qs: Sequence[float], **kwargs
) -> list[SelectionReport]:
    """Exact quantiles via single-pass multi-rank selection (the paper's
    statistics motivation, batched).

    ``qs`` are fractions in ``(0, 1]``; quantile ``q`` maps to rank
    ``ceil(q * n)`` (so ``q=0.5`` is the paper's median). All quantiles
    are answered by **one** :func:`multi_select` launch — one contraction
    over the data instead of one full selection per quantile, which is
    where the batched path wins its ``~q``-fold saving in scanned keys.

    Returns one :class:`SelectionReport` per quantile, in input order, for
    compatibility with the historical per-quantile API; the reports share
    the batched run's simulated metrics (``simulated_time``, ``breakdown``
    and the iteration evidence describe the single launch that answered
    *all* of them, so summing across reports would double-count). Keyword
    arguments become :class:`SelectionPlan` fields.
    """
    from .session import quantile_rank

    # Historical validation order: quantile fractions are checked (and the
    # empty set returned) before the plan kwargs are validated.
    if not [quantile_rank(q, data.n) for q in qs]:
        return []
    plan = SelectionPlan(**kwargs)
    return _one_shot(data).run_quantiles(data, qs, plan)


def rebalance(
    data: DistributedArray, method="global_exchange"
) -> tuple[DistributedArray, SPMDResult]:
    """Standalone load balancing of a distributed array.

    Returns the rebalanced array plus the raw :class:`SPMDResult` (for its
    simulated-time breakdown).
    """
    return data.rebalance(method)
