"""The data layer: :class:`Machine` and :class:`DistributedArray`.

A :class:`Machine` owns the simulated processor count and cost model (one
:class:`~repro.machine.engine.SPMDRuntime`), counts every SPMD launch it
executes, and lazily carries a **default session** — the cached
:class:`~repro.core.session.Session` behind the fluent query methods.

A :class:`DistributedArray` is a 1-D array block-distributed over the
machine's processors. It carries a lazily-computed content **fingerprint**
(the cache/coalescing identity: two arrays with equal content and layout
share cached results), and grows fluent query methods — ``data.select(k)``,
``data.median()``, ``data.quantiles(qs)``, ``data.multi_select(ks)`` — that
route through the machine's default session, so repeated traffic against
the same array is served from cache without relaunching.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..balance.base import get_balancer
from ..balance.metrics import ImbalanceStats, imbalance_stats
from ..data.generators import generate_shards, shard_sizes
from ..errors import ConfigurationError
from ..kernels.costed import CostedKernels
from ..machine.cost_model import CM5, CostModel
from ..machine.engine import SPMDResult, SPMDRuntime

if TYPE_CHECKING:
    from .plan import SelectionPlan
    from .reports import MultiSelectionReport, SelectionReport
    from .session import Session

__all__ = ["Machine", "DistributedArray"]


class Machine:
    """A simulated coarse-grained machine: ``p`` processors + a cost model.

    ``backend`` picks the execution vehicle for launches (``"serial"``,
    ``"threaded"`` or ``"process"``; ``None`` = ``$REPRO_BACKEND`` or
    threaded). Selection values, RNG streams and simulated times are
    identical on every backend — only wall-clock differs.

    ``topology`` picks the machine *shape* collectives are lowered onto
    (``"crossbar"``, ``"binomial-tree"``, ``"hypercube"``, ``"two-level"``
    / ``"two-level:<cluster_size>"``, or a ready
    :class:`~repro.machine.topology.Topology`; ``None`` =
    ``$REPRO_TOPOLOGY`` or crossbar). Values and RNG streams are identical
    on every shape — simulated time is exactly what the shape changes.
    """

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel | None = None,
        trace: bool | str = False,
        backend=None,
        topology=None,
    ):
        # trace=<path> is the one-liner capture switch: per-launch tracing
        # ON plus a process-wide span capture exported to that path at exit
        # (equivalent to running under REPRO_TRACE=<path>).
        if isinstance(trace, str):
            from ..obs import enable as _enable_obs

            _enable_obs(trace)
            trace = True
        self.runtime = SPMDRuntime(
            n_procs, cost_model=cost_model if cost_model is not None else CM5,
            trace=trace, backend=backend, topology=topology,
        )
        self._default_session: "Session | None" = None

    @property
    def n_procs(self) -> int:
        return self.runtime.n_procs

    @property
    def cost_model(self) -> CostModel:
        return self.runtime.cost_model

    @property
    def backend_name(self) -> str:
        """Name of this machine's default execution backend."""
        return self.runtime.backend.name

    @property
    def topology_name(self) -> str:
        """Name of this machine's default topology (machine shape)."""
        return self.runtime.topology.name

    @property
    def topology(self):
        """This machine's default :class:`~repro.machine.topology.Topology`."""
        return self.runtime.topology

    @property
    def launch_count(self) -> int:
        """SPMD launches executed on this machine so far (coalescing and
        cache-hit claims are asserted against deltas of this counter)."""
        return self.runtime.launch_count

    @property
    def fork_count(self) -> int:
        """Worker spawn events on this machine's backend (see
        :attr:`SPMDRuntime.fork_count`); the ``pool`` backend's
        forks-once-serve-many claim is asserted against deltas of this."""
        return self.runtime.fork_count

    @property
    def reuse_count(self) -> int:
        """Launches served by an already-live worker generation (see
        :attr:`SPMDRuntime.reuse_count`); the serving tier's warm-launch
        receipt."""
        return self.runtime.reuse_count

    def counters(self) -> dict:
        """One snapshot dict of this machine's activity counters.

        The individual properties (:attr:`launch_count`, :attr:`fork_count`,
        :attr:`reuse_count`) remain as thin views of the same runtime state;
        this consolidates them — plus the pool backend's pinned
        shared-memory bytes — for dashboards and
        :class:`~repro.serve.service.ServiceStats`.
        """
        return {
            "launches": self.runtime.launch_count,
            "forks": self.runtime.fork_count,
            "reuses": self.runtime.reuse_count,
            "pinned_bytes": int(
                getattr(self.runtime.backend, "pinned_bytes", 0)
            ),
        }

    def release_workers(self) -> None:
        """Release persistent backend state (pool worker generations and
        shared-memory pins). Safe anytime: the next launch transparently
        re-provisions. :class:`repro.serve.SelectionService` calls this on
        graceful shutdown."""
        self.runtime.release_workers()

    # ---------------------------------------------------------------- serving

    def session(
        self,
        plan: "SelectionPlan | None" = None,
        cache: bool = True,
        max_cache_entries: int = 65536,
    ) -> "Session":
        """A new :class:`~repro.core.session.Session` bound to this machine."""
        from .session import Session

        return Session(self, plan=plan, cache=cache,
                       max_cache_entries=max_cache_entries)

    @property
    def default_session(self) -> "Session":
        """The machine-wide cached session the fluent array methods use."""
        if self._default_session is None:
            self._default_session = self.session()
        return self._default_session

    # ------------------------------------------------------------- data in

    def distribute(self, data: np.ndarray) -> "DistributedArray":
        """Block-distribute a host array over the processors."""
        data = np.asarray(data)
        if data.ndim != 1:
            raise ConfigurationError("distribute expects a 1-D array")
        sizes = shard_sizes(data.size, self.n_procs)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        shards = [
            data[offsets[r]: offsets[r + 1]].copy() for r in range(self.n_procs)
        ]
        return DistributedArray(self, shards)

    def from_shards(self, shards: Sequence[np.ndarray]) -> "DistributedArray":
        """Adopt externally-prepared per-processor shards."""
        if len(shards) != self.n_procs:
            raise ConfigurationError(
                f"need exactly {self.n_procs} shards, got {len(shards)}"
            )
        return DistributedArray(self, [np.asarray(s) for s in shards])

    def generate(
        self, n: int, distribution: str = "random", seed: int = 0
    ) -> "DistributedArray":
        """Generate one of the named workloads directly in distributed form."""
        return DistributedArray(
            self, generate_shards(n, self.n_procs, distribution, seed)
        )

    def stream(self, dtype=None, window=None, window_mode: str = "sliding"):
        """An appendable :class:`~repro.stream.stream.StreamingArray` on
        this machine (``append(batch)`` ingest, windowed retirement,
        ingest-time sketches for ``prefilter="sketch"`` plans)."""
        from ..stream.stream import StreamingArray

        return StreamingArray(
            self, dtype=dtype, window=window, window_mode=window_mode
        )

    def run(self, fn, rank_args=None, args=(), kwargs=None,
            backend=None, topology=None, trace=None) -> SPMDResult:
        """Escape hatch: run a raw SPMD program on this machine.

        ``backend`` / ``topology`` override the machine's execution
        backend and machine shape for this launch only (a
        :class:`~repro.core.plan.SelectionPlan` carrying either rides
        these parameters). ``trace`` (``bool | None``) likewise overrides
        the machine's per-launch tracer for this launch only.
        """
        return self.runtime.run(
            fn, rank_args=rank_args, args=args, kwargs=kwargs,
            backend=backend, topology=topology, trace=trace,
        )


@dataclass
class DistributedArray:
    """A 1-D array block-distributed over a machine's processors."""

    machine: Machine
    shards: list[np.ndarray]
    _fingerprint: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _probe: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def n(self) -> int:
        return int(sum(s.size for s in self.shards))

    @property
    def p(self) -> int:
        return self.machine.n_procs

    @property
    def counts(self) -> list[int]:
        return [int(s.size) for s in self.shards]

    def imbalance(self) -> ImbalanceStats:
        return imbalance_stats(self.counts)

    def gather(self) -> np.ndarray:
        """Materialise the full array on the host (tests/examples only)."""
        live = [s for s in self.shards if s.size]
        if live:
            return np.concatenate(live)
        # All shards empty: preserve their dtype instead of collapsing to
        # NumPy's float64 default.
        if self.shards:
            return np.array([], dtype=self.shards[0].dtype)
        return np.array([])

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------- identity

    def _content_probe(self) -> tuple:
        """Cheap per-shard content signature: shape/dtype plus a
        three-point probe (first/middle/last element), mirroring the pool
        backend's pin-cache staleness guard. O(p) work per query, so the
        fingerprint property can re-check it on EVERY access."""
        sig = []
        for s in self.shards:
            flat = s.reshape(-1)
            if flat.size:
                sig.append((
                    str(s.dtype), int(flat.size), flat[0].item(),
                    flat[flat.size // 2].item(), flat[-1].item(),
                ))
            else:
                sig.append((str(s.dtype), 0))
        return tuple(sig)

    @property
    def fingerprint(self) -> str:
        """Content + layout hash: the cache/coalescing identity of this
        array.

        Computed lazily over the shard bytes and memoised. A cheap
        three-point content probe (same contract as the pool backend's pin
        cache) is re-checked on every access, so the common in-place shard
        mutations (``d.shards[0][:] = ...``) change the fingerprint — and
        therefore miss the Session result cache — without any explicit
        :meth:`invalidate` call. Mutations invisible to the probe (interior
        writes that leave the first/middle/last elements of every shard
        intact) still require :meth:`invalidate`.
        """
        if self._fingerprint is not None and self._probe != self._content_probe():
            self._fingerprint = None
        if self._fingerprint is None:
            h = hashlib.sha1()
            h.update(str(len(self.shards)).encode())
            for s in self.shards:
                a = np.ascontiguousarray(s)
                h.update(str(a.dtype).encode())
                h.update(str(a.size).encode())
                h.update(a.tobytes())
            self._fingerprint = h.hexdigest()
            self._probe = self._content_probe()
        return self._fingerprint

    def invalidate(self) -> None:
        """Forget the memoised fingerprint (shards were mutated in place
        beyond what the three-point content probe can see)."""
        self._fingerprint = None
        self._probe = None

    # ---------------------------------------------------------- fluent API

    def select(self, k: int, plan: "SelectionPlan | None" = None,
               **overrides) -> "SelectionReport":
        """Rank-``k`` selection through the machine's default session
        (single-rank engine; repeated queries are cache hits)."""
        return self.machine.default_session.run_select(
            self, k, plan, **overrides
        )

    def median(self, plan: "SelectionPlan | None" = None,
               **overrides) -> "SelectionReport":
        """The paper's flagship query: rank ``ceil(n/2)`` selection."""
        from ..kernels.select import median_rank

        return self.select(median_rank(self.n), plan, **overrides)

    def multi_select(self, ks: Sequence[int],
                     plan: "SelectionPlan | None" = None,
                     **overrides) -> "MultiSelectionReport":
        """Every rank in ``ks`` in (at most) one SPMD launch, cache-aware."""
        return self.machine.default_session.run_multi_select(
            self, ks, plan, **overrides
        )

    def quantiles(self, qs: Sequence[float],
                  plan: "SelectionPlan | None" = None,
                  **overrides) -> "list[SelectionReport]":
        """Exact quantiles via the batched multi-rank path, cache-aware."""
        return self.machine.default_session.run_quantiles(
            self, qs, plan, **overrides
        )

    def rebalance(
        self, method="global_exchange"
    ) -> tuple["DistributedArray", SPMDResult]:
        """Standalone load balancing of this array.

        Returns the rebalanced array plus the raw :class:`SPMDResult` (for
        its simulated-time breakdown).
        """
        balancer = get_balancer(method)

        def program(ctx, shard):
            return balancer.rebalance(ctx, CostedKernels(ctx), shard)

        result = self.machine.run(program, rank_args=[(s,) for s in self.shards])
        return DistributedArray(self.machine, result.values), result
