"""The serving layer: :class:`Session` — query coalescing + result caching.

The paper's algorithms answer one query per SPMD launch; PR 1's contraction
engine already answers a whole *set* of ranks in one launch. A Session is
the API that lets callers exploit that without hand-assembling rank
batches:

* **Deferred queries.** ``session.select(data, k)``, ``.median(data)`` and
  ``.quantiles(data, qs)`` return lightweight futures immediately; nothing
  launches until :meth:`Session.flush` (or context-manager exit, or the
  first ``future.result()``).
* **Coalescing.** ``flush()`` groups every pending rank query by
  ``(array fingerprint, plan)`` and answers each group with ONE
  ``multi_select`` SPMD launch through the batched contraction engine —
  ``q`` same-array queries cost one launch, not ``q``.
* **Result cache.** Answers are cached per ``(array fingerprint, plan,
  rank)``; re-queried ranks are served with ZERO new launches (selection is
  deterministic per plan, so cached values *and* simulated metrics are
  exactly what a relaunch would produce). Reports served from cache set
  ``cached=True``.
* **Immediate paths.** :meth:`run_select` / :meth:`run_multi_select` /
  :meth:`run_quantiles` answer now (still cache-aware). ``run_select``
  drives the historical single-rank engine, which is how the legacy
  top-level functions stay bit-identical to their pre-Session behaviour;
  the deferred/coalesced path always uses the batched engine.

Module-level :func:`execute_select` / :func:`execute_multi_select` are the
uncached launch primitives (faithful ports of the historical ``select`` /
``multi_select`` bodies — same collective sequences, RNG streams and
simulated times).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..kernels.select import median_rank
from ..machine.clock import TimeBreakdown
from ..obs import get_recorder
from ..obs.metrics import REGISTRY
from ..selection import (
    STRATEGIES,
    MultiSelectionStats,
    SelectionStats,
    contract_multi_select,
    sort_based_multi_select,
)
from .plan import SelectionPlan, as_plan, validate_rank, validate_targets
from .reports import MultiSelectionReport, SelectionReport

if TYPE_CHECKING:
    from .array import DistributedArray, Machine

__all__ = [
    "Session",
    "SessionStats",
    "SelectionFuture",
    "MultiSelectionFuture",
    "execute_select",
    "execute_multi_select",
]


# --------------------------------------------------------------------------
# Launch primitives (uncached; bit-identical to the historical entry points)
# --------------------------------------------------------------------------


# Shared launch plumbing: the plain paths below and the sketch-prefiltered
# paths of repro.stream.refine differ only in the SPMD program body (and
# its per-rank args); resolution, validation, the empty-set report and the
# report assembly live here ONCE so the two paths cannot drift apart —
# which is what keeps the "bit-identical to plain" contract honest.


def resolve_single(plan: SelectionPlan):
    """``(fn, cfg, balancer_name, extra)`` for a single-rank launch."""
    fn, cfg, balancer_name = plan.resolve()
    extra: tuple = ()
    if plan.algorithm == "fast_randomized" and plan.fast_params is not None:
        extra = (plan.fast_params,)
    return fn, cfg, balancer_name, extra


@dataclass(frozen=True)
class _MultiRunner:
    """Picklable batched-selection runner.

    The strategy registry holds factories (lambdas) that cannot cross a
    process boundary, so the runner carries only the algorithm *name* and
    resolves the factory on the executing rank. Being a plain module-level
    dataclass (not a closure) is what lets the ``pool`` backend ship
    batched launches to its already-running workers.
    """

    algorithm: str
    fast_params: object = None

    def __call__(self, ctx, arr, ks_sorted, config):
        if self.algorithm == "sort_based":
            return sort_based_multi_select(ctx, arr, ks_sorted, config)
        return contract_multi_select(
            ctx, arr, ks_sorted, config,
            STRATEGIES[self.algorithm](self.fast_params),
            algorithm=self.algorithm,
        )


@dataclass(frozen=True)
class _ShardProgram:
    """Picklable SPMD program body: defensive-copy the rank shard, then
    delegate to ``runner(ctx, shard.copy(), *launch_args, *extra)``.

    Both launch paths used to close over their runner, which confined the
    ``pool`` backend to its per-launch fork fallback; a frozen dataclass
    around a picklable runner pickles whenever the plan does.
    """

    runner: object
    extra: tuple = ()

    def __call__(self, ctx, shard, *args):
        return self.runner(ctx, shard.copy(), *args, *self.extra)


def resolve_multi(plan: SelectionPlan):
    """``(cfg, balancer_name, runner)`` for a batched launch.

    ``runner(ctx, arr, ks_sorted, cfg)`` answers every rank over ``arr``
    (the full shard for the plain path, the survivors for the sketch
    path) and returns ``(values, MultiSelectionStats)``.
    """
    _fn, cfg, balancer_name = plan.resolve()
    if plan.algorithm.startswith("hybrid_"):
        # Same forcing the single-rank hybrids apply: deterministic
        # parallel structure, randomized sequential parts.
        cfg = dataclasses.replace(cfg, sequential_method="randomized")
    return cfg, balancer_name, _MultiRunner(plan.algorithm, plan.fast_params)


def validate_ks(ks: Sequence[int], n: int) -> list[int]:
    """Coerce and range-check a rank set (shared by both launch paths);
    delegates to the :func:`repro.core.plan.validate_targets` seam."""
    return validate_targets(ks, n)


def empty_multi_report(
    data: "DistributedArray", plan: SelectionPlan, balancer_name: str
) -> MultiSelectionReport:
    """The historical empty-``ks`` answer: an empty report, no launch."""
    return MultiSelectionReport(
        values=[], ks=[], n=data.n, p=data.p, algorithm=plan.algorithm,
        balancer=balancer_name, simulated_time=0.0, wall_time=0.0,
        breakdown=TimeBreakdown(),
        stats=MultiSelectionStats(algorithm=plan.algorithm, n=data.n,
                                  p=data.p),
        backend=plan.backend or data.machine.backend_name,
        # Reports carry the topology *name* (a plan spec may append a
        # ":<cluster_size>" parameter).
        topology=(plan.topology or data.machine.topology_name).split(":")[0],
    )


def predict_simulated(plan: SelectionPlan, n: int, p: int, model,
                      topology) -> float | None:
    """Closed-form predicted simulated seconds for one launch, or ``None``.

    Delegates to :func:`repro.planner.cost.predict_on_topology` (lazy
    import: the planner package imports the bench layer, which imports
    core), which prices the crossbar with the legacy closed forms
    bit-identically and every other shape by injecting that topology's
    lowered-Schedule collective prices into the same skeleton.
    ``topology`` is whatever the launch resolved against — a spec string,
    a :class:`~repro.machine.topology.Topology` instance, or ``None`` for
    the default. Only the four algorithms with closed forms predict —
    hybrids and sort-based plans return ``None`` rather than a
    knowingly-wrong number, as do sketch-prefiltered launches (they do
    work the closed forms don't model).
    """
    if n <= 0:
        return None
    if plan.prefilter is not None:
        return None
    try:
        from ..planner.cost import predict_on_topology
    except ImportError:  # pragma: no cover - planner is always shipped
        return None
    try:
        return predict_on_topology(plan.algorithm, n, p, model,
                                   topology).total
    except ConfigurationError:
        return None


def observe_launch(data: "DistributedArray", plan: SelectionPlan,
                   ks: Sequence[int], result, stats,
                   predicted: float | None) -> None:
    """Post-launch observability: residual metric + launch-span enrichment.

    Always records the predicted-vs-actual residual histogram (the metrics
    registry is process-wide and cheap); span work only happens when a
    capture is active AND the runtime attached a span to the result. Pure
    bookkeeping — never touches values, RNG or simulated time.
    """
    residual = (result.simulated_time - predicted
                if predicted is not None else None)
    if residual is not None:
        REGISTRY.histogram(
            "repro.launch.cost_residual", algorithm=plan.algorithm
        ).observe(residual)
        # Self-calibration: the planner's residual store learns a
        # per-(algorithm, topology, p-bucket) correction from every
        # predicted launch (lazy import: planner imports bench).
        from ..planner.residuals import default_store

        default_store().observe(plan.algorithm, result.topology, data.p,
                                predicted, result.simulated_time)
    recorder = get_recorder()
    span = getattr(result, "span", None)
    if not recorder.enabled or span is None or not span:
        return
    prefilter = getattr(stats, "prefilter", None)
    span.set(
        algorithm=plan.algorithm,
        n=data.n,
        ks=list(ks),
        iterations=stats.n_iterations,
        predicted_s=predicted,
        residual_s=residual,
        survivor_fraction=(prefilter.survivor_fraction
                           if prefilter is not None else None),
    )
    # Iteration spans from the engine's deterministic sim-clock stamps
    # (rank 0's view), laid onto the launch span's cumulative sim axis.
    base = span.sim_t0 if span.sim_t0 is not None else 0.0
    last = base
    for i, rec in enumerate(stats.iterations):
        recorder.add(
            "iteration", parent=span,
            sim_t0=base + rec.t_sim0, sim_t1=base + rec.t_sim1,
            index=i, n_before=rec.n_before, n_after=rec.n_after,
            balanced=rec.balanced, successful=rec.successful,
        )
        last = base + rec.t_sim1
    if getattr(stats, "endgame_n", 0):
        recorder.add("endgame", parent=span, sim_t0=last,
                     sim_t1=span.sim_t1, endgame_n=stats.endgame_n)


def finish_select(
    data: "DistributedArray", k: int, plan: SelectionPlan,
    balancer_name: str, result,
) -> SelectionReport:
    """Unpack one single-rank launch result into its report."""
    values = [v[0] for v in result.values]
    stats: SelectionStats = result.values[0][1]
    first = values[0]
    assert all(v == first for v in values), "ranks disagree on the answer"
    predicted = predict_simulated(
        plan, data.n, data.p, data.machine.cost_model,
        plan.topology if plan.topology is not None else data.machine.topology,
    )
    observe_launch(data, plan, [k], result, stats, predicted)
    return SelectionReport(
        value=first,
        k=k,
        n=data.n,
        p=data.p,
        algorithm=plan.algorithm,
        balancer=balancer_name,
        simulated_time=result.simulated_time,
        wall_time=result.wall_time,
        breakdown=result.breakdown,
        stats=stats,
        result=result,
        backend=result.backend,
        topology=result.topology,
        predicted_time=predicted,
    )


def finish_multi(
    data: "DistributedArray", ks: list[int], unique_ks: list[int],
    plan: SelectionPlan, balancer_name: str, result,
) -> MultiSelectionReport:
    """Unpack one batched launch result into its report (``values`` align
    with the caller's ``ks``, duplicates and input order preserved)."""
    all_values = [v[0] for v in result.values]
    stats: MultiSelectionStats = result.values[0][1]
    first = all_values[0]
    assert all(
        len(v) == len(first) and all(a == b for a, b in zip(v, first))
        for v in all_values
    ), "ranks disagree on the answers"
    by_rank = dict(zip(unique_ks, first))
    # The closed forms price a single-target contraction; batched launches
    # tracking several live intervals have no form, so don't pretend.
    predicted = (
        predict_simulated(
            plan, data.n, data.p, data.machine.cost_model,
            plan.topology if plan.topology is not None
            else data.machine.topology,
        )
        if len(unique_ks) == 1 else None
    )
    observe_launch(data, plan, ks, result, stats, predicted)
    return MultiSelectionReport(
        values=[by_rank[k] for k in ks],
        ks=ks,
        n=data.n,
        p=data.p,
        algorithm=plan.algorithm,
        balancer=balancer_name,
        simulated_time=result.simulated_time,
        wall_time=result.wall_time,
        breakdown=result.breakdown,
        stats=stats,
        result=result,
        backend=result.backend,
        topology=result.topology,
        predicted_time=predicted,
    )


def execute_select(
    data: "DistributedArray", k: int, plan: SelectionPlan
) -> SelectionReport:
    """One single-rank selection launch (the historical ``select`` body).

    Plans carrying ``prefilter="sketch"`` route to the sketch-accelerated
    exact path (:mod:`repro.stream.refine`): same answer, same launch
    accounting, smaller live set for the contraction.

    ``k`` is range-checked BEFORE any launch is assembled: an out-of-range
    rank raises :class:`~repro.errors.ConfigurationError` with
    ``Machine.launch_count`` unchanged (it used to burn a full SPMD launch
    and surface as ``WorkerError``).
    """
    k = validate_rank(k, data.n)
    if plan.algorithm == "auto":
        # Cost-model-driven choice (lazy import: planner imports bench).
        from ..planner.planner import resolve_auto

        plan = resolve_auto(data, plan)
    with get_recorder().span("query", kind="select", algorithm=plan.algorithm,
                             n=data.n, p=data.p, k=k):
        if plan.prefilter == "sketch":
            from ..stream.refine import execute_sketch_select

            return execute_sketch_select(data, k, plan)
        fn, cfg, balancer_name, extra = resolve_single(plan)
        result = data.machine.run(
            _ShardProgram(fn, extra),
            rank_args=[(s,) for s in data.shards],
            args=(k, cfg),
            backend=plan.backend,
            topology=plan.topology,
            trace=plan.trace,
        )
        return finish_select(data, k, plan, balancer_name, result)


def execute_multi_select(
    data: "DistributedArray", ks: Sequence[int], plan: SelectionPlan
) -> MultiSelectionReport:
    """One batched multi-rank launch (the historical ``multi_select`` body).

    Every rank in ``ks`` is answered by ONE contraction: the engine tracks
    the whole target set through a single iterate-shrink pass, forking the
    live set when a pivot lands between two targets, and the endgame costs
    one Gather + Broadcast however many intervals survive.
    """
    if plan.algorithm == "auto":
        from ..planner.planner import resolve_auto

        plan = resolve_auto(data, plan)
    with get_recorder().span("query", kind="multi_select",
                             algorithm=plan.algorithm, n=data.n, p=data.p,
                             n_ks=len(ks)):
        if plan.prefilter == "sketch":
            from ..stream.refine import execute_sketch_multi_select

            return execute_sketch_multi_select(data, ks, plan)
        ks = validate_ks(ks, data.n)
        cfg, balancer_name, runner = resolve_multi(plan)
        if not ks:
            return empty_multi_report(data, plan, balancer_name)
        unique_ks = sorted(set(ks))
        result = data.machine.run(
            _ShardProgram(runner),
            rank_args=[(s,) for s in data.shards],
            args=(unique_ks, cfg),
            backend=plan.backend,
            topology=plan.topology,
            trace=plan.trace,
        )
        return finish_multi(data, ks, unique_ks, plan, balancer_name, result)


def per_rank_view(metrics, k: int, value, cached: bool = False) -> SelectionReport:
    """A per-rank :class:`SelectionReport` view of shared batched evidence.

    ``metrics`` is anything launch-shaped (a :class:`MultiSelectionReport`
    or a cache entry's metrics): the view carries the correct target rank, a
    SelectionStats-shaped stats block, and iteration records aliased from
    the one launch that produced every answer.
    """
    return SelectionReport(
        value=value,
        k=k,
        n=metrics.n,
        p=metrics.p,
        algorithm=metrics.algorithm,
        balancer=metrics.balancer,
        simulated_time=metrics.simulated_time,
        wall_time=metrics.wall_time,
        breakdown=metrics.breakdown,
        stats=SelectionStats(
            algorithm=metrics.stats.algorithm,
            n=metrics.stats.n,
            p=metrics.stats.p,
            k=k,
            iterations=metrics.stats.iterations,
            endgame_n=metrics.stats.endgame_n,
            found_by_pivot=bool(metrics.stats.found_by_pivot),
            balance_invocations=metrics.stats.balance_invocations,
            unsuccessful_iterations=metrics.stats.unsuccessful_iterations,
            prefilter=metrics.stats.prefilter,
        ),
        result=metrics.result,
        cached=cached,
        backend=metrics.backend,
        topology=metrics.topology,
        predicted_time=getattr(metrics, "predicted_time", None),
    )


def quantile_rank(q: float, n: int) -> int:
    """Quantile fraction -> 1-based rank: ``ceil(q * n)`` (``q=0.5`` is the
    paper's median). Raises for ``q`` outside ``(0, 1]``."""
    if not (0.0 < q <= 1.0):
        raise ConfigurationError(f"quantile {q!r} outside (0, 1]")
    return max(1, int(np.ceil(q * n)))


# --------------------------------------------------------------------------
# Session internals
# --------------------------------------------------------------------------


@dataclass
class _LaunchMetrics:
    """The shared evidence of one batched launch, referenced by every cache
    entry and future it answered."""

    n: int
    p: int
    algorithm: str
    balancer: str
    simulated_time: float
    wall_time: float
    breakdown: TimeBreakdown
    stats: MultiSelectionStats
    result: object
    backend: str = ""
    topology: str = ""
    predicted_time: float | None = None

    @classmethod
    def from_multi(cls, multi: MultiSelectionReport) -> "_LaunchMetrics":
        return cls(
            n=multi.n, p=multi.p, algorithm=multi.algorithm,
            balancer=multi.balancer, simulated_time=multi.simulated_time,
            wall_time=multi.wall_time, breakdown=multi.breakdown,
            stats=multi.stats, result=multi.result, backend=multi.backend,
            topology=multi.topology, predicted_time=multi.predicted_time,
        )


@dataclass
class _CacheEntry:
    """One answered rank: its value + the metrics of the launch that
    answered it."""

    value: object
    metrics: _LaunchMetrics


@dataclass
class SessionStats:
    """Serving counters (what the bench/acceptance assertions read)."""

    #: Rank queries accepted (deferred futures + immediate run_* calls).
    queries: int = 0
    #: SPMD launches this session paid for.
    launches: int = 0
    #: flush() calls that found pending work.
    flushes: int = 0
    #: Deferred queries answered by a shared (coalesced) launch or cache.
    coalesced_queries: int = 0
    #: Individual ranks served from the result cache.
    cache_hits: int = 0
    #: Individual ranks that required launch work.
    cache_misses: int = 0


class _Future:
    """Base future: resolved (or failed) by the owning session's flush."""

    __slots__ = ("_session", "data", "plan", "_report", "_error")

    def __init__(self, session: "Session", data: "DistributedArray",
                 plan: SelectionPlan):
        self._session = session
        self.data = data
        self.plan = plan
        self._report = None
        self._error = None

    @property
    def done(self) -> bool:
        """True once a flush has produced this future's report (or its
        launch failed — ``result()`` then re-raises the launch error)."""
        return self._report is not None or self._error is not None

    def _await(self):
        if self._report is None and self._error is None:
            self._session.flush()
        if self._error is not None:
            raise self._error
        if self._report is None:  # pragma: no cover - internal invariant
            raise RuntimeError("flush did not resolve this future")
        return self._report


class SelectionFuture(_Future):
    """A pending single-rank query; ``result()`` flushes the session."""

    __slots__ = ("k",)

    def __init__(self, session, data, k: int, plan):
        super().__init__(session, data, plan)
        self.k = k

    @property
    def ranks(self) -> tuple[int, ...]:
        return (self.k,)

    def result(self) -> SelectionReport:
        """The :class:`SelectionReport` (coalesced flush on first call)."""
        return self._await()

    @property
    def value(self):
        """Shortcut for ``result().value``."""
        return self.result().value


class MultiSelectionFuture(_Future):
    """A pending multi-rank query; ``result()`` flushes the session."""

    __slots__ = ("ks",)

    def __init__(self, session, data, ks: list[int], plan):
        super().__init__(session, data, plan)
        self.ks = ks

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(self.ks)

    def result(self) -> MultiSelectionReport:
        """The :class:`MultiSelectionReport` (coalesced flush on first
        call)."""
        return self._await()

    @property
    def values(self) -> list:
        """Shortcut for ``result().values``."""
        return self.result().values


class Session:
    """A query-serving session bound to one :class:`Machine`.

    Parameters
    ----------
    machine:
        The machine every query's data must live on.
    plan:
        Default :class:`SelectionPlan` for queries that do not carry one.
    cache:
        Enable the result cache (per ``(array fingerprint, plan, rank)``).
    max_cache_entries:
        LRU bound on cached ranks.

    Usage::

        with machine.session() as s:
            f50 = s.select(data, n // 2)
            f90 = s.select(data, 9 * n // 10)
            f99 = s.select(data, 99 * n // 100)
        # exiting flushed: ONE SPMD launch answered all three
        print(f50.value, f90.value, f99.value)
    """

    def __init__(
        self,
        machine: "Machine",
        plan: SelectionPlan | None = None,
        cache: bool = True,
        max_cache_entries: int = 65536,
    ):
        if plan is not None and not isinstance(plan, SelectionPlan):
            raise ConfigurationError(
                f"plan must be a SelectionPlan or None, "
                f"got {type(plan).__name__}"
            )
        if max_cache_entries < 1:
            raise ConfigurationError(
                f"max_cache_entries must be >= 1, got {max_cache_entries}"
            )
        self.machine = machine
        self.plan = plan if plan is not None else SelectionPlan()
        self.cache_enabled = bool(cache)
        self.max_cache_entries = max_cache_entries
        self.stats = SessionStats()
        self._pending: list[_Future] = []
        self._cache: OrderedDict[tuple, _CacheEntry] = OrderedDict()

    # ----------------------------------------------------------- plumbing

    def _plan_for(self, plan: SelectionPlan | None,
                  overrides: dict) -> SelectionPlan:
        if plan is None and not overrides:
            return self.plan
        if plan is None:
            return self.plan.replace(**overrides)
        return as_plan(plan, overrides)

    def _check_data(self, data: "DistributedArray") -> None:
        if data.machine is not self.machine:
            raise ConfigurationError(
                "query data lives on a different Machine than this session"
            )

    def _check_rank(self, k: int, n: int) -> int:
        return validate_rank(k, n)

    # LRU cache primitives -------------------------------------------------

    def _cache_get(self, key: tuple) -> _CacheEntry | None:
        if not self.cache_enabled:
            return None
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
        return entry

    def _cache_put(self, key: tuple, entry) -> None:
        if not self.cache_enabled:
            return
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_cache_entries:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached result."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def pending_count(self) -> int:
        """Queries queued but not yet flushed."""
        return len(self._pending)

    # ------------------------------------------------------ deferred queries

    def select(self, data: "DistributedArray", k: int,
               plan: SelectionPlan | None = None,
               **overrides) -> SelectionFuture:
        """Queue a rank-``k`` query; returns a future. Nothing launches
        until :meth:`flush` — same-array queries coalesce into one batched
        launch."""
        self._check_data(data)
        k = self._check_rank(k, data.n)
        fut = SelectionFuture(self, data, k, self._plan_for(plan, overrides))
        self._pending.append(fut)
        self.stats.queries += 1
        return fut

    def median(self, data: "DistributedArray",
               plan: SelectionPlan | None = None,
               **overrides) -> SelectionFuture:
        """Queue the rank-``ceil(n/2)`` query."""
        return self.select(data, median_rank(data.n), plan, **overrides)

    def quantiles(self, data: "DistributedArray", qs: Sequence[float],
                  plan: SelectionPlan | None = None,
                  **overrides) -> list[SelectionFuture]:
        """Queue one query per quantile fraction; all of them (plus any
        other pending same-array queries) share one flush launch."""
        self._check_data(data)
        ks = [quantile_rank(q, data.n) for q in qs]
        return [self.select(data, k, plan, **overrides) for k in ks]

    def multi_select(self, data: "DistributedArray", ks: Sequence[int],
                     plan: SelectionPlan | None = None,
                     **overrides) -> MultiSelectionFuture:
        """Queue a whole rank set as one future (``values`` align with
        ``ks``, duplicates and arbitrary order preserved)."""
        self._check_data(data)
        checked = [self._check_rank(k, data.n) for k in ks]
        fut = MultiSelectionFuture(
            self, data, checked, self._plan_for(plan, overrides)
        )
        self._pending.append(fut)
        self.stats.queries += 1
        return fut

    # --------------------------------------------------------------- flush

    def flush(self) -> list:
        """Answer every pending query.

        Pending queries are grouped by ``(array fingerprint, plan)``; each
        group's not-yet-cached ranks are answered by ONE batched
        ``multi_select`` SPMD launch, then every future is served from the
        (now warm) result cache. Returns the resolved futures.

        A failing group does not strand the others: every remaining group
        is still served, the failing group's futures record the launch
        error (their ``result()`` re-raises it), and the first error is
        re-raised once all groups have been attempted.
        """
        pending, self._pending = self._pending, []
        if not pending:
            return []
        self.stats.flushes += 1
        groups: OrderedDict[tuple, list[_Future]] = OrderedDict()
        for fut in pending:
            key = (fut.data.fingerprint, fut.plan.cache_key())
            groups.setdefault(key, []).append(fut)
        first_error: BaseException | None = None
        with get_recorder().span("session.flush", queries=len(pending),
                                 groups=len(groups)):
            for (fp, plan_key), futs in groups.items():
                try:
                    self._serve_group(fp, plan_key, futs)
                except Exception as exc:
                    for fut in futs:
                        if fut._report is None:
                            fut._error = exc
                    if first_error is None:
                        first_error = exc
        if first_error is not None:
            raise first_error
        return pending

    def _serve_group(self, fp: str, plan_key: tuple, futs: list[_Future],
                     count_coalesced: bool = True) -> None:
        data, plan = futs[0].data, futs[0].plan
        needed = sorted({k for fut in futs for k in fut.ranks})
        with get_recorder().span("session.group", algorithm=plan.algorithm,
                                 queries=len(futs), ranks=len(needed)):
            self._serve_group_inner(data, plan, fp, plan_key, futs, needed,
                                    count_coalesced)

    def _serve_group_inner(self, data, plan, fp: str, plan_key: tuple,
                           futs: list[_Future], needed: list[int],
                           count_coalesced: bool) -> None:
        entries: dict[int, _CacheEntry] = {}
        hit_ks: set[int] = set()
        missing: list[int] = []
        for k in needed:
            entry = self._cache_get(("multi", fp, plan_key, k))
            if entry is None:
                missing.append(k)
            else:
                entries[k] = entry
                hit_ks.add(k)
        self.stats.cache_hits += len(hit_ks)
        self.stats.cache_misses += len(missing)
        launched: _LaunchMetrics | None = None
        if missing:
            multi = execute_multi_select(data, missing, plan)
            self.stats.launches += 1
            launched = _LaunchMetrics.from_multi(multi)
            for k, value in zip(missing, multi.values):
                entry = _CacheEntry(value=value, metrics=launched)
                entries[k] = entry
                self._cache_put(("multi", fp, plan_key, k), entry)
        for fut in futs:
            if count_coalesced:
                self.stats.coalesced_queries += 1
            if isinstance(fut, SelectionFuture):
                entry = entries[fut.k]
                fut._report = per_rank_view(
                    entry.metrics, fut.k, entry.value,
                    cached=fut.k in hit_ks,
                )
            else:
                fut._report = self._multi_report(
                    fut, entries, hit_ks, launched
                )

    def _multi_report(self, fut: MultiSelectionFuture,
                      entries: dict[int, _CacheEntry], hit_ks: set[int],
                      launched: _LaunchMetrics | None) -> MultiSelectionReport:
        data, plan = fut.data, fut.plan
        if not fut.ks:
            # Historical empty-set behaviour: an empty report, no launch.
            return execute_multi_select(data, [], plan)
        all_cached = all(k in hit_ks for k in fut.ks)
        # A fully-cached report must carry its *originating* launch's
        # metrics (what a relaunch would produce), not those of whatever
        # launch this flush happened to pay for other futures' ranks.
        metrics = entries[fut.ks[0]].metrics if all_cached else launched
        return MultiSelectionReport(
            values=[entries[k].value for k in fut.ks],
            ks=list(fut.ks),
            n=metrics.n,
            p=metrics.p,
            algorithm=metrics.algorithm,
            balancer=metrics.balancer,
            simulated_time=metrics.simulated_time,
            wall_time=metrics.wall_time,
            breakdown=metrics.breakdown,
            stats=metrics.stats,
            result=metrics.result,
            cached=all_cached,
            backend=metrics.backend,
            topology=metrics.topology,
            predicted_time=getattr(metrics, "predicted_time", None),
        )

    # ---------------------------------------------------- immediate queries

    def run_select(self, data: "DistributedArray", k: int,
                   plan: SelectionPlan | None = None,
                   **overrides) -> SelectionReport:
        """Answer rank ``k`` NOW through the single-rank engine.

        Cache-aware (namespace ``"select"``): a repeat of an answered
        ``(array, plan, k)`` costs zero launches and returns the original
        launch's value and simulated metrics with ``cached=True``. This is
        the path the legacy :func:`repro.select` shim and the fluent
        ``data.select(k)`` ride, so their collective sequences, RNG streams
        and simulated times are bit-identical to the pre-Session API.
        """
        self._check_data(data)
        k = self._check_rank(k, data.n)
        plan = self._plan_for(plan, overrides)
        self.stats.queries += 1
        key = None
        if self.cache_enabled:
            key = ("select", data.fingerprint, plan.cache_key(), int(k))
            hit = self._cache_get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                return dataclasses.replace(hit, cached=True)
            self.stats.cache_misses += 1
        report = execute_select(data, k, plan)
        self.stats.launches += 1
        if key is not None:
            self._cache_put(key, report)
        return report

    def run_median(self, data: "DistributedArray",
                   plan: SelectionPlan | None = None,
                   **overrides) -> SelectionReport:
        """Answer the median NOW (rank ``ceil(n/2)`` via
        :meth:`run_select`)."""
        return self.run_select(data, median_rank(data.n), plan, **overrides)

    def run_multi_select(self, data: "DistributedArray", ks: Sequence[int],
                         plan: SelectionPlan | None = None,
                         **overrides) -> MultiSelectionReport:
        """Answer every rank in ``ks`` NOW: at most one batched launch,
        with cached ranks excluded from the launch entirely."""
        self._check_data(data)
        plan = self._plan_for(plan, overrides)
        self.stats.queries += 1
        if not self.cache_enabled:
            report = execute_multi_select(data, ks, plan)
            if report.result is not None:
                self.stats.launches += 1
            return report
        fut = MultiSelectionFuture(
            self, data, [self._check_rank(k, data.n) for k in ks], plan
        )
        # Not a coalesced deferred query: keep it out of that counter.
        self._serve_group(data.fingerprint, plan.cache_key(), [fut],
                          count_coalesced=False)
        return fut._report

    def run_quantiles(self, data: "DistributedArray", qs: Sequence[float],
                      plan: SelectionPlan | None = None,
                      **overrides) -> list[SelectionReport]:
        """Answer exact quantiles NOW via one batched launch.

        Returns one :class:`SelectionReport` per quantile, in input order
        (the historical per-quantile shape); the reports share the batched
        run's simulated metrics, so summing across them would
        double-count.
        """
        self._check_data(data)
        plan = self._plan_for(plan, overrides)
        ks = [quantile_rank(q, data.n) for q in qs]
        if not ks:
            return []
        multi = self.run_multi_select(data, ks, plan)
        return [
            per_rank_view(multi, k, value, cached=multi.cached)
            for k, value in zip(ks, multi.values)
        ]

    # ------------------------------------------------------ context manager

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Flush pending work on a clean exit. On an exception the queue is
        # left intact: futures stay pending and can still be resolved by a
        # later flush() or future.result().
        if exc_type is None:
            self.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(p={self.machine.n_procs}, pending={self.pending_count}, "
            f"cached={self.cache_size}, launches={self.stats.launches}, "
            f"hits={self.stats.cache_hits})"
        )
