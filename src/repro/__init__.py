"""repro — Practical Algorithms for Selection on Coarse-Grained Parallel
Computers (Al-Furaih, Aluru, Goil & Ranka; IPPS 1996), reproduced in Python.

The package provides:

* :class:`repro.Machine` / :class:`repro.DistributedArray` — a simulated
  coarse-grained distributed-memory machine under the paper's two-level
  (``tau``/``mu``) cost model, with data genuinely distributed and moved;
* :func:`repro.select` / :func:`repro.median` — the paper's four parallel
  selection algorithms (median of medians, bucket-based, randomized, fast
  randomized) plus the Section 5 hybrids;
* :func:`repro.multi_select` / :func:`repro.quantiles` — single-pass
  multi-rank selection: a whole set of target ranks answered by one
  contraction (one SPMD launch) through the shared engine of
  :mod:`repro.selection.engine`;
* :class:`repro.SelectionPlan` / :class:`repro.Session` — the serving
  layer: a frozen, validated plan replaces the per-call kwarg soup, and a
  session accepts rank queries as futures, coalesces all pending queries
  per (array, plan) into ONE batched SPMD launch on ``flush()``, and
  serves repeated traffic from a result cache with zero new launches;
* :mod:`repro.stream` — the streaming subsystem: :class:`repro.StreamingArray`
  (appendable, window-aware distributed arrays with an append-aware cache
  fingerprint), :class:`repro.QuantileSketch` (mergeable per-rank rank
  summaries), and sketch-accelerated exact refinement, opt-in per plan via
  ``SelectionPlan(prefilter="sketch")``;
* :func:`repro.rebalance` — the paper's load balancers (order maintaining,
  modified order maintaining, dimension exchange, global exchange);
* :data:`repro.DISTRIBUTIONS` / :func:`repro.generate_shards` /
  :func:`repro.describe` — the named workload registry (the public path;
  ``repro.data.generators`` is the implementation module);
* :mod:`repro.bench` — a harness regenerating every table and figure of the
  paper's evaluation.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from .core import (
    DistributedArray,
    Machine,
    MultiSelectionFuture,
    MultiSelectionReport,
    PrefilterStats,
    SelectionFuture,
    SelectionPlan,
    SelectionReport,
    Session,
    SessionStats,
    median,
    multi_select,
    quantiles,
    rebalance,
    select,
)
from .data.generators import DISTRIBUTIONS, describe, generate_shards
from .errors import (
    AdmissionError,
    CommunicationError,
    ConfigurationError,
    ConvergenceError,
    ReproError,
    ServiceClosed,
    WorkerAborted,
    WorkerError,
)
from .machine.cost_model import (
    CM5,
    ComputeCosts,
    CostModel,
    cm5,
    cm5_fast_network,
    zero_cost_model,
)
from .serve import SelectionService, ServiceStats
from .stream import QuantileSketch, StreamingArray

__version__ = "1.0.0"

__all__ = [
    "DISTRIBUTIONS",
    "DistributedArray",
    "Machine",
    "MultiSelectionFuture",
    "MultiSelectionReport",
    "PrefilterStats",
    "QuantileSketch",
    "SelectionFuture",
    "SelectionPlan",
    "SelectionReport",
    "SelectionService",
    "ServiceStats",
    "Session",
    "SessionStats",
    "StreamingArray",
    "describe",
    "generate_shards",
    "median",
    "multi_select",
    "quantiles",
    "rebalance",
    "select",
    "AdmissionError",
    "CommunicationError",
    "ConfigurationError",
    "ConvergenceError",
    "ReproError",
    "ServiceClosed",
    "WorkerAborted",
    "WorkerError",
    "CM5",
    "ComputeCosts",
    "CostModel",
    "cm5",
    "cm5_fast_network",
    "zero_cost_model",
    "__version__",
]
