"""Command line harness: regenerate any table/figure of the paper.

Usage::

    python -m repro.bench fig1 --scale paper
    python -m repro.bench all --scale small --out results/
    repro-bench fig5 --scale half

Prints the same rows/series the paper's figures plot (simulated seconds on
the calibrated CM5 cost model) and optionally writes per-experiment CSVs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .figures import EXPERIMENTS, SCALES, run_experiment
from .report import write_csv, write_json

__all__ = ["main"]

ALL_IDS = ["table1", "table2", "claims"] + sorted(EXPERIMENTS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Reproduce the evaluation of 'Practical Algorithms for Selection "
            "on Coarse-Grained Parallel Computers' (IPPS 1996)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=ALL_IDS + ["all"],
        help="experiment id (DESIGN.md experiment index) or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="grid size: small (quick), half, paper (full Section 5 grid)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for CSV export (one file per experiment)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "directory for BENCH_<experiment>.json perf-trajectory "
            "artifacts (scale, grid points, wall/simulated seconds)"
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    ids = ALL_IDS if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        t0 = time.perf_counter()
        result = run_experiment(exp_id, scale=args.scale)
        dt = time.perf_counter() - t0
        print(result.text)
        print(f"[{exp_id}] {len(result.points)} grid points in {dt:.1f}s "
              f"(scale={args.scale})\n")
        if args.out is not None and result.points:
            path = write_csv(args.out / f"{exp_id}_{args.scale}.csv",
                             result.points)
            print(f"[{exp_id}] wrote {path}")
        if args.json is not None and result.points:
            payload = {
                "experiment": exp_id,
                "scale": args.scale,
                "title": result.title,
                "harness_wall_s": round(dt, 3),
                "points": [pt.as_row() for pt in result.points],
            }
            path = write_json(args.json / f"BENCH_{exp_id}.json", payload)
            print(f"[{exp_id}] wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
