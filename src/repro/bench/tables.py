"""Tables 1 and 2: the paper's complexity tables, rendered and empirically
validated against the simulator.

The tables themselves are asymptotic statements; "reproducing" them means
(a) printing the claimed bounds next to the implementation they describe and
(b) checking the *scaling shape* empirically: with balanced/random data the
dominant term is ``n/p`` (Table 1 — doubling n at fixed p should roughly
double time, large-n regime), while on sorted data without balancing the
compute term gains a ``log n`` (randomized) factor and iteration-paced
behaviour (Table 2).
"""

from __future__ import annotations

import io

from .figures import FigureResult, _scale
from .harness import KILO, run_point

__all__ = ["table1", "table2", "TABLE1_ROWS", "TABLE2_ROWS"]

TABLE1_ROWS = [
    ("Median of Medians", "O(n/p + tau log p log n + mu p log n)"),
    ("Bucket-based", "— (not stated; balanced case not analysed)"),
    ("Randomized", "O(n/p + (tau + mu) log p log n)"),
    ("Fast randomized", "O(n/p + (tau + mu) log p log log n)"),
]

TABLE2_ROWS = [
    ("Median of Medians", "O(n/p log n + tau log p log n + mu p log n)"),
    ("Bucket-based",
     "O(n/p (log log p + log n / log p) + tau log p log n + mu p log n)"),
    ("Randomized", "O(n/p log n + (tau + mu) log p log n)"),
    ("Fast randomized",
     "O(n/p log log n + (tau + mu) log p log log n)"),
]

_T1_CONFIG = [
    ("median_of_medians", "global_exchange"),
    ("randomized", "none"),
    ("fast_randomized", "none"),
]


def _formula_block(title: str, rows) -> str:
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    for name, formula in rows:
        out.write(f"  {name:<20s} {formula}\n")
    return out.getvalue()


def _scaling_check(distribution: str, cfg: dict) -> tuple[str, list]:
    """Measure t(n) and t(4n) at fixed p: report the apparent growth factor
    of the *compute* portion (linear => ~4x; an extra log n factor pushes it
    higher)."""
    out = io.StringIO()
    points = []
    p = 8
    n_small = max(cfg["n_list"][0], 64 * KILO)
    n_large = n_small * 4
    out.write(
        f"  empirical n-scaling at p={p}, {distribution} data "
        f"(n: {n_small // KILO}k -> {n_large // KILO}k, factor 4):\n"
    )
    for algo, bal in _T1_CONFIG:
        a = run_point(algo, n_small, p, distribution=distribution, balancer=bal)
        b = run_point(algo, n_large, p, distribution=distribution, balancer=bal)
        points.extend([a, b])
        ratio = b.simulated_time / a.simulated_time if a.simulated_time else 0
        out.write(
            f"    {algo:<20s} t({n_large // KILO}k)/t({n_small // KILO}k) = "
            f"{ratio:5.2f}  (iters {a.iterations:.0f} -> {b.iterations:.0f})\n"
        )
    return out.getvalue(), points


def table1(scale: str = "small") -> FigureResult:
    """Table 1 — expected running times assuming balanced loads."""
    cfg = _scale(scale)
    text = [_formula_block(
        "Table 1: running times assuming (but not charging) load balance",
        TABLE1_ROWS,
    )]
    check, points = _scaling_check("random", cfg)
    text.append(check)
    text.append(
        "  expectation: near-linear growth in n (the n/p term dominates; the\n"
        "  log-factor sits on the tau/mu terms, which shrink relatively).\n"
    )
    return FigureResult("table1", "Expected running times", "".join(text),
                        points)


def table2(scale: str = "small") -> FigureResult:
    """Table 2 — worst-case running times without load balancing."""
    cfg = _scale(scale)
    text = [_formula_block(
        "Table 2: worst-case running times (no load balancing)", TABLE2_ROWS
    )]
    check, points = _scaling_check("sorted", cfg)
    text.append(check)
    text.append(
        "  expectation: sorted input concentrates survivors on few ranks, so\n"
        "  the compute term gains the paper's extra log n (randomized) /\n"
        "  log log n (fast randomized) factor versus Table 1.\n"
    )
    return FigureResult("table2", "Worst-case running times", "".join(text),
                        points)
