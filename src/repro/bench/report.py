"""Rendering of experiment results: aligned ASCII series (the textual
equivalent of the paper's plots), CSV export, and markdown fragments for
EXPERIMENTS.md."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from .harness import PointResult

__all__ = [
    "render_series_table",
    "render_bar_rows",
    "write_csv",
    "write_json",
    "fmt_time",
]


def fmt_time(seconds: float) -> str:
    """Human-scale simulated time (the paper's axes are seconds)."""
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    return f"{seconds * 1e3:8.2f} ms"


def render_series_table(
    title: str,
    series: dict[str, list[PointResult]],
    metric: str = "simulated_time",
) -> str:
    """One figure panel: rows = p values, one column per labelled series.

    This is the same data the paper plots as time-vs-processors curves.
    """
    out = io.StringIO()
    p_values = sorted({pt.p for pts in series.values() for pt in pts})
    labels = list(series)
    out.write(f"== {title} ==\n")
    header = "  p  " + "".join(f"{lab:>26s}" for lab in labels)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for p in p_values:
        row = [f"{p:4d} "]
        for lab in labels:
            match = [pt for pt in series[lab] if pt.p == p]
            if match:
                row.append(f"{fmt_time(getattr(match[0], metric)):>26s}")
            else:
                row.append(f"{'—':>26s}")
        out.write("".join(row) + "\n")
    return out.getvalue()


def render_bar_rows(
    title: str, points: Sequence[PointResult]
) -> str:
    """Figures 5-6 style: total time with the load-balancing share, one row
    per (p, strategy)."""
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    out.write(
        f"{'p':>4s} {'strategy':>18s} {'total':>12s} {'balance':>12s}"
        f" {'balance %':>10s}\n"
    )
    for pt in points:
        share = 100.0 * pt.balance_time / pt.simulated_time if pt.simulated_time else 0
        out.write(
            f"{pt.p:4d} {pt.balancer:>18s} {fmt_time(pt.simulated_time):>12s}"
            f" {fmt_time(pt.balance_time):>12s} {share:9.1f}%\n"
        )
    return out.getvalue()


def write_csv(path: str | Path, points: Sequence[PointResult]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = [pt.as_row() for pt in points]
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(path: str | Path, payload: dict) -> Path:
    """Write a ``BENCH_<experiment>.json`` perf-trajectory artifact.

    The committed artifacts let successive PRs diff repeated-launch
    throughput without re-running the grid; keep the payload flat JSON
    (scalars, dicts, lists) so the files diff cleanly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
