"""``python -m repro.bench`` entry point."""

import sys

from .cli import main

sys.exit(main())
