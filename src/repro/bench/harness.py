"""Experiment harness: run one (algorithm, balancer, workload, n, p) point of
the paper's evaluation grid and collect the metrics the figures plot.

The paper averages each random-data point over five different random data
sets "to eliminate peculiar cases"; :func:`run_point` does the same
(``trials`` parameter, default taken from the scale).

Simulated seconds are the headline metric; wall seconds of the simulation
are recorded for pytest-benchmark. ``impl_override="introselect"`` keeps the
wall cost of the *deterministic* algorithms' huge grids tolerable without
changing any simulated number (see SelectionConfig.impl_override).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

import numpy as np

from ..core.api import Machine, multi_select, select
from ..errors import ConfigurationError
from ..kernels.select import median_rank
from ..machine.cost_model import CM5, CostModel
from ..selection.fast_randomized import FastRandomizedParams

__all__ = [
    "PointResult",
    "run_point",
    "run_multiselect_point",
    "run_series",
    "quantile_ranks",
    "PAPER_P_SWEEP",
    "KILO",
]

KILO = 1024
#: The paper's processor sweep (Section 5).
PAPER_P_SWEEP = [2, 4, 8, 16, 32, 64, 128]


@dataclass
class PointResult:
    """One grid point, averaged over trials."""

    algorithm: str
    balancer: str
    distribution: str
    n: int
    p: int
    simulated_time: float
    balance_time: float
    wall_time: float
    iterations: float
    trials: int
    simulated_times: list[float] = field(default_factory=list)

    @property
    def label(self) -> str:
        return (
            f"{self.algorithm}/{self.balancer}/{self.distribution}/"
            f"n={self.n}/p={self.p}"
        )

    def as_row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "balancer": self.balancer,
            "distribution": self.distribution,
            "n": self.n,
            "p": self.p,
            "simulated_time_s": self.simulated_time,
            "balance_time_s": self.balance_time,
            "wall_time_s": self.wall_time,
            "iterations": self.iterations,
            "trials": self.trials,
        }


def run_point(
    algorithm: str,
    n: int,
    p: int,
    distribution: str = "random",
    balancer: str = "none",
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
    fast_params: FastRandomizedParams | None = None,
    k: int | None = None,
) -> PointResult:
    """Run one figure grid point (median selection unless ``k`` given)."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5)
    sims: list[float] = []
    bals: list[float] = []
    walls: list[float] = []
    iters: list[int] = []
    for t in range(trials):
        data = machine.generate(n, distribution=distribution, seed=seed + 1000 * t)
        rep = select(
            data,
            k if k is not None else median_rank(n),
            algorithm=algorithm,
            balancer=balancer,
            seed=seed + t,
            impl_override=impl_override,
            fast_params=fast_params,
        )
        sims.append(rep.simulated_time)
        bals.append(rep.balance_time)
        walls.append(rep.wall_time)
        iters.append(rep.stats.n_iterations)
    return PointResult(
        algorithm=algorithm,
        balancer=balancer,
        distribution=distribution,
        n=n,
        p=p,
        simulated_time=statistics.mean(sims),
        balance_time=statistics.mean(bals),
        wall_time=statistics.mean(walls),
        iterations=statistics.mean(iters),
        trials=trials,
        simulated_times=sims,
    )


def run_series(
    algorithm: str,
    n: int,
    p_sweep: list[int],
    **kwargs,
) -> list[PointResult]:
    """One curve of a figure: fixed everything, sweep p."""
    return [run_point(algorithm, n, p, **kwargs) for p in p_sweep]


def quantile_ranks(n: int, q: int) -> list[int]:
    """``q`` evenly spaced quantile ranks of ``n`` keys (the batched
    workload: deciles for ``q = 9``, etc.)."""
    return [max(1, int(np.ceil(n * i / (q + 1)))) for i in range(1, q + 1)]


def run_multiselect_point(
    algorithm: str,
    n: int,
    p: int,
    q: int,
    distribution: str = "random",
    balancer: str = "none",
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
) -> tuple[PointResult, PointResult]:
    """One batched-vs-repeated grid point: ``q`` evenly spaced quantile
    ranks answered by one :func:`repro.multi_select` launch versus ``q``
    independent :func:`repro.select` launches over the same data.

    Returns ``(batched, repeated)`` as :class:`PointResult` rows (the
    repeated row's simulated/balance/wall times and iterations are summed
    over its ``q`` launches — the cost the batched path replaces).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5)
    ks = quantile_ranks(n, q)
    b_sims, b_bals, b_walls, b_iters = [], [], [], []
    r_sims, r_bals, r_walls, r_iters = [], [], [], []
    for t in range(trials):
        data = machine.generate(n, distribution=distribution, seed=seed + 1000 * t)
        rep = multi_select(
            data, ks, algorithm=algorithm, balancer=balancer, seed=seed + t,
            impl_override=impl_override,
        )
        b_sims.append(rep.simulated_time)
        b_bals.append(rep.balance_time)
        b_walls.append(rep.wall_time)
        b_iters.append(rep.stats.n_iterations)
        sim = bal = wall = 0.0
        iters = 0
        for k in ks:
            one = select(
                data, k, algorithm=algorithm, balancer=balancer,
                seed=seed + t, impl_override=impl_override,
            )
            sim += one.simulated_time
            bal += one.balance_time
            wall += one.wall_time
            iters += one.stats.n_iterations
        r_sims.append(sim)
        r_bals.append(bal)
        r_walls.append(wall)
        r_iters.append(iters)

    def _mk(label: str, sims, bals, walls, iters) -> PointResult:
        return PointResult(
            algorithm=label,
            balancer=balancer,
            distribution=distribution,
            n=n,
            p=p,
            simulated_time=statistics.mean(sims),
            balance_time=statistics.mean(bals),
            wall_time=statistics.mean(walls),
            iterations=statistics.mean(iters),
            trials=trials,
            simulated_times=list(sims),
        )

    return (
        _mk(f"{algorithm}/multi_select(q={q})", b_sims, b_bals, b_walls, b_iters),
        _mk(f"{algorithm}/{q}x select", r_sims, r_bals, r_walls, r_iters),
    )
