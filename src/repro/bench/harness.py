"""Experiment harness: run one (algorithm, balancer, workload, n, p) point of
the paper's evaluation grid and collect the metrics the figures plot.

The paper averages each random-data point over five different random data
sets "to eliminate peculiar cases"; :func:`run_point` does the same
(``trials`` parameter, default taken from the scale).

Simulated seconds are the headline metric; wall seconds of the simulation
are recorded for pytest-benchmark. ``impl_override="introselect"`` keeps the
wall cost of the *deterministic* algorithms' huge grids tolerable without
changing any simulated number (see SelectionConfig.impl_override).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.array import Machine
from ..core.plan import SelectionPlan
from ..core.session import Session
from ..errors import ConfigurationError
from ..kernels.select import median_rank
from ..machine.cost_model import CM5, CostModel, cm5_two_level
from ..selection.fast_randomized import FastRandomizedParams

__all__ = [
    "BackendPointResult",
    "ObsPointResult",
    "PlannerPointResult",
    "PointResult",
    "PoolPointResult",
    "ServePointResult",
    "SessionPointResult",
    "StreamPointResult",
    "TopologyPointResult",
    "run_backend_point",
    "run_obs_point",
    "run_planner_point",
    "run_point",
    "run_multiselect_point",
    "run_pool_point",
    "run_serve_point",
    "run_session_point",
    "run_series",
    "run_stream_point",
    "run_topology_point",
    "quantile_ranks",
    "PAPER_P_SWEEP",
    "KILO",
]

KILO = 1024
#: The paper's processor sweep (Section 5).
PAPER_P_SWEEP = [2, 4, 8, 16, 32, 64, 128]


@dataclass
class PointResult:
    """One grid point, averaged over trials."""

    algorithm: str
    balancer: str
    distribution: str
    n: int
    p: int
    simulated_time: float
    balance_time: float
    wall_time: float
    iterations: float
    trials: int
    simulated_times: list[float] = field(default_factory=list)

    @property
    def label(self) -> str:
        return (
            f"{self.algorithm}/{self.balancer}/{self.distribution}/"
            f"n={self.n}/p={self.p}"
        )

    def as_row(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "balancer": self.balancer,
            "distribution": self.distribution,
            "n": self.n,
            "p": self.p,
            "simulated_time_s": self.simulated_time,
            "balance_time_s": self.balance_time,
            "wall_time_s": self.wall_time,
            "iterations": self.iterations,
            "trials": self.trials,
        }


def run_point(
    algorithm: str,
    n: int,
    p: int,
    distribution: str = "random",
    balancer: str = "none",
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
    fast_params: FastRandomizedParams | None = None,
    k: int | None = None,
) -> PointResult:
    """Run one figure grid point (median selection unless ``k`` given)."""
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5)
    plan = SelectionPlan(
        algorithm=algorithm,
        balancer=balancer,
        seed=seed,
        impl_override=impl_override,
        fast_params=fast_params,
    )
    one_shot = Session(machine, cache=False)
    sims: list[float] = []
    bals: list[float] = []
    walls: list[float] = []
    iters: list[int] = []
    for t in range(trials):
        data = machine.generate(n, distribution=distribution, seed=seed + 1000 * t)
        rep = one_shot.run_select(
            data,
            k if k is not None else median_rank(n),
            plan.replace(seed=seed + t),
        )
        sims.append(rep.simulated_time)
        bals.append(rep.balance_time)
        walls.append(rep.wall_time)
        iters.append(rep.stats.n_iterations)
    return PointResult(
        algorithm=algorithm,
        balancer=balancer,
        distribution=distribution,
        n=n,
        p=p,
        simulated_time=statistics.mean(sims),
        balance_time=statistics.mean(bals),
        wall_time=statistics.mean(walls),
        iterations=statistics.mean(iters),
        trials=trials,
        simulated_times=sims,
    )


def run_series(
    algorithm: str,
    n: int,
    p_sweep: list[int],
    **kwargs,
) -> list[PointResult]:
    """One curve of a figure: fixed everything, sweep p."""
    return [run_point(algorithm, n, p, **kwargs) for p in p_sweep]


def quantile_ranks(n: int, q: int) -> list[int]:
    """``q`` evenly spaced quantile ranks of ``n`` keys (the batched
    workload: deciles for ``q = 9``, etc.)."""
    return [max(1, int(np.ceil(n * i / (q + 1)))) for i in range(1, q + 1)]


def run_multiselect_point(
    algorithm: str,
    n: int,
    p: int,
    q: int,
    distribution: str = "random",
    balancer: str = "none",
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
) -> tuple[PointResult, PointResult]:
    """One batched-vs-repeated grid point: ``q`` evenly spaced quantile
    ranks answered by one :func:`repro.multi_select` launch versus ``q``
    independent :func:`repro.select` launches over the same data.

    Returns ``(batched, repeated)`` as :class:`PointResult` rows (the
    repeated row's simulated/balance/wall times and iterations are summed
    over its ``q`` launches — the cost the batched path replaces).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5)
    plan = SelectionPlan(
        algorithm=algorithm, balancer=balancer, seed=seed,
        impl_override=impl_override,
    )
    one_shot = Session(machine, cache=False)
    ks = quantile_ranks(n, q)
    b_sims, b_bals, b_walls, b_iters = [], [], [], []
    r_sims, r_bals, r_walls, r_iters = [], [], [], []
    for t in range(trials):
        data = machine.generate(n, distribution=distribution, seed=seed + 1000 * t)
        trial_plan = plan.replace(seed=seed + t)
        rep = one_shot.run_multi_select(data, ks, trial_plan)
        b_sims.append(rep.simulated_time)
        b_bals.append(rep.balance_time)
        b_walls.append(rep.wall_time)
        b_iters.append(rep.stats.n_iterations)
        sim = bal = wall = 0.0
        iters = 0
        for k in ks:
            one = one_shot.run_select(data, k, trial_plan)
            sim += one.simulated_time
            bal += one.balance_time
            wall += one.wall_time
            iters += one.stats.n_iterations
        r_sims.append(sim)
        r_bals.append(bal)
        r_walls.append(wall)
        r_iters.append(iters)

    def _mk(label: str, sims, bals, walls, iters) -> PointResult:
        return PointResult(
            algorithm=label,
            balancer=balancer,
            distribution=distribution,
            n=n,
            p=p,
            simulated_time=statistics.mean(sims),
            balance_time=statistics.mean(bals),
            wall_time=statistics.mean(walls),
            iterations=statistics.mean(iters),
            trials=trials,
            simulated_times=list(sims),
        )

    return (
        _mk(f"{algorithm}/multi_select(q={q})", b_sims, b_bals, b_walls, b_iters),
        _mk(f"{algorithm}/{q}x select", r_sims, r_bals, r_walls, r_iters),
    )


@dataclass
class BackendPointResult:
    """One launch measured on several execution backends.

    The simulated cost of a fixed ``(algorithm, data, seed)`` launch is
    backend-independent by construction (every backend charges through the
    same collective engine); what differs is the *wall clock* of the
    simulation itself. ``wall_times`` holds the best-of-``trials`` real
    seconds per backend; the agreement properties are the differential
    claims the ``backend`` experiment and ``bench_backends.py`` assert.
    """

    algorithm: str
    distribution: str
    n: int
    p: int
    backends: tuple[str, ...]
    #: Best-of-trials wall seconds of the simulation, per backend.
    wall_times: dict = field(default_factory=dict)
    #: Simulated seconds per backend (claim: all equal, bit-for-bit).
    simulated_times: dict = field(default_factory=dict)
    #: Selection answer per backend (claim: all equal).
    values: dict = field(default_factory=dict)
    trials: int = 1

    @property
    def values_agree(self) -> bool:
        vals = list(self.values.values())
        return all(v == vals[0] for v in vals)

    @property
    def simulated_times_agree(self) -> bool:
        """Bit-identical simulated seconds across backends."""
        sims = list(self.simulated_times.values())
        return all(s == sims[0] for s in sims)

    def speedup(self, candidate: str = "process",
                baseline: str = "threaded") -> float:
        """Wall-clock ratio ``baseline / candidate`` (>1: candidate wins)."""
        if candidate not in self.wall_times or baseline not in self.wall_times:
            raise ConfigurationError(
                f"speedup needs both {candidate!r} and {baseline!r} measured; "
                f"have {sorted(self.wall_times)}"
            )
        if not self.wall_times[candidate]:
            return float("inf")
        return self.wall_times[baseline] / self.wall_times[candidate]

    def as_points(self) -> list[PointResult]:
        """One CSV-exportable row per backend."""
        return [
            PointResult(
                algorithm=f"{self.algorithm}@{be}",
                balancer="none",
                distribution=self.distribution,
                n=self.n,
                p=self.p,
                simulated_time=self.simulated_times[be],
                balance_time=0.0,
                wall_time=self.wall_times[be],
                iterations=0.0,
                trials=self.trials,
            )
            for be in self.backends
        ]


def run_backend_point(
    algorithm: str,
    n: int,
    p: int,
    distribution: str = "random",
    backends: tuple[str, ...] = ("serial", "threaded", "process"),
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
    k: int | None = None,
) -> BackendPointResult:
    """Run ONE fixed launch on every backend and compare wall clocks.

    Unlike :func:`run_point`, the seed is identical across trials: each
    trial repeats the exact same launch, and the per-backend wall time is
    the minimum over trials (the usual best-of-N benchmarking discipline),
    while values and simulated times are asserted comparable.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    result = BackendPointResult(
        algorithm=algorithm, distribution=distribution, n=n, p=p,
        backends=tuple(backends), trials=trials,
    )
    target = k if k is not None else median_rank(n)
    plan = SelectionPlan(
        algorithm=algorithm, balancer="none", seed=seed,
        impl_override=impl_override,
    )
    for be in backends:
        machine = Machine(n_procs=p, cost_model=cost_model or CM5, backend=be)
        one_shot = Session(machine, cache=False)
        data = machine.generate(n, distribution=distribution, seed=seed)
        walls = []
        for _ in range(trials):
            rep = one_shot.run_select(data, target, plan)
            walls.append(rep.wall_time)
        result.wall_times[be] = min(walls)
        result.simulated_times[be] = rep.simulated_time
        result.values[be] = rep.value
    return result


@dataclass
class PoolPointResult:
    """A *repeated-launch* workload measured on several backends.

    The workload the persistent ``pool`` backend exists for: ``launches``
    selections at spread target ranks over the SAME distributed array. A
    per-launch backend (``process``) pays fork + shard pickling on every
    launch; the pool forks once, pins the shards in shared memory, and
    serves every later launch over warm workers. ``wall_times`` holds the
    best-of-``trials`` total real seconds for the whole sequence per
    backend, and ``fork_counts`` the *tracked* spawn events observed over
    the measurement: the pool's claim is exactly 1 for the whole sequence
    (in-process backends never fork; ``process`` re-forks every launch
    but does not track a counter, so it reads 0 here).
    """

    algorithm: str
    distribution: str
    n: int
    p: int
    launches: int
    backends: tuple[str, ...]
    #: Best-of-trials wall seconds for the whole launch sequence.
    wall_times: dict = field(default_factory=dict)
    #: Worker spawn events observed over all trials, per backend.
    fork_counts: dict = field(default_factory=dict)
    #: Sum of simulated seconds over the sequence (claim: all equal).
    simulated_times: dict = field(default_factory=dict)
    #: Tuple of selection answers, one per target rank (claim: all equal).
    values: dict = field(default_factory=dict)
    trials: int = 1

    @property
    def values_agree(self) -> bool:
        vals = list(self.values.values())
        return all(v == vals[0] for v in vals)

    @property
    def simulated_times_agree(self) -> bool:
        """Bit-identical summed simulated seconds across backends."""
        sims = list(self.simulated_times.values())
        return all(s == sims[0] for s in sims)

    def per_launch(self, backend: str) -> float:
        """Mean wall seconds per launch for ``backend``."""
        return self.wall_times[backend] / self.launches

    def speedup(self, candidate: str = "pool",
                baseline: str = "process") -> float:
        """Wall-clock ratio ``baseline / candidate`` (>1: candidate wins)."""
        if candidate not in self.wall_times or baseline not in self.wall_times:
            raise ConfigurationError(
                f"speedup needs both {candidate!r} and {baseline!r} measured; "
                f"have {sorted(self.wall_times)}"
            )
        if not self.wall_times[candidate]:
            return float("inf")
        return self.wall_times[baseline] / self.wall_times[candidate]

    def as_points(self) -> list[PointResult]:
        """One CSV-exportable row per backend: whole-sequence walls, with
        the ``iterations`` column carrying the observed fork count."""
        return [
            PointResult(
                algorithm=f"{self.algorithm}@{be}",
                balancer="none",
                distribution=self.distribution,
                n=self.n,
                p=self.p,
                simulated_time=self.simulated_times[be],
                balance_time=0.0,
                wall_time=self.wall_times[be],
                iterations=float(self.fork_counts[be]),
                trials=self.trials,
            )
            for be in self.backends
        ]

    def as_json(self) -> dict:
        """Schema for the committed ``BENCH_pool.json`` artifacts."""
        return {
            "experiment": "pool",
            "algorithm": self.algorithm,
            "distribution": self.distribution,
            "n": self.n,
            "p": self.p,
            "launches": self.launches,
            "trials": self.trials,
            "wall_times_s": dict(self.wall_times),
            "per_launch_s": {
                be: self.per_launch(be) for be in self.backends
            },
            "fork_counts": dict(self.fork_counts),
            "simulated_time_s": dict(self.simulated_times),
            "values_agree": self.values_agree,
            "simulated_times_agree": self.simulated_times_agree,
        }


def run_pool_point(
    algorithm: str,
    n: int,
    p: int,
    distribution: str = "random",
    backends: tuple[str, ...] = ("threaded", "process", "pool"),
    launches: int = 8,
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
) -> PoolPointResult:
    """Measure a repeated-launch selection workload on every backend.

    The sequence selects ``launches`` spread target ranks over one
    generated array; every backend runs the identical sequence and the
    whole sequence's wall clock is taken best-of-``trials``. Fork counts
    come from the :attr:`~repro.core.array.Machine.fork_count` delta over
    the measurement, so a pool point doubles as evidence of the
    "``launches`` launches, one fork" contract.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if launches < 1:
        raise ConfigurationError(f"launches must be >= 1, got {launches}")
    targets = sorted(
        {max(1, (i * n) // (launches + 1)) for i in range(1, launches + 1)}
    )
    result = PoolPointResult(
        algorithm=algorithm, distribution=distribution, n=n, p=p,
        launches=len(targets), backends=tuple(backends), trials=trials,
    )
    plan = SelectionPlan(
        algorithm=algorithm, balancer="none", seed=seed,
        impl_override=impl_override,
    )
    for be in backends:
        machine = Machine(n_procs=p, cost_model=cost_model or CM5, backend=be)
        one_shot = Session(machine, cache=False)
        data = machine.generate(n, distribution=distribution, seed=seed)
        forks_before = machine.fork_count
        walls = []
        for _ in range(trials):
            t0 = time.perf_counter()
            reports = [one_shot.run_select(data, t, plan) for t in targets]
            walls.append(time.perf_counter() - t0)
        result.wall_times[be] = min(walls)
        result.fork_counts[be] = machine.fork_count - forks_before
        result.simulated_times[be] = sum(r.simulated_time for r in reports)
        result.values[be] = tuple(r.value for r in reports)
    return result


@dataclass
class TopologyPointResult:
    """One launch measured on several machine shapes.

    The *values* of a fixed ``(algorithm, data, seed)`` launch are
    topology-independent by construction (collectives exchange the same
    payloads whatever shape prices them); what differs is the simulated
    time the round schedules charge. ``simulated_times`` holds the flat
    cost-model price per topology; ``hierarchical_times`` reprices the
    same launch on a hierarchical model with slow inter-cluster links
    (``cm5_two_level``), which only the ``two-level`` shape can feel —
    the claim the ``topology`` experiment and ``bench_topology.py``
    assert.
    """

    algorithm: str
    distribution: str
    n: int
    p: int
    topologies: tuple[str, ...]
    #: Simulated seconds per topology on the flat cost model.
    simulated_times: dict = field(default_factory=dict)
    #: Simulated seconds per topology with slow inter-cluster links.
    hierarchical_times: dict = field(default_factory=dict)
    #: Selection answer per topology (claim: all equal, bit-for-bit).
    values: dict = field(default_factory=dict)
    #: Per-collective round evidence per topology (traced runs only).
    rounds: dict = field(default_factory=dict)
    wall_times: dict = field(default_factory=dict)
    trials: int = 1

    @property
    def values_agree(self) -> bool:
        vals = list(self.values.values())
        return all(v == vals[0] for v in vals)

    def slowdown(self, topology: str, baseline: str = "crossbar",
                 hierarchical: bool = False) -> float:
        """Simulated-time ratio ``topology / baseline`` (>1: shape hurts)."""
        table = self.hierarchical_times if hierarchical else self.simulated_times
        if topology not in table or baseline not in table:
            raise ConfigurationError(
                f"slowdown needs both {topology!r} and {baseline!r} measured; "
                f"have {sorted(table)}"
            )
        if not table[baseline]:
            return float("inf")
        return table[topology] / table[baseline]

    def as_points(self) -> list[PointResult]:
        """One CSV-exportable row per (topology, cost-model) pair."""
        rows = []
        for hier, table in ((False, self.simulated_times),
                            (True, self.hierarchical_times)):
            suffix = "/hier" if hier else ""
            rows.extend(
                PointResult(
                    algorithm=f"{self.algorithm}@{topo}{suffix}",
                    balancer="none",
                    distribution=self.distribution,
                    n=self.n,
                    p=self.p,
                    simulated_time=table[topo],
                    balance_time=0.0,
                    wall_time=self.wall_times.get(topo, 0.0),
                    iterations=0.0,
                    trials=self.trials,
                )
                for topo in self.topologies
                if topo in table
            )
        return rows


def run_topology_point(
    algorithm: str,
    n: int,
    p: int,
    distribution: str = "random",
    topologies: tuple[str, ...] = (
        "crossbar", "binomial-tree", "hypercube", "two-level"
    ),
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    hierarchical_model: CostModel | None = None,
    impl_override: str | None = "introselect",
    k: int | None = None,
    trace: bool = False,
) -> TopologyPointResult:
    """Run ONE fixed launch on every machine shape and compare clocks.

    The same ``(algorithm, data, seed)`` launch runs once per topology on
    the flat cost model and once on a hierarchical one (slow
    inter-cluster links); values are asserted comparable via
    ``values_agree``, and ``trace=True`` additionally collects each
    shape's per-collective round counts.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    result = TopologyPointResult(
        algorithm=algorithm, distribution=distribution, n=n, p=p,
        topologies=tuple(topologies), trials=trials,
    )
    target = k if k is not None else median_rank(n)
    plan = SelectionPlan(
        algorithm=algorithm, balancer="none", seed=seed,
        impl_override=impl_override,
    )
    hier = hierarchical_model if hierarchical_model is not None \
        else cm5_two_level()
    for topo in topologies:
        machine = Machine(
            n_procs=p, cost_model=cost_model or CM5, topology=topo,
            trace=trace,
        )
        one_shot = Session(machine, cache=False)
        data = machine.generate(n, distribution=distribution, seed=seed)
        walls = []
        for _ in range(trials):
            rep = one_shot.run_select(data, target, plan)
            walls.append(rep.wall_time)
        result.wall_times[topo] = min(walls)
        result.simulated_times[topo] = rep.simulated_time
        result.values[topo] = rep.value
        if trace:
            result.rounds[topo] = rep.collective_rounds()

        hier_machine = Machine(n_procs=p, cost_model=hier, topology=topo)
        hier_data = hier_machine.generate(
            n, distribution=distribution, seed=seed
        )
        hier_rep = Session(hier_machine, cache=False).run_select(
            hier_data, target, plan
        )
        result.hierarchical_times[topo] = hier_rep.simulated_time
        assert hier_rep.value == rep.value, (
            "cost model must not change selection values"
        )
    return result


@dataclass
class SessionPointResult:
    """One serving-layer grid point: a coalesced Session flush of ``q``
    same-array rank queries vs ``q`` independent one-shot selects, plus a
    cache replay of the same ``q`` ranks (averaged over trials)."""

    algorithm: str
    balancer: str
    distribution: str
    n: int
    p: int
    q: int
    #: SPMD launches the coalesced flush paid (the claim: exactly 1).
    flush_launches: float
    #: Simulated seconds of the batched flush launch.
    flush_simulated: float
    #: Simulated balance seconds / wall seconds / iterations of that launch.
    flush_balance: float
    flush_wall: float
    flush_iterations: float
    #: Sums over the ``q`` independent ``run_select`` launches.
    independent_simulated: float
    independent_balance: float
    independent_wall: float
    independent_iterations: float
    #: SPMD launches paid re-querying all ``q`` ranks (the claim: 0).
    replay_launches: float
    #: Ranks served from the result cache during the replay.
    replay_hits: float
    trials: int

    @property
    def speedup(self) -> float:
        """Independent-over-coalesced simulated time."""
        if not self.flush_simulated:
            return float("inf")
        return self.independent_simulated / self.flush_simulated

    def as_points(self) -> tuple[PointResult, PointResult]:
        """CSV-exportable rows (coalesced flush, independent selects)."""
        shared = dict(
            balancer=self.balancer, distribution=self.distribution,
            n=self.n, p=self.p, trials=self.trials,
        )
        return (
            PointResult(
                algorithm=f"{self.algorithm}/session-flush(q={self.q})",
                simulated_time=self.flush_simulated,
                balance_time=self.flush_balance,
                wall_time=self.flush_wall,
                iterations=self.flush_iterations,
                **shared,
            ),
            PointResult(
                algorithm=f"{self.algorithm}/{self.q}x select",
                simulated_time=self.independent_simulated,
                balance_time=self.independent_balance,
                wall_time=self.independent_wall,
                iterations=self.independent_iterations,
                **shared,
            ),
        )


def run_session_point(
    algorithm: str,
    n: int,
    p: int,
    q: int,
    distribution: str = "random",
    balancer: str = "none",
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
) -> SessionPointResult:
    """Measure the Session serving layer on one grid point.

    Three measurements per trial, over ``q`` evenly spaced quantile ranks
    of the same array:

    1. **Coalesced flush** — all ``q`` ranks queued as futures on a cached
       :class:`~repro.core.session.Session`, answered by ``flush()``; the
       SPMD launch count delta is recorded (the serving claim: exactly 1).
    2. **Cache replay** — the same ``q`` ranks re-queried and flushed; the
       launch delta is recorded again (the caching claim: 0).
    3. **Independent** — ``q`` one-shot uncached ``run_select`` launches
       (pre-Session traffic), summed.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5)
    plan = SelectionPlan(
        algorithm=algorithm, balancer=balancer, seed=seed,
        impl_override=impl_override,
    )
    ks = quantile_ranks(n, q)
    fl_launches, fl_sims, fl_bals, fl_walls, fl_iters = [], [], [], [], []
    rp_launches, rp_hits = [], []
    ind_sims, ind_bals, ind_walls, ind_iters = [], [], [], []
    for t in range(trials):
        data = machine.generate(n, distribution=distribution, seed=seed + 1000 * t)
        trial_plan = plan.replace(seed=seed + t)
        session = machine.session(trial_plan)

        before = machine.launch_count
        futures = [session.select(data, k) for k in ks]
        session.flush()
        fl_launches.append(machine.launch_count - before)
        flush_report = futures[0].result()
        fl_sims.append(flush_report.simulated_time)
        fl_bals.append(flush_report.balance_time)
        fl_walls.append(flush_report.wall_time)
        fl_iters.append(flush_report.stats.n_iterations)

        before = machine.launch_count
        hits_before = session.stats.cache_hits
        replayed = [session.select(data, k) for k in ks]
        session.flush()
        rp_launches.append(machine.launch_count - before)
        rp_hits.append(session.stats.cache_hits - hits_before)
        for fut, orig in zip(replayed, futures):
            assert fut.value == orig.value, "cache served a different answer"

        one_shot = Session(machine, cache=False)
        sim = bal = wall = 0.0
        iters = 0
        for k in ks:
            one = one_shot.run_select(data, k, trial_plan)
            sim += one.simulated_time
            bal += one.balance_time
            wall += one.wall_time
            iters += one.stats.n_iterations
        ind_sims.append(sim)
        ind_bals.append(bal)
        ind_walls.append(wall)
        ind_iters.append(iters)
    return SessionPointResult(
        algorithm=algorithm,
        balancer=balancer,
        distribution=distribution,
        n=n,
        p=p,
        q=q,
        flush_launches=statistics.mean(fl_launches),
        flush_simulated=statistics.mean(fl_sims),
        flush_balance=statistics.mean(fl_bals),
        flush_wall=statistics.mean(fl_walls),
        flush_iterations=statistics.mean(fl_iters),
        independent_simulated=statistics.mean(ind_sims),
        independent_balance=statistics.mean(ind_bals),
        independent_wall=statistics.mean(ind_walls),
        independent_iterations=statistics.mean(ind_iters),
        replay_launches=statistics.mean(rp_launches),
        replay_hits=statistics.mean(rp_hits),
        trials=trials,
    )


@dataclass
class StreamPointResult:
    """One streaming grid point: ingest ``n_batches`` appends, then answer
    ``q`` quantile ranks of the live window with the sketch-prefiltered
    exact path versus the plain contraction (averaged over trials).

    The prefiltered launch rides the stream's ingest-time sketches
    (``prebuilt``), so its simulated time excludes summarisation — that
    work was amortised into the appends, which is the subsystem's claim.
    """

    algorithm: str
    distribution: str
    n: int
    p: int
    q: int
    n_batches: int
    eps: float
    #: Simulated seconds of the prefiltered vs plain batched launch.
    prefiltered_simulated: float
    plain_simulated: float
    prefiltered_wall: float
    plain_wall: float
    #: Surviving key fraction the exact contraction actually ground.
    survivor_fraction: float
    #: Stored keys in the merged cross-rank sketch.
    sketch_size: float
    #: Contraction-iteration halving estimate the pre-filter skipped.
    rounds_saved: float
    #: Re-query of the same ranks after no append (the claim: 0 launches).
    replay_launches: float
    trials: int

    @property
    def speedup(self) -> float:
        """Plain-over-prefiltered simulated time (>1: the sketch wins)."""
        if not self.prefiltered_simulated:
            return float("inf")
        return self.plain_simulated / self.prefiltered_simulated

    def as_points(self) -> tuple[PointResult, PointResult]:
        """CSV-exportable rows (prefiltered, plain)."""
        shared = dict(
            balancer="none", distribution=self.distribution,
            n=self.n, p=self.p, iterations=0.0, balance_time=0.0,
            trials=self.trials,
        )
        return (
            PointResult(
                algorithm=f"{self.algorithm}/sketch-prefiltered(q={self.q})",
                simulated_time=self.prefiltered_simulated,
                wall_time=self.prefiltered_wall,
                **shared,
            ),
            PointResult(
                algorithm=f"{self.algorithm}/plain(q={self.q})",
                simulated_time=self.plain_simulated,
                wall_time=self.plain_wall,
                **shared,
            ),
        )


def run_stream_point(
    algorithm: str,
    n: int,
    p: int,
    q: int = 3,
    n_batches: int = 4,
    distribution: str = "random",
    eps: float = 0.01,
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
) -> StreamPointResult:
    """Measure the streaming subsystem on one grid point.

    Per trial: generate the named workload, ingest it as ``n_batches``
    appends into a :class:`~repro.stream.stream.StreamingArray`, then
    answer ``q`` evenly spaced quantile ranks three ways —

    1. **Prefiltered** — ``SelectionPlan(prefilter="sketch")`` over the
       stream (prebuilt ingest-time sketches; ONE batched launch);
    2. **Plain** — the same plan without the pre-filter (the baseline the
       speedup is measured against); values are asserted identical;
    3. **Replay** — the prefiltered ranks again with no append in between
       (the serving claim: zero launches).
    """
    from ..data.generators import generate_shards

    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5)
    plan = SelectionPlan(
        algorithm=algorithm, balancer="none", seed=seed,
        impl_override=impl_override, prefilter="sketch", sketch_eps=eps,
    )
    ks = quantile_ranks(n, q)
    pre_sims, pre_walls, plain_sims, plain_walls = [], [], [], []
    fractions, sizes, rounds, rp_launches = [], [], [], []
    for t in range(trials):
        host = np.concatenate(
            generate_shards(n, 1, distribution, seed + 1000 * t)
        )
        stream = machine.stream()
        batch = max(1, n // n_batches)
        for start in range(0, n, batch):
            stream.append(host[start: start + batch])
        session = machine.session(plan.replace(seed=seed + t))

        pre = session.run_multi_select(stream, ks)
        pre_sims.append(pre.simulated_time)
        pre_walls.append(pre.wall_time)
        fractions.append(pre.prefilter.survivor_fraction)
        sizes.append(pre.prefilter.sketch_size)
        rounds.append(pre.prefilter.rounds_saved)

        before = machine.launch_count
        replay = session.run_multi_select(stream, ks)
        rp_launches.append(machine.launch_count - before)
        assert replay.values == pre.values, "replay served different answers"

        plain = session.run_multi_select(
            stream, ks, plan.replace(seed=seed + t, prefilter=None)
        )
        plain_sims.append(plain.simulated_time)
        plain_walls.append(plain.wall_time)
        assert plain.values == pre.values, (
            "sketch-prefiltered answers must be bit-identical to plain"
        )
    return StreamPointResult(
        algorithm=algorithm,
        distribution=distribution,
        n=n,
        p=p,
        q=q,
        n_batches=n_batches,
        eps=eps,
        prefiltered_simulated=statistics.mean(pre_sims),
        plain_simulated=statistics.mean(plain_sims),
        prefiltered_wall=statistics.mean(pre_walls),
        plain_wall=statistics.mean(plain_walls),
        survivor_fraction=statistics.mean(fractions),
        sketch_size=statistics.mean(sizes),
        rounds_saved=statistics.mean(rounds),
        replay_launches=statistics.mean(rp_launches),
        trials=trials,
    )


@dataclass
class ServePointResult:
    """One serving-tier grid point: a multi-tenant query trace replayed
    through a coalescing :class:`~repro.serve.SelectionService` at several
    client concurrencies, versus the query-at-a-time front door
    (:func:`~repro.serve.trace.direct_answers`) it replaces.

    ``wall_times[c]`` is the best-of-``trials`` wall seconds to answer
    the whole trace with ``c`` closed-loop clients; ``baseline_wall`` is
    the sequential uncached equivalent. The per-concurrency ``p50s`` /
    ``p99s`` come from the service's OWN latency
    :class:`~repro.stream.sketch.QuantileSketch` — the self-observability
    the serving tier ships with, not an external timer.
    """

    algorithm: str
    distribution: str
    n: int
    p: int
    queries: int
    tenants: int
    window: float
    concurrency: tuple[int, ...]
    #: Sequential query-at-a-time wall seconds (best of trials).
    baseline_wall: float = 0.0
    #: Launches the query-at-a-time baseline paid.
    baseline_launches: int = 0
    #: Best-of-trials wall seconds per client concurrency.
    wall_times: dict = field(default_factory=dict)
    #: SPMD launches the service paid per concurrency.
    launches: dict = field(default_factory=dict)
    #: Launches a query-at-a-time front door would have paid extra.
    launches_saved: dict = field(default_factory=dict)
    #: p50 / p99 query latency (seconds) from the service's own sketch.
    p50s: dict = field(default_factory=dict)
    p99s: dict = field(default_factory=dict)
    #: Coalesced answers == direct Session answers, bit for bit.
    answers_agree: bool = True
    trials: int = 1

    @property
    def baseline_qps(self) -> float:
        if not self.baseline_wall:
            return float("inf")
        return self.queries / self.baseline_wall

    def qps(self, c: int) -> float:
        if not self.wall_times[c]:
            return float("inf")
        return self.queries / self.wall_times[c]

    def speedup(self, c: int) -> float:
        """Throughput ratio coalesced-over-baseline at concurrency ``c``
        (>1: the service beats query-at-a-time)."""
        if not self.wall_times[c]:
            return float("inf")
        return self.baseline_wall / self.wall_times[c]

    def as_points(self) -> list[PointResult]:
        """CSV-exportable rows: one per concurrency plus the baseline
        (``iterations`` carries the launch count)."""
        shared = dict(
            balancer="none", distribution=self.distribution, n=self.n,
            p=self.p, simulated_time=0.0, balance_time=0.0,
            trials=self.trials,
        )
        rows = [
            PointResult(
                algorithm=f"{self.algorithm}@serve/query-at-a-time",
                wall_time=self.baseline_wall,
                iterations=float(self.baseline_launches),
                **shared,
            )
        ]
        rows.extend(
            PointResult(
                algorithm=f"{self.algorithm}@serve/c={c}",
                wall_time=self.wall_times[c],
                iterations=float(self.launches[c]),
                **shared,
            )
            for c in self.concurrency
        )
        return rows

    def as_json(self) -> dict:
        """Schema for the committed ``BENCH_serve.json`` artifact."""
        return {
            "experiment": "serve",
            "algorithm": self.algorithm,
            "distribution": self.distribution,
            "n": self.n,
            "p": self.p,
            "queries": self.queries,
            "tenants": self.tenants,
            "window_s": self.window,
            "trials": self.trials,
            "baseline_wall_s": self.baseline_wall,
            "baseline_qps": self.baseline_qps,
            "baseline_launches": self.baseline_launches,
            "wall_times_s": {str(c): self.wall_times[c]
                             for c in self.concurrency},
            "qps": {str(c): self.qps(c) for c in self.concurrency},
            "speedup": {str(c): self.speedup(c) for c in self.concurrency},
            "launches": {str(c): self.launches[c]
                         for c in self.concurrency},
            "launches_saved": {str(c): self.launches_saved[c]
                               for c in self.concurrency},
            "p50_s": {str(c): self.p50s[c] for c in self.concurrency},
            "p99_s": {str(c): self.p99s[c] for c in self.concurrency},
            "answers_agree": self.answers_agree,
        }


def run_serve_point(
    algorithm: str,
    n: int,
    p: int,
    queries: int = 48,
    tenants: int = 4,
    concurrency: tuple[int, ...] = (4, 16),
    window: float = 0.002,
    distribution: str = "random",
    distinct_fracs: int = 32,
    trials: int = 1,
    seed: int = 0,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
    backend=None,
) -> ServePointResult:
    """Measure the multi-tenant serving tier on one grid point.

    One synthetic trace (mixed select / quantile / multi-rank queries
    over ``tenants`` tenants and one registered array) is answered two
    ways:

    1. **Query-at-a-time** — sequentially, each query its own uncached
       launch on a fresh :class:`~repro.core.session.Session` (the front
       door a service replaces);
    2. **Coalesced** — replayed through a fresh
       :class:`~repro.serve.SelectionService` per client concurrency
       ``c`` (closed loop: each client keeps one query outstanding), so
       concurrent queries share batched launches and repeated ranks hit
       the result cache.

    Answers are asserted bit-identical between the two; the launch
    counts, launches-saved and sketch-read p50/p99 land in the result.
    """
    import asyncio

    from ..serve import SelectionService, direct_answers, replay, \
        synthetic_trace

    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if queries < 1:
        raise ConfigurationError(f"queries must be >= 1, got {queries}")
    plan = SelectionPlan(
        algorithm=algorithm, balancer="none", seed=seed,
        impl_override=impl_override,
    )
    machine = Machine(n_procs=p, cost_model=cost_model or CM5,
                      backend=backend)
    data = machine.generate(n, distribution=distribution, seed=seed)
    trace = synthetic_trace(
        queries, tenants=tenants, arrays=("a",),
        distinct_fracs=distinct_fracs, seed=seed,
    )
    result = ServePointResult(
        algorithm=algorithm, distribution=distribution, n=n, p=p,
        queries=len(trace), tenants=tenants, window=window,
        concurrency=tuple(concurrency), trials=trials,
    )

    base_walls = []
    before = machine.launch_count
    for _ in range(trials):
        t0 = time.perf_counter()
        expected = direct_answers(machine, {"a": data}, trace, plan=plan)
        base_walls.append(time.perf_counter() - t0)
    result.baseline_wall = min(base_walls)
    result.baseline_launches = (machine.launch_count - before) // trials

    async def one_replay(c: int):
        service = SelectionService(
            machine, plan, window=window,
            max_in_flight=max(64, 4 * c), max_per_tenant=max(8, c),
        )
        service.register("a", data)
        async with service:
            t0 = time.perf_counter()
            answers = await replay(service, trace, concurrency=c)
            wall = time.perf_counter() - t0
            stats = service.stats
        return answers, wall, stats

    for c in concurrency:
        walls, answers, stats = [], None, None
        for _ in range(trials):
            answers, wall, stats = asyncio.run(one_replay(c))
            walls.append(wall)
        result.wall_times[c] = min(walls)
        result.launches[c] = stats.launches
        result.launches_saved[c] = stats.launches_saved
        result.p50s[c] = stats.p50_s
        result.p99s[c] = stats.p99_s
        if answers != expected:
            result.answers_agree = False
    return result


@dataclass
class ObsPointResult:
    """One workload measured with observability OFF versus ON.

    The obs contract has two halves and this point measures both: capture
    must be *free where it matters* (values and simulated seconds
    bit-identical, wall overhead bounded) and *useful where it runs* (the
    span capture exports a valid Chrome trace-event document). The ON arm
    runs the identical launch sequence under an active
    :class:`repro.obs.capture` with per-launch tracing forced; the OFF arm
    is the plain default path. Walls are whole-sequence best-of-trials.
    """

    algorithm: str
    distribution: str
    n: int
    p: int
    launches: int
    trials: int = 1
    #: Best-of-trials whole-sequence wall seconds, obs disabled / enabled.
    wall_off: float = 0.0
    wall_on: float = 0.0
    #: Per-launch ``(value, simulated_time)`` tuples for each arm.
    answers_off: tuple = ()
    answers_on: tuple = ()
    #: Spans recorded by one traced sequence and its Chrome export.
    spans: int = 0
    chrome_events: int = 0
    chrome_valid: bool = False

    @property
    def bit_identical(self) -> bool:
        """Values AND simulated times unchanged by capture."""
        return self.answers_off == self.answers_on

    @property
    def overhead(self) -> float:
        """Fractional wall overhead of capture (``on/off - 1``)."""
        if not self.wall_off:
            return 0.0
        return self.wall_on / self.wall_off - 1.0

    def as_json(self) -> dict:
        """Schema for the committed ``BENCH_obs.json`` artifact."""
        return {
            "experiment": "obs",
            "algorithm": self.algorithm,
            "distribution": self.distribution,
            "n": self.n,
            "p": self.p,
            "launches": self.launches,
            "trials": self.trials,
            "wall_off_s": self.wall_off,
            "wall_on_s": self.wall_on,
            "overhead": self.overhead,
            "bit_identical": self.bit_identical,
            "spans": self.spans,
            "chrome_events": self.chrome_events,
            "chrome_valid": self.chrome_valid,
            "simulated_time_s": sum(s for _, s in self.answers_off),
        }


def run_obs_point(
    algorithm: str,
    n: int,
    p: int,
    distribution: str = "random",
    launches: int = 4,
    trials: int = 1,
    seed: int = 0,
    backend: str | None = None,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
) -> ObsPointResult:
    """Measure one selection workload with capture off versus on.

    Both arms run ``launches`` selections at spread target ranks over an
    identically generated array (fresh machine per arm, cache off so every
    query pays its launch). The ON arm forces per-launch tracing and an
    active span capture — the heaviest capture configuration — and its
    last trial's span set is exported to an in-memory Chrome document and
    schema-validated.
    """
    from .. import obs
    from ..obs.export import chrome_document, validate_chrome

    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    targets = sorted(
        {max(1, (i * n) // (launches + 1)) for i in range(1, launches + 1)}
    )
    plan = SelectionPlan(
        algorithm=algorithm, balancer="none", seed=seed,
        impl_override=impl_override,
    )
    result = ObsPointResult(
        algorithm=algorithm, distribution=distribution, n=n, p=p,
        launches=len(targets), trials=trials,
    )

    def sequence(machine) -> tuple:
        one_shot = Session(machine, cache=False)
        data = machine.generate(n, distribution=distribution, seed=seed)
        reports = [one_shot.run_select(data, t, plan) for t in targets]
        return tuple((r.value, r.simulated_time) for r in reports)

    walls = []
    for _ in range(trials):
        machine = Machine(
            n_procs=p, cost_model=cost_model or CM5, backend=backend
        )
        t0 = time.perf_counter()
        result.answers_off = sequence(machine)
        walls.append(time.perf_counter() - t0)
    result.wall_off = min(walls)

    walls = []
    for _ in range(trials):
        machine = Machine(
            n_procs=p, cost_model=cost_model or CM5, backend=backend,
            trace=True,
        )
        with obs.capture() as rec:
            t0 = time.perf_counter()
            result.answers_on = sequence(machine)
            walls.append(time.perf_counter() - t0)
        result.spans = len(rec.spans)
        doc = chrome_document(rec.spans)
        result.chrome_events = len(doc["traceEvents"])
        result.chrome_valid = not validate_chrome(doc)
    result.wall_on = min(walls)
    return result


# ---------------------------------------------------------------------------
# Planner experiment: static plans vs the auto plan, on one grid point
# ---------------------------------------------------------------------------


@dataclass
class PlannerPointResult:
    """One (n, p, distribution) cell of the planner evaluation grid.

    Every closed-form algorithm runs as an explicit static plan first
    (feeding a fresh residual store through the normal launch path), then
    ``algorithm="auto"`` runs the same query. Per static plan the point
    records predicted-vs-actual relative error *before* (raw closed form)
    and *after* (residual-corrected) calibration; for the auto arm it
    records the chosen algorithm, the pure planning overhead, and the
    speedups the bench gates assert (auto never slower than the default
    plan; auto beats the worst static plan).
    """

    n: int
    p: int
    distribution: str
    trials: int
    #: algorithm -> median simulated seconds of its static plan.
    simulated: dict = field(default_factory=dict)
    #: algorithm -> raw closed-form prediction (seconds).
    predicted: dict = field(default_factory=dict)
    #: algorithm -> residual-corrected prediction (seconds).
    corrected: dict = field(default_factory=dict)
    chosen_algorithm: str = ""
    auto_simulated: float = 0.0
    #: Median wall seconds of one pure ``choose_plan`` call (no launches).
    overhead_s: float = 0.0
    #: Auto's answer equals every static plan's answer (k-th order
    #: statistic; algorithm-independent by construction).
    value_match: bool = False

    def rel_err(self, algorithm: str, corrected: bool) -> float:
        pred = (self.corrected if corrected else self.predicted)[algorithm]
        actual = self.simulated[algorithm]
        return abs(pred - actual) / actual if actual > 0 else 0.0

    def median_rel_err(self, corrected: bool) -> float:
        return statistics.median(
            self.rel_err(a, corrected) for a in self.simulated
        )

    @property
    def default_simulated(self) -> float:
        """The repo-wide default plan's algorithm (fast_randomized)."""
        return self.simulated["fast_randomized"]

    @property
    def best_simulated(self) -> float:
        return min(self.simulated.values())

    @property
    def worst_simulated(self) -> float:
        return max(self.simulated.values())

    @property
    def speedup_vs_default(self) -> float:
        return self.default_simulated / self.auto_simulated

    @property
    def speedup_vs_worst(self) -> float:
        return self.worst_simulated / self.auto_simulated

    def as_row(self) -> dict:
        return {
            "n": self.n,
            "p": self.p,
            "distribution": self.distribution,
            "trials": self.trials,
            "chosen_algorithm": self.chosen_algorithm,
            "auto_simulated_s": self.auto_simulated,
            "default_simulated_s": self.default_simulated,
            "best_simulated_s": self.best_simulated,
            "worst_simulated_s": self.worst_simulated,
            "speedup_vs_default": self.speedup_vs_default,
            "speedup_vs_worst": self.speedup_vs_worst,
            "planner_overhead_s": self.overhead_s,
            "median_rel_err_before": self.median_rel_err(False),
            "median_rel_err_after": self.median_rel_err(True),
            "value_match": self.value_match,
        }

    def as_json(self) -> dict:
        """Schema for the committed ``BENCH_planner.json`` artifact."""
        row = self.as_row()
        row["experiment"] = "planner"
        row["static"] = {
            a: {
                "simulated_s": self.simulated[a],
                "predicted_s": self.predicted[a],
                "corrected_s": self.corrected[a],
                "rel_err_before": self.rel_err(a, corrected=False),
                "rel_err_after": self.rel_err(a, corrected=True),
            }
            for a in sorted(self.simulated)
        }
        return row


def run_planner_point(
    n: int,
    p: int,
    distribution: str = "random",
    trials: int = 3,
    seed: int = 0,
    backend: str | None = None,
    cost_model: CostModel | None = None,
    impl_override: str | None = "introselect",
    overhead_reps: int = 5,
) -> PlannerPointResult:
    """Static plans vs auto on one grid point, with a fresh residual store.

    The store starts empty (``use_store`` isolates the point from the
    process default), the static runs feed it through the ordinary
    ``observe_launch`` path, and the auto run then plans with the learned
    corrections — which is exactly the production calibration loop,
    compressed into one cell.
    """
    from ..planner.cost import CLOSED_FORM_ALGORITHMS
    from ..planner.planner import choose_plan
    from ..planner.residuals import ResidualStore, use_store

    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    machine = Machine(n_procs=p, cost_model=cost_model or CM5,
                      backend=backend)
    data = machine.generate(n, distribution=distribution, seed=seed)
    k = median_rank(n)
    point = PlannerPointResult(n=n, p=p, distribution=distribution,
                               trials=trials)
    values = set()
    with use_store(ResidualStore()) as store:
        one_shot = Session(machine, cache=False)
        for algorithm in CLOSED_FORM_ALGORITHMS:
            sims = []
            for t in range(trials):
                plan = SelectionPlan(
                    algorithm=algorithm, seed=seed + t,
                    impl_override=impl_override,
                )
                report = one_shot.run_select(data, k, plan)
                sims.append(report.simulated_time)
                values.add(report.value)
                point.predicted[algorithm] = report.predicted_time
            point.simulated[algorithm] = statistics.median(sims)
            point.corrected[algorithm] = (
                point.predicted[algorithm]
                * store.correction(algorithm, machine.topology, p)
            )
        walls = []
        for _ in range(overhead_reps):
            t0 = time.perf_counter()
            decision = choose_plan(n, p, machine.cost_model,
                                   machine.topology, store=store)
            walls.append(time.perf_counter() - t0)
        walls.sort()
        point.overhead_s = walls[len(walls) // 2]
        sims = []
        for t in range(trials):
            # Each auto trial plans against a clone of the post-static
            # store: the arm measures the calibrated choice itself, not
            # its own trial-to-trial feedback, so every trial resolves to
            # the same plan choose_plan returned and its launches stay
            # bit-identical to the matching static trials.
            with use_store(store.clone()):
                plan = SelectionPlan(algorithm="auto", seed=seed + t,
                                     impl_override=impl_override)
                report = one_shot.run_select(data, k, plan)
            sims.append(report.simulated_time)
            values.add(report.value)
            if t == 0:
                point.chosen_algorithm = report.algorithm
                assert report.algorithm == decision.chosen.algorithm, (
                    "launch-path auto resolution disagrees with choose_plan"
                )
        point.auto_simulated = statistics.median(sims)
    point.value_match = len(values) == 1
    return point
