"""Benchmark harness regenerating every table and figure of the paper.

* :mod:`.harness` — grid-point runner (algorithm x balancer x workload x n x p);
* :mod:`.figures` — one experiment definition per paper figure + ablations;
* :mod:`.tables` — Tables 1-2 (complexity claims + empirical scaling checks);
* :mod:`.report` — ASCII series tables, bar rows, CSV export;
* :mod:`.cli` — ``python -m repro.bench <exp-id> --scale paper``.
"""

from .figures import EXPERIMENTS, FigureResult, SCALES, run_experiment
from .harness import PAPER_P_SWEEP, PointResult, run_point, run_series
from .model import Prediction, predict
from .report import fmt_time, render_bar_rows, render_series_table, write_csv

__all__ = [
    "EXPERIMENTS",
    "FigureResult",
    "SCALES",
    "run_experiment",
    "PAPER_P_SWEEP",
    "PointResult",
    "run_point",
    "run_series",
    "Prediction",
    "predict",
    "fmt_time",
    "render_bar_rows",
    "render_series_table",
    "write_csv",
]
