"""Closed-form time predictions from the paper's Tables 1-2.

The paper states asymptotic running times; this module turns them into
concrete predictors by plugging in the cost model's constants and the
calibrated leading coefficients, so the complexity claims become executable:

* Table 1 (balanced loads / random data): the expected-case formulas;
* Table 2 (no balancing, sorted worst case): the worst-case formulas.

``predict`` returns seconds comparable to ``PointResult.simulated_time``;
the test suite checks agreement within a small factor across a grid — that
*is* the reproduction of Tables 1-2 as more than prose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..machine.cost_model import CM5, CostModel
from ..machine.topology import log2_ceil

__all__ = ["predict", "Prediction"]

#: Expected total scan volume (in units of n) of randomized selection
#: targeting the median: sum of E[n^(j)] ~ (2 + 2 ln 2) n, split over p.
_GAMMA_RANDOMIZED = 3.4
#: Fast randomized keeps ~n^delta-driven slices: the live set collapses
#: geometrically, total scan volume ~1.3 n.
_GAMMA_FAST = 1.3
#: Collectives per iteration (prefix/combine-pivot/combine-counts vs the
#: richer sample-sort round of Algorithm 4).
_COLLS_RANDOMIZED = 3
_COLLS_FAST = 9
_COLLS_MOM = 3


@dataclass(frozen=True)
class Prediction:
    """A decomposed closed-form estimate."""

    algorithm: str
    table: int
    compute: float
    comm: float

    @property
    def total(self) -> float:
        return self.compute + self.comm


def _iters_log(n: int, p: int) -> int:
    """Halving iterations until the p^2 endgame threshold."""
    threshold = max(p * p, 1)
    return max(1, math.ceil(math.log2(max(n / threshold, 2))))


def _iters_loglog(n: int) -> int:
    return max(1, math.ceil(math.log2(max(math.log2(max(n, 4)), 2))))


def _coll_cost(model: CostModel, p: int) -> float:
    """One tree collective of O(1) words."""
    return (model.tau + model.mu) * log2_ceil(max(p, 2))


def _gather_cost(model: CostModel, p: int, words: float = 1.0) -> float:
    return model.tau * log2_ceil(max(p, 2)) + model.mu * words * (p - 1)


def predict(
    algorithm: str,
    n: int,
    p: int,
    model: CostModel = CM5,
    table: int = 1,
    *,
    coll_cost=None,
    gather_cost=None,
) -> Prediction:
    """Closed-form simulated-seconds estimate for one grid point.

    ``table=1`` gives the balanced/expected-case prediction (random data);
    ``table=2`` the worst-case one (sorted data, no balancing).

    ``coll_cost(model, p)`` / ``gather_cost(model, p, words=...)`` replace
    the default crossbar collective prices — the planner injects prices
    derived from an actual lowered :class:`~repro.machine.topology.Schedule`
    here to predict on any machine shape with the same compute skeleton.
    """
    if table not in (1, 2):
        raise ConfigurationError(f"table must be 1 or 2, got {table}")
    if coll_cost is None:
        coll_cost = _coll_cost
    if gather_cost is None:
        gather_cost = _gather_cost
    c = model.compute
    np_ = n / max(p, 1)
    L = _iters_log(n, p)
    LL = _iters_loglog(n)
    per_coll = coll_cost(model, p)

    if algorithm == "median_of_medians":
        unit = c.select_deterministic + c.partition
        compute = 2.0 * np_ * unit if table == 1 else np_ * unit * L
        comm = L * (_COLLS_MOM * per_coll + gather_cost(model, p))
    elif algorithm == "bucket_based":
        nb = max(2, log2_ceil(max(p, 2)))
        preprocess = c.bucket_level * np_ * log2_ceil(nb)
        unit = c.select_deterministic + c.partition
        if table == 1:
            compute = preprocess + 2.0 * (np_ / nb) * unit * min(L, nb)
        else:
            # Paper: n/p (log log p + log n / log p) class.
            compute = preprocess + (np_ / nb) * unit * L
        comm = L * (_COLLS_MOM * per_coll + gather_cost(model, p, words=2))
    elif algorithm == "randomized":
        if table == 1:
            compute = _GAMMA_RANDOMIZED * np_ * c.partition
        else:
            compute = np_ * c.partition * L  # n_max stays n/p on sorted
        compute += L * c.rng_draw
        comm = L * _COLLS_RANDOMIZED * per_coll
    elif algorithm == "fast_randomized":
        gamma = _GAMMA_FAST if table == 1 else 2.6  # blocks keep n_max ~ n/p
        compute = gamma * np_ * c.partition
        # Sample sort of ~n^0.6 keys per iteration (local sort + merge).
        s = n ** 0.6
        sort_unit = c.sort_per_cmp * (s / p) * max(1.0, math.log2(max(s, 2)))
        compute += LL * sort_unit
        comm = LL * (_COLLS_FAST * per_coll + gather_cost(model, p, words=p))
    else:
        raise ConfigurationError(
            f"no closed-form prediction for algorithm {algorithm!r}"
        )
    # Endgame: gather <= p^2 keys + one sequential selection.
    endgame_n = min(n, max(p * p, 1))
    comm += gather_cost(model, p, words=endgame_n / max(p, 1))
    compute += endgame_n * c.select_randomized
    return Prediction(algorithm=algorithm, table=table, compute=compute,
                      comm=comm)
