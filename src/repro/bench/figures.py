"""Experiment definitions: one entry per table/figure of the paper's
evaluation (the experiment index of DESIGN.md Section 3).

Every experiment is parameterised by a *scale*:

* ``small`` — quick shapes check (CI-friendly, < a minute);
* ``half``  — intermediate grid;
* ``paper`` — the full Section 5 grid: n in {128k, 512k, 2M}, p in
  {2,...,128}, random and sorted inputs, random points averaged over
  multiple data sets.

Each runner returns a :class:`FigureResult` whose ``text`` holds the same
rows/series the paper's figure plots and whose ``points`` feed the CSV
export and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..selection.fast_randomized import FastRandomizedParams
from .harness import (
    KILO,
    PointResult,
    run_backend_point,
    run_multiselect_point,
    run_point,
    run_obs_point,
    run_planner_point,
    run_pool_point,
    run_series,
    run_serve_point,
    run_session_point,
    run_stream_point,
    run_topology_point,
)
from .report import render_bar_rows, render_series_table

__all__ = ["FigureResult", "EXPERIMENTS", "SCALES", "run_experiment"]


SCALES: dict[str, dict] = {
    "small": dict(
        n_list=[32 * KILO, 128 * KILO],
        p_sweep=[2, 4, 8, 16],
        bar_p_sweep=[4, 8, 16],
        trials=1,
        n_big=128 * KILO,
    ),
    "half": dict(
        n_list=[128 * KILO, 512 * KILO],
        p_sweep=[2, 4, 8, 16, 32, 64],
        bar_p_sweep=[4, 8, 16, 32, 64],
        trials=1,
        n_big=512 * KILO,
    ),
    "paper": dict(
        n_list=[128 * KILO, 512 * KILO, 2048 * KILO],
        p_sweep=[2, 4, 8, 16, 32, 64, 128],
        bar_p_sweep=[4, 8, 16, 32, 64, 128],
        trials=2,
        n_big=2048 * KILO,
    ),
}

#: The four algorithms of Figure 1 with the paper's balancer pairing
#: (median of medians requires balancing; the others run without).
FIG1_ALGOS = [
    ("median_of_medians", "global_exchange"),
    ("bucket_based", "none"),
    ("randomized", "none"),
    ("fast_randomized", "none"),
]

#: Figures 2-3/5-6 strategy grid with the paper's bar labels.
LB_GRID = [
    ("none", "N"),
    ("modified_omlb", "O"),
    ("dimension_exchange", "D"),
    ("global_exchange", "G"),
]


@dataclass
class FigureResult:
    exp_id: str
    title: str
    text: str
    points: list[PointResult] = field(default_factory=list)


def _scale(scale: str) -> dict:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(SCALES)}") from None


# --------------------------------------------------------------------- fig1

def fig1(scale: str = "small") -> FigureResult:
    """Figure 1: the four selection algorithms on random data (no LB except
    median of medians + global exchange), one panel per n, plus the paper's
    randomized-only zoom panels."""
    cfg = _scale(scale)
    text = []
    points: list[PointResult] = []
    for n in cfg["n_list"]:
        series: dict[str, list[PointResult]] = {}
        for algo, bal in FIG1_ALGOS:
            pts = run_series(
                algo, n, cfg["p_sweep"], distribution="random", balancer=bal,
                trials=cfg["trials"],
            )
            series[algo] = pts
            points.extend(pts)
        text.append(render_series_table(
            f"Figure 1 panel: n={n // KILO}k, random data", series
        ))
        zoom = {k: v for k, v in series.items()
                if k in ("randomized", "fast_randomized")}
        text.append(render_series_table(
            f"Figure 1 zoom: n={n // KILO}k (randomized algorithms only)", zoom
        ))
    return FigureResult("fig1", "Selection algorithms on random data",
                        "\n".join(text), points)


# ---------------------------------------------------------------- fig2/fig3

def _lb_figure(exp_id: str, algo: str, scale: str) -> FigureResult:
    cfg = _scale(scale)
    text = []
    points: list[PointResult] = []
    n_list = cfg["n_list"][-2:]  # the paper uses 512k and 2M panels
    for dist in ("random", "sorted"):
        for n in n_list:
            series: dict[str, list[PointResult]] = {}
            for bal, _letter in LB_GRID:
                pts = run_series(
                    algo, n, cfg["p_sweep"], distribution=dist, balancer=bal,
                    trials=cfg["trials"] if dist == "random" else 1,
                )
                series[bal] = pts
                points.extend(pts)
            text.append(render_series_table(
                f"{exp_id}: {algo}, {dist} data, n={n // KILO}k "
                f"(balancing strategies)", series
            ))
    title = f"{algo} under the four load-balancing strategies"
    return FigureResult(exp_id, title, "\n".join(text), points)


def fig2(scale: str = "small") -> FigureResult:
    """Figure 2: randomized selection x {N, O, D, G} on random and sorted."""
    return _lb_figure("fig2", "randomized", scale)


def fig3(scale: str = "small") -> FigureResult:
    """Figure 3: fast randomized selection x {N, O, D, G}."""
    return _lb_figure("fig3", "fast_randomized", scale)


# --------------------------------------------------------------------- fig4

def fig4(scale: str = "small") -> FigureResult:
    """Figure 4: the two randomized algorithms on sorted data with each
    one's best balancing strategy (none vs modified OMLB)."""
    cfg = _scale(scale)
    text = []
    points: list[PointResult] = []
    for n in cfg["n_list"][-2:]:
        series = {
            "randomized (no LB)": run_series(
                "randomized", n, cfg["p_sweep"], distribution="sorted",
                balancer="none",
            ),
            "fast_randomized (mod OMLB)": run_series(
                "fast_randomized", n, cfg["p_sweep"], distribution="sorted",
                balancer="modified_omlb",
            ),
        }
        for pts in series.values():
            points.extend(pts)
        text.append(render_series_table(
            f"Figure 4: sorted data, n={n // KILO}k, best LB per algorithm",
            series,
        ))
    return FigureResult("fig4", "Randomized algorithms on sorted data",
                        "\n".join(text), points)


# ---------------------------------------------------------------- fig5/fig6

def _lb_time_figure(exp_id: str, algo: str, scale: str) -> FigureResult:
    cfg = _scale(scale)
    text = []
    points: list[PointResult] = []
    n = cfg["n_big"]
    for dist in ("random", "sorted"):
        rows: list[PointResult] = []
        for p in cfg["bar_p_sweep"]:
            for bal, _letter in LB_GRID:
                pt = run_point(
                    algo, n, p, distribution=dist, balancer=bal,
                    trials=1,
                )
                rows.append(pt)
                points.append(pt)
        text.append(render_bar_rows(
            f"{exp_id}: {algo}, {dist} data, n={n // KILO}k — total vs "
            f"load-balancing time", rows
        ))
    return FigureResult(exp_id, f"{algo}: load balancing time share",
                        "\n".join(text), points)


def fig5(scale: str = "small") -> FigureResult:
    """Figure 5: randomized selection — total and LB time bars (N/O/D/G)."""
    return _lb_time_figure("fig5", "randomized", scale)


def fig6(scale: str = "small") -> FigureResult:
    """Figure 6: fast randomized — total and LB time bars (N/O/D/G)."""
    return _lb_time_figure("fig6", "fast_randomized", scale)


# ------------------------------------------------------------------- hybrid

def hybrid(scale: str = "small") -> FigureResult:
    """Section 5 hybrid experiment: deterministic algorithms with randomized
    sequential parts land between their parents and the randomized ones."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    series = {}
    points: list[PointResult] = []
    for algo, bal in [
        ("median_of_medians", "global_exchange"),
        ("hybrid_median_of_medians", "global_exchange"),
        ("bucket_based", "none"),
        ("hybrid_bucket_based", "none"),
        ("randomized", "none"),
    ]:
        pts = run_series(algo, n, cfg["p_sweep"], distribution="random",
                         balancer=bal, trials=cfg["trials"])
        series[algo] = pts
        points.extend(pts)
    text = render_series_table(
        f"Hybrid experiment: n={n // KILO}k, random data", series
    )
    return FigureResult("hybrid", "Hybrid deterministic/randomized experiment",
                        text, points)


# ---------------------------------------------------------------- ablations

def ablation_delta(scale: str = "small") -> FigureResult:
    """Sample-size exponent sweep for fast randomized selection (the paper
    reports delta = 0.6 as the practical optimum)."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    series = {}
    points: list[PointResult] = []
    for delta in (0.4, 0.5, 0.6, 0.7, 0.8):
        pts = run_series(
            "fast_randomized", n, cfg["p_sweep"], distribution="random",
            balancer="none", trials=cfg["trials"],
            fast_params=FastRandomizedParams(delta=delta),
        )
        series[f"delta={delta}"] = pts
        points.extend(pts)
    text = render_series_table(
        f"Ablation: fast randomized sample exponent, n={n // KILO}k", series
    )
    return FigureResult("ablation-delta", "Sample exponent ablation", text,
                        points)


def ablation_partition(scale: str = "small") -> FigureResult:
    """3-way vs 2-way partitioning on duplicate-heavy inputs: iteration
    counts stay bounded under the 3-way rule (DESIGN.md deviation #1)."""
    cfg = _scale(scale)
    n = min(cfg["n_big"], 512 * KILO)
    rows = []
    points: list[PointResult] = []
    for dist in ("few_distinct", "all_equal", "zipf", "random"):
        pt = run_point("randomized", n, 8, distribution=dist, balancer="none")
        points.append(pt)
        rows.append(
            f"  {dist:>14s}: iterations={pt.iterations:5.1f}  "
            f"simulated={pt.simulated_time * 1e3:9.2f} ms"
        )
    text = (
        f"== Ablation: duplicate-heavy inputs, randomized selection, "
        f"n={n // KILO}k, p=8 ==\n"
        "3-way partitioning terminates in O(log n) iterations on every\n"
        "distribution; the paper's 2-way (<=, >) rule livelocks once all\n"
        "live keys equal the pivot (all_equal would never terminate).\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("ablation-partition", "Duplicate termination ablation",
                        text, points)


def multiselect(scale: str = "small") -> FigureResult:
    """Single-pass multi-rank selection: one ``multi_select`` launch over
    ``q`` evenly spaced quantile ranks versus ``q`` independent ``select``
    launches (the pre-batching ``quantiles()`` behaviour). The batched path
    scans each surviving key once per contraction level instead of once
    per target, so its advantage grows with ``q``."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized", "bucket_based"):
        for p in cfg["bar_p_sweep"]:
            for q in (3, 5, 9):
                batched, repeated = run_multiselect_point(
                    algo, n, p, q, distribution="random", balancer="none",
                    trials=cfg["trials"],
                )
                points.extend([batched, repeated])
                speedup = (
                    repeated.simulated_time / batched.simulated_time
                    if batched.simulated_time else float("inf")
                )
                rows.append(
                    f"  {algo:>16s} p={p:<3d} q={q:<2d} "
                    f"batched={batched.simulated_time * 1e3:9.2f} ms  "
                    f"repeated={repeated.simulated_time * 1e3:9.2f} ms  "
                    f"speedup={speedup:5.2f}x"
                )
    text = (
        f"== Multi-rank selection: one launch vs q launches, "
        f"n={n // KILO}k, random data ==\n"
        "multi_select answers every rank in ONE contraction (interval\n"
        "forking + batched endgame); 'repeated' pays one full contraction\n"
        "per rank, which is what quantiles() used to cost.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("multiselect", "Single-pass multi-rank selection",
                        text, points)


def session(scale: str = "small") -> FigureResult:
    """The serving layer: a cached ``Session`` flush coalescing ``q``
    same-array rank queries into ONE SPMD launch, versus ``q`` independent
    one-shot selects, plus a cache replay of the same ranks (zero
    launches). The launch counts come from the SPMD runtime's own
    counter, not from the session's bookkeeping."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"]:
            for q in (3, 5, 9):
                pt = run_session_point(
                    algo, n, p, q, distribution="random", balancer="none",
                    trials=cfg["trials"],
                )
                points.extend(pt.as_points())
                rows.append(
                    f"  {algo:>16s} p={p:<3d} q={q:<2d} "
                    f"flush={pt.flush_simulated * 1e3:9.2f} ms "
                    f"({pt.flush_launches:.0f} launch)  "
                    f"independent={pt.independent_simulated * 1e3:9.2f} ms  "
                    f"speedup={pt.speedup:5.2f}x  "
                    f"replay={pt.replay_launches:.0f} launches "
                    f"({pt.replay_hits:.0f} cache hits)"
                )
    text = (
        f"== Session serving: coalesced flush vs independent selects, "
        f"n={n // KILO}k, random data ==\n"
        "A Session flush answers every queued same-array rank query with\n"
        "ONE batched SPMD launch; re-querying answered ranks is served\n"
        "from the result cache with ZERO launches.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("session", "Session coalescing and result caching",
                        text, points)


def backend(scale: str = "small") -> FigureResult:
    """Execution backends compared at fixed simulated cost: the same
    launch (same data, same seed) on the ``serial``, ``threaded`` and
    ``process`` backends. Values and simulated seconds must agree exactly
    — the algorithms are machine-independent and every backend charges
    the same collective costs — so the only thing that moves is the wall
    clock of the simulation itself (``process`` escapes the GIL on
    multi-core hosts; ``serial`` has no scheduling overhead at small p)."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"][:2]:
            pt = run_backend_point(
                algo, n, p, distribution="random",
                trials=max(cfg["trials"], 1),
            )
            points.extend(pt.as_points())
            agree = "ok" if (pt.values_agree and pt.simulated_times_agree) \
                else "MISMATCH"
            walls = "  ".join(
                f"{be}={pt.wall_times[be] * 1e3:8.1f} ms" for be in pt.backends
            )
            rows.append(
                f"  {algo:>16s} p={p:<3d} sim="
                f"{pt.simulated_times['threaded'] * 1e3:8.2f} ms [{agree}]  "
                f"{walls}  process-vs-threaded={pt.speedup():4.2f}x"
            )
    text = (
        f"== Execution backends at fixed simulated cost, n={n // KILO}k, "
        "random data ==\n"
        "Same launch on serial / threaded / process: identical values and\n"
        "simulated seconds (bit-for-bit), different wall clock. Wall times\n"
        "are best-of-trials of the whole simulation.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("backend", "Execution backend comparison", text,
                        points)


def stream(scale: str = "small") -> FigureResult:
    """The streaming subsystem: ingest a workload as appended batches,
    then answer ``q`` windowed quantile ranks with the sketch-prefiltered
    exact path (``SelectionPlan(prefilter="sketch")`` over a
    ``StreamingArray``'s ingest-time sketches) versus the plain batched
    contraction. Values are asserted bit-identical; what moves is the
    simulated time — the pre-filter localises every rank to the sketch's
    candidate interval, so the contraction grinds a few percent of the
    keys — plus the zero-launch replay on re-query."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"]:
            for q in (1, 3, 9):
                pt = run_stream_point(
                    algo, n, p, q=q, distribution="random",
                    trials=cfg["trials"],
                )
                points.extend(pt.as_points())
                rows.append(
                    f"  {algo:>16s} p={p:<3d} q={q:<2d} "
                    f"prefiltered={pt.prefiltered_simulated * 1e3:9.2f} ms  "
                    f"plain={pt.plain_simulated * 1e3:9.2f} ms  "
                    f"speedup={pt.speedup:5.2f}x  "
                    f"survivors={pt.survivor_fraction * 100:5.2f}%  "
                    f"rounds_saved~{pt.rounds_saved:.0f}  "
                    f"replay={pt.replay_launches:.0f} launches"
                )
    text = (
        f"== Streaming selection: sketch-prefiltered vs plain, "
        f"n={n // KILO}k ingested as batches, random data ==\n"
        "A StreamingArray's ingest-time sketches localise every target\n"
        "rank to a narrow key interval; the exact contraction then grinds\n"
        "only the survivors. Answers are bit-identical to the plain path.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("stream", "Streaming sketch-prefiltered selection",
                        text, points)


def topology(scale: str = "small") -> FigureResult:
    """Machine shapes compared at fixed (n, p): the same launch — same
    data, same seed, bit-identical values — lowered onto the crossbar,
    binomial-tree, hypercube and two-level topologies. Two prices per
    shape: the flat CM5 model (uniform links; the shapes differ only
    through their round schedules) and a hierarchical model with slow
    inter-cluster links (``cm5_two_level``), which only the two-level
    shape's inter-cluster rounds can feel."""
    cfg = _scale(scale)
    n = min(cfg["n_big"], 512 * KILO)
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"][:3]:
            pt = run_topology_point(
                algo, n, p, distribution="random", trials=1,
            )
            points.extend(pt.as_points())
            agree = "ok" if pt.values_agree else "VALUES MISMATCH"
            flat = "  ".join(
                f"{t}={pt.simulated_times[t] * 1e3:8.2f} ms"
                for t in pt.topologies
            )
            rows.append(
                f"  {algo:>16s} p={p:<3d} [{agree}]  {flat}  "
                f"two-level/hier={pt.hierarchical_times['two-level'] * 1e3:8.2f} ms "
                f"({pt.slowdown('two-level', hierarchical=True):4.2f}x crossbar)"
            )
    text = (
        f"== Machine shapes at fixed simulated workload, n={n // KILO}k, "
        "random data ==\n"
        "The same launch on four topologies: values are bit-identical\n"
        "(collectives exchange the same payloads whatever shape prices\n"
        "them); simulated time follows each shape's round schedules, and\n"
        "slow inter-cluster links only hurt the two-level machine.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("topology", "Machine shape comparison", text, points)


def pool(scale: str = "small") -> FigureResult:
    """Repeated-launch throughput: the Session workload (many selections
    over the same distributed array) on the ``threaded``, ``process`` and
    persistent ``pool`` backends. ``process`` pays fork + shard pickling
    per launch; ``pool`` forks once, pins the shards in shared memory and
    serves every later launch over warm workers — the fork-count column is
    the receipt. Values and summed simulated seconds must agree exactly."""
    cfg = _scale(scale)
    n = cfg["n_big"]
    launches = 8
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"][:2]:
            pt = run_pool_point(
                algo, n, p, distribution="random", launches=launches,
                trials=max(cfg["trials"], 1),
            )
            points.extend(pt.as_points())
            agree = "ok" if (pt.values_agree and pt.simulated_times_agree) \
                else "MISMATCH"
            walls = "  ".join(
                f"{be}={pt.wall_times[be] * 1e3:8.1f} ms"
                f"/{pt.fork_counts[be]}f"
                for be in pt.backends
            )
            rows.append(
                f"  {algo:>16s} p={p:<3d} {pt.launches} launches [{agree}]  "
                f"{walls}  pool-vs-process={pt.speedup():4.2f}x"
            )
    text = (
        f"== Repeated-launch throughput: persistent pool vs per-launch "
        f"backends, n={n // KILO}k, random data ==\n"
        f"{launches} selections over one array per backend (whole-sequence\n"
        "wall, best-of-trials; Nf = tracked spawn events — only the pool\n"
        "counts forks, and its receipt is ONE for the whole sequence,\n"
        "while 'process' re-forks every rank on every launch untracked.\n"
        "Values and simulated seconds stay bit-identical throughout.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("pool", "Persistent pool repeated-launch throughput",
                        text, points)


def serve(scale: str = "small") -> FigureResult:
    """The multi-tenant serving tier: a mixed select/quantile/multi-rank
    trace from several tenants replayed through a coalescing
    :class:`~repro.serve.SelectionService` at growing client
    concurrencies, versus the sequential query-at-a-time front door it
    replaces. Answers are asserted bit-identical; what moves is wall
    throughput (concurrent queries share batched launches, repeats hit
    the result cache) — and the p50/p99 columns are read from the
    service's own latency QuantileSketch."""
    cfg = _scale(scale)
    n = min(cfg["n_big"], 128 * KILO)
    queries = 32 if scale == "small" else 64
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"][:2]:
            pt = run_serve_point(
                algo, n, p, queries=queries,
                concurrency=(4, 16), trials=max(cfg["trials"], 1),
            )
            points.extend(pt.as_points())
            agree = "ok" if pt.answers_agree else "VALUES MISMATCH"
            percs = "  ".join(
                f"c={c}: {pt.qps(c):6.1f} q/s ({pt.speedup(c):4.2f}x, "
                f"{pt.launches[c]} launches, "
                f"p99={pt.p99s[c] * 1e3:6.1f} ms)"
                for c in pt.concurrency
            )
            rows.append(
                f"  {algo:>16s} p={p:<3d} [{agree}]  "
                f"baseline={pt.baseline_qps:6.1f} q/s "
                f"({pt.baseline_launches} launches)  {percs}"
            )
    text = (
        f"== Multi-tenant serving tier: coalescing service vs "
        f"query-at-a-time, n={n // KILO}k, {queries} queries, "
        "4 tenants ==\n"
        "Closed-loop clients replay one mixed trace through a\n"
        "SelectionService; concurrent same-array queries share batched\n"
        "SPMD launches and repeated ranks hit the result cache, so\n"
        "throughput grows with concurrency while query-at-a-time pays\n"
        "one launch per query. p50/p99 are the service's own sketch.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("serve", "Multi-tenant serving tier throughput",
                        text, points)


def obs(scale: str = "small") -> FigureResult:
    """Observability overhead: the identical selection workload with
    capture off versus fully on (span capture active + per-launch tracing
    forced). Values and simulated seconds must be bit-identical — the obs
    contract is that measurement never perturbs the experiment — and the
    ON arm's span capture must export a valid Chrome trace-event document.
    What's paid is wall clock, reported as the overhead column."""
    cfg = _scale(scale)
    n = min(cfg["n_big"], 256 * KILO)
    rows: list[str] = []
    points: list[PointResult] = []
    for algo in ("fast_randomized", "randomized"):
        for p in cfg["bar_p_sweep"][:2]:
            pt = run_obs_point(
                algo, n, p, distribution="random", launches=4,
                trials=max(cfg["trials"], 1),
            )
            for arm, wall in (("off", pt.wall_off), ("on", pt.wall_on)):
                points.append(PointResult(
                    algorithm=f"{algo}@obs-{arm}", balancer="none",
                    distribution="random", n=n, p=p,
                    simulated_time=sum(s for _, s in pt.answers_off),
                    balance_time=0.0, wall_time=wall,
                    iterations=float(pt.spans if arm == "on" else 0),
                    trials=pt.trials,
                ))
            agree = "ok" if pt.bit_identical else "MISMATCH"
            chrome = "valid" if pt.chrome_valid else "INVALID"
            rows.append(
                f"  {algo:>16s} p={p:<3d} [{agree}]  "
                f"off={pt.wall_off * 1e3:8.1f} ms  "
                f"on={pt.wall_on * 1e3:8.1f} ms  "
                f"overhead={pt.overhead * 100:+5.1f}%  "
                f"{pt.spans} spans -> {pt.chrome_events} events ({chrome})"
            )
    text = (
        f"== Observability overhead: capture off vs on, n={n // KILO}k, "
        "random data ==\n"
        "Identical launch sequences; the ON arm runs under an active span\n"
        "capture with per-launch tracing forced (the heaviest capture\n"
        "configuration). Values and simulated seconds are asserted\n"
        "bit-identical; the exported Chrome trace is schema-validated.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("obs", "Observability capture overhead", text, points)


def planner(scale: str = "small") -> FigureResult:
    """Query planner: auto-tuned plans vs every static plan on a
    (n, p, distribution) grid. Each cell runs the four closed-form
    algorithms as explicit plans (feeding a fresh residual store through
    the ordinary launch path), then ``algorithm="auto"`` over the same
    query — the gates assert auto is never slower than the default plan
    and beats the worst static plan, that planning itself costs <1 ms,
    and that residual calibration shrinks the median predicted-vs-actual
    relative error."""
    cfg = _scale(scale)
    trials = max(2, cfg["trials"] + 1)
    rows: list[str] = []
    points = []
    for distribution in ("random", "sorted"):
        for n in cfg["n_list"]:
            for p in cfg["bar_p_sweep"][:3]:
                pt = run_planner_point(
                    n, p, distribution=distribution, trials=trials,
                )
                points.append(pt)
                match = "ok" if pt.value_match else "VALUES MISMATCH"
                rows.append(
                    f"  n={n // KILO:>5d}k p={p:<3d} {distribution:<6s} "
                    f"[{match}]  auto={pt.chosen_algorithm:<17s} "
                    f"{pt.auto_simulated * 1e3:8.2f} ms  "
                    f"default x{pt.speedup_vs_default:5.2f}  "
                    f"worst x{pt.speedup_vs_worst:6.2f}  "
                    f"plan={pt.overhead_s * 1e6:6.1f} us  "
                    f"err {pt.median_rel_err(False) * 100:5.1f}% -> "
                    f"{pt.median_rel_err(True) * 100:5.2f}%"
                )
    text = (
        "== Cost-model-driven query planner: auto vs static plans ==\n"
        "Per cell: four static closed-form plans run first (calibrating\n"
        "the residual store through the normal launch path), then\n"
        "algorithm='auto' plans with the learned corrections. Speedups\n"
        "are medians over trials; err columns are the median\n"
        "predicted-vs-actual relative error before -> after calibration.\n"
        + "\n".join(rows) + "\n"
    )
    return FigureResult("planner", "Query planner: auto vs static plans",
                        text, points)


EXPERIMENTS: dict[str, Callable[[str], FigureResult]] = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "hybrid": hybrid,
    "ablation-delta": ablation_delta,
    "ablation-partition": ablation_partition,
    "multiselect": multiselect,
    "obs": obs,
    "planner": planner,
    "session": session,
    "backend": backend,
    "pool": pool,
    "serve": serve,
    "stream": stream,
    "topology": topology,
}


def run_experiment(exp_id: str, scale: str = "small") -> FigureResult:
    """Run one experiment by id (tables live in :mod:`repro.bench.tables`,
    the claims checklist in :mod:`repro.bench.claims`)."""
    if exp_id in ("table1", "table2"):
        from .tables import table1, table2

        return table1(scale) if exp_id == "table1" else table2(scale)
    if exp_id == "claims":
        from .claims import run_claims

        return run_claims(scale)
    try:
        runner = EXPERIMENTS[exp_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {exp_id!r}; options: "
            f"{sorted(EXPERIMENTS) + ['table1', 'table2', 'claims']}"
        ) from None
    return runner(scale)
