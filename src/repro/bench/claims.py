"""Executable claims checklist: the paper's Section 5 conclusions as code.

``python -m repro.bench claims`` evaluates each qualitative claim of the
paper at the grid points EXPERIMENTS.md documents and prints a verdict
table. This centralises what the per-figure benches pin piecemeal; it is
the one-command answer to "does the reproduction still hold?".

Claims needing the paper's headline point (n=2M, p=32) take a few minutes;
``quick=True`` (the CLI's default scale != paper) shrinks n while keeping
each claim in its valid regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..machine.cost_model import cm5_fast_network
from .figures import FigureResult
from .harness import KILO, run_point

__all__ = ["run_claims", "Claim", "CLAIMS"]


@dataclass
class Claim:
    """One paper claim with an executable check returning (ok, evidence)."""

    cid: str
    text: str
    check: Callable[[bool], tuple[bool, str]]


def _headline(quick: bool) -> tuple[int, int, int]:
    """(n, p, trials) for claims that live at the paper's headline point."""
    return (512 * KILO, 16, 2) if quick else (2048 * KILO, 32, 3)


def _c_order_of_magnitude(quick: bool):
    n, p, t = _headline(quick)
    mom = run_point("median_of_medians", n, p, balancer="global_exchange",
                    trials=max(1, t - 1))
    bucket = run_point("bucket_based", n, p, balancer="none",
                       trials=max(1, t - 1))
    rnd = run_point("randomized", n, p, balancer="none", trials=t)
    mom_x = mom.simulated_time / rnd.simulated_time
    b_x = bucket.simulated_time / rnd.simulated_time
    ok = mom_x > 8 and b_x > 4 and bucket.simulated_time < mom.simulated_time
    return ok, (f"MoM/randomized = {mom_x:.1f}x, bucket/randomized = "
                f"{b_x:.1f}x (n={n // KILO}k, p={p})")


def _c_crossover(quick: bool):
    n_small = 128 * KILO
    n_big = 512 * KILO if quick else 2048 * KILO
    fast_small = run_point("fast_randomized", n_small, 64, trials=2)
    rnd_small = run_point("randomized", n_small, 64, trials=2)
    fast_big = run_point("fast_randomized", n_big, 4, trials=2)
    rnd_big = run_point("randomized", n_big, 4, trials=2)
    ok = (rnd_small.simulated_time < fast_small.simulated_time
          and fast_big.simulated_time < rnd_big.simulated_time)
    return ok, (f"large p (p=64, n=128k): randomized wins "
                f"({rnd_small.simulated_time * 1e3:.0f} vs "
                f"{fast_small.simulated_time * 1e3:.0f} ms); large n "
                f"(n={n_big // KILO}k, p=4): fast wins "
                f"({fast_big.simulated_time * 1e3:.0f} vs "
                f"{rnd_big.simulated_time * 1e3:.0f} ms)")


def _c_lb_never_helps_randomized_random(quick: bool):
    n, p = (256 * KILO, 16)
    base = run_point("randomized", n, p, balancer="none", trials=3)
    worst = min(
        run_point("randomized", n, p, balancer=s, trials=3).simulated_time
        for s in ("modified_omlb", "dimension_exchange", "global_exchange")
    )
    ok = worst > base.simulated_time
    return ok, (f"best balanced {worst * 1e3:.1f} ms vs none "
                f"{base.simulated_time * 1e3:.1f} ms (n=256k, p=16)")


def _c_lb_unprofitable_randomized_sorted(quick: bool):
    n, p, t = _headline(quick)
    base = run_point("randomized", n, p, distribution="sorted",
                     balancer="none", trials=t)
    best = min(
        run_point("randomized", n, p, distribution="sorted", balancer=s,
                  trials=t).simulated_time
        for s in ("modified_omlb", "global_exchange")
    )
    ok = best > 0.95 * base.simulated_time
    return ok, (f"best balanced {best * 1e3:.0f} ms vs none "
                f"{base.simulated_time * 1e3:.0f} ms")


def _c_sorted_penalty(quick: bool):
    n, p, t = _headline(quick)
    srt = run_point("randomized", n, p, distribution="sorted",
                    balancer="none", trials=t)
    rnd = run_point("randomized", n, p, distribution="random",
                    balancer="none", trials=t)
    ratio = srt.simulated_time / rnd.simulated_time
    return 1.4 < ratio < 4.0, f"sorted/random = {ratio:.2f}x (paper: 2-2.5x)"


def _c_fast_low_variance(quick: bool):
    n, p, t = _headline(quick)
    srt = run_point("fast_randomized", n, p, distribution="sorted",
                    balancer="none", trials=t)
    rnd = run_point("fast_randomized", n, p, distribution="random",
                    balancer="none", trials=t)
    f_pen = srt.simulated_time / rnd.simulated_time
    r_pen_ok, r_detail = _c_sorted_penalty(quick)
    return f_pen < 1.9, f"fast sorted/random = {f_pen:.2f}x ({r_detail})"


def _c_hybrid_between(quick: bool):
    n, p, _ = _headline(quick)
    mom = run_point("median_of_medians", n, p, balancer="global_exchange")
    hyb = run_point("hybrid_median_of_medians", n, p,
                    balancer="global_exchange")
    rnd = run_point("randomized", n, p, balancer="none", trials=2)
    ok = rnd.simulated_time < hyb.simulated_time < mom.simulated_time
    return ok, (f"randomized {rnd.simulated_time * 1e3:.0f} < hybrid "
                f"{hyb.simulated_time * 1e3:.0f} < MoM "
                f"{mom.simulated_time * 1e3:.0f} ms")


def _c_fast_balances_less(quick: bool):
    n, p, t = _headline(quick)
    fast = run_point("fast_randomized", n, p, distribution="sorted",
                     balancer="global_exchange", trials=t)
    rnd = run_point("randomized", n, p, distribution="sorted",
                    balancer="global_exchange", trials=t)
    ok = fast.balance_time < rnd.balance_time and fast.iterations < rnd.iterations
    return ok, (f"balance time {fast.balance_time * 1e3:.0f} vs "
                f"{rnd.balance_time * 1e3:.0f} ms; invocations "
                f"{fast.iterations:.0f} vs {rnd.iterations:.0f}")


def _c_d1_fastnet(quick: bool):
    model = cm5_fast_network()
    n, p = (512 * KILO, 16)
    base = run_point("fast_randomized", n, p, distribution="sorted",
                     balancer="none", cost_model=model, trials=3)
    bal = run_point("fast_randomized", n, p, distribution="sorted",
                    balancer="modified_omlb", cost_model=model, trials=3)
    ok = bal.simulated_time < base.simulated_time
    return ok, (f"[cm5_fast_network] momlb {bal.simulated_time * 1e3:.0f} ms"
                f" vs none {base.simulated_time * 1e3:.0f} ms")


def _c_selection_beats_sort(quick: bool):
    n, p = (256 * KILO, 8)
    srt = run_point("sort_based", n, p, trials=2)
    fast = run_point("fast_randomized", n, p, trials=2)
    ratio = srt.simulated_time / fast.simulated_time
    return ratio > 3.0, f"full sort + index = {ratio:.1f}x fast randomized"


CLAIMS: list[Claim] = [
    Claim("C1", "randomized algorithms beat deterministic by an order of "
                "magnitude; bucket-based beats median of medians",
          _c_order_of_magnitude),
    Claim("C2", "crossover: large n favours fast randomized, large p "
                "favours randomized", _c_crossover),
    Claim("C3", "load balancing never helps randomized selection on random "
                "data", _c_lb_never_helps_randomized_random),
    Claim("C4", "load balancing does not pay for randomized selection on "
                "sorted data", _c_lb_unprofitable_randomized_sorted),
    Claim("C5", "randomized selection ~2x slower on sorted vs random data",
          _c_sorted_penalty),
    Claim("C6", "fast randomized has low variance across input orders",
          _c_fast_low_variance),
    Claim("C7", "hybrids sit between deterministic parents and randomized",
          _c_hybrid_between),
    Claim("C8", "fast randomized spends much less time balancing "
                "(O(log log n) vs O(log n) invocations)",
          _c_fast_balances_less),
    Claim("D1", "balancing helps fast randomized on sorted data "
                "(reproduces under cm5_fast_network; see EXPERIMENTS.md)",
          _c_d1_fastnet),
    Claim("B1", "dedicated selection beats sort-then-index", _c_selection_beats_sort),
]


def run_claims(scale: str = "small") -> FigureResult:
    """Evaluate every claim; quick grid unless ``scale == 'paper'``."""
    quick = scale != "paper"
    lines = [f"== Paper claims checklist (grid: "
             f"{'quick' if quick else 'paper headline'}) =="]
    all_ok = True
    for claim in CLAIMS:
        ok, evidence = claim.check(quick)
        all_ok &= ok
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {claim.cid}: {claim.text}")
        lines.append(f"         {evidence}")
    lines.append(f"\n  overall: {'ALL CLAIMS HOLD' if all_ok else 'SEE FAILURES'}")
    return FigureResult("claims", "Paper claims checklist",
                        "\n".join(lines) + "\n", [])
