"""Mergeable per-rank quantile sketch: a deterministic ε-approximate rank
summary with *guaranteed* bracketing bounds.

The streaming subsystem needs one small object per processor that (a) can
be built incrementally as batches arrive (``update``), (b) combines across
processors in ONE Global Concatenate (``merge`` is associative and
commutative up to rank bounds), and (c) localises any global rank ``k`` to
a narrow key interval (``rank_bounds``) that *provably* contains the key of
rank ``k`` — the guarantee the sketch-accelerated exact refinement of
:mod:`repro.stream.refine` relies on.

Representation (GK/KLL-flavoured, deterministic): a sorted array of stored
``keys`` where every stored key carries integer bounds ``rmin``/``rmax``
satisfying two invariants over the summarised multiset ``M``:

* **INV1**: ``#{y in M : y <= keys[i]} >= rmin[i]``
* **INV2**: ``#{y in M : y <  keys[i]} <= rmax[i] - 1``

Construction from a batch stores every ``floor(2*eps*n)``-th order
statistic with its *exact* rank (one ``np.partition`` pass, no full sort),
so both invariants start tight. Merging shifts each side's bounds by the
other side's guaranteed below-counts (bounds add, so absolute rank
uncertainty is additive along any merge tree — no ``log p`` blow-up), and
a GK-style compaction then prunes stored keys so adjacent survivors span
at most ``2*eps*count`` rank positions. Compaction only *drops* stored
keys; it never loosens the invariants, which is why the bracketing
guarantee survives arbitrary update/merge/compress interleavings.

For a query rank ``k``, ``rank_bounds(k)`` returns the stored-key interval
``[lo, hi]`` with ``rmax(lo) <= k`` (so the k-th smallest is ``>= lo`` by
INV2) and ``rmin(hi) >= k`` (so it is ``<= hi`` by INV1). The number of
true keys strictly inside the interval is ``O(eps * count)`` — the
survivor fraction the refinement pre-filter enjoys.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ConfigurationError

__all__ = ["QuantileSketch", "merge_all"]


def _check_eps(eps: float) -> float:
    eps = float(eps)
    if not (0.0 < eps <= 0.5):
        raise ConfigurationError(
            f"sketch eps must be in (0, 0.5], got {eps!r}"
        )
    return eps


class QuantileSketch:
    """A mergeable ε-approximate rank summary of a numeric multiset.

    Parameters
    ----------
    eps:
        Target relative rank error. Stored size is ``O(1/eps)`` after
        compaction; ``rank_bounds`` intervals span ``O(eps * count)`` rank
        positions (duplicates of the boundary keys excepted).

    The class is a value object: :meth:`merge` returns a new sketch;
    :meth:`update` mutates in place (ingest convenience). Sketches are
    picklable and cross execution-backend boundaries as collective
    payloads; :meth:`__sim_words__` reports their simulated payload size
    to the collective cost model.
    """

    __slots__ = ("eps", "count", "keys", "rmin", "rmax")

    def __init__(
        self,
        eps: float = 0.01,
        keys: np.ndarray | None = None,
        rmin: np.ndarray | None = None,
        rmax: np.ndarray | None = None,
        count: int = 0,
    ):
        self.eps = _check_eps(eps)
        self.count = int(count)
        if keys is None:
            keys = np.empty(0)
            rmin = np.empty(0, dtype=np.int64)
            rmax = np.empty(0, dtype=np.int64)
        self.keys = np.asarray(keys)
        self.rmin = np.asarray(rmin, dtype=np.int64)
        self.rmax = np.asarray(rmax, dtype=np.int64)

    # ------------------------------------------------------------ building

    @classmethod
    def from_array(cls, arr: np.ndarray, eps: float = 0.01) -> "QuantileSketch":
        """Summarise one batch: every ``floor(2*eps*n)``-th order statistic
        with its exact rank (single ``np.partition`` pass, no full sort)."""
        eps = _check_eps(eps)
        arr = np.asarray(arr).ravel()
        n = int(arr.size)
        if n == 0:
            return cls(eps)
        step = max(1, int(2.0 * eps * n))
        pos = np.arange(0, n, step, dtype=np.int64)
        if pos[-1] != n - 1:
            pos = np.append(pos, n - 1)
        placed = np.partition(arr, pos)
        # Ranks are exact at construction: rmin == rmax == position + 1.
        return cls(eps, placed[pos], pos + 1, pos + 1, n)

    @classmethod
    def build_cost(cls, model, n: int, eps: float) -> float:
        """Simulated seconds of :meth:`from_array` over ``n`` keys: a
        multi-rank introselect placing ``~1/(2*eps)`` order statistics."""
        from ..kernels.select import multi_select_cost

        if n <= 0:
            return 0.0
        n_keep = max(1, int(np.ceil(n / max(1, int(2.0 * eps * n)))))
        return multi_select_cost(model, n, n_keep, "introselect")

    def update(self, batch: np.ndarray) -> "QuantileSketch":
        """Absorb one batch in place (ingest path); returns ``self``."""
        merged = self.merge(QuantileSketch.from_array(batch, self.eps))
        self.count = merged.count
        self.keys = merged.keys
        self.rmin = merged.rmin
        self.rmax = merged.rmax
        return self

    # ------------------------------------------------------------- merging

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Combine two summaries (associative/commutative up to bounds).

        Each side's bounds are shifted by the other side's guaranteed
        counts below each key, so INV1/INV2 hold over the union; rank
        uncertainties add (never multiply), whatever the merge tree.
        """
        if not isinstance(other, QuantileSketch):
            raise ConfigurationError(
                f"can only merge QuantileSketch, got {type(other).__name__}"
            )
        eps = min(self.eps, other.eps)
        if other.count == 0:
            return QuantileSketch(
                eps, self.keys.copy(), self.rmin.copy(), self.rmax.copy(),
                self.count,
            )
        if self.count == 0:
            return QuantileSketch(
                eps, other.keys.copy(), other.rmin.copy(), other.rmax.copy(),
                other.count,
            )

        def shifted(a: "QuantileSketch", b: "QuantileSketch"):
            # Lower bound on #{y in b : y <= x}: the largest stored b-key
            # <= x proves at least its own rmin keys sit at or below it.
            right = np.searchsorted(b.keys, a.keys, side="right")
            lb = np.where(right > 0, b.rmin[np.maximum(right - 1, 0)], 0)
            # Upper bound on #{y in b : y < x}: the smallest stored b-key
            # >= x caps the strict below-count at its rmax - 1.
            left = np.searchsorted(b.keys, a.keys, side="left")
            ub = np.where(
                left < b.keys.size,
                b.rmax[np.minimum(left, max(b.keys.size - 1, 0))] - 1,
                b.count,
            )
            return a.rmin + lb, a.rmax + ub

        rmin_a, rmax_a = shifted(self, other)
        rmin_b, rmax_b = shifted(other, self)
        keys = np.concatenate([self.keys, other.keys])
        rmin = np.concatenate([rmin_a, rmin_b])
        rmax = np.concatenate([rmax_a, rmax_b])
        order = np.argsort(keys, kind="stable")
        out = QuantileSketch(
            eps, keys[order], rmin[order], rmax[order],
            self.count + other.count,
        )
        out._tighten()
        out._compress()
        return out

    def _tighten(self) -> None:
        """Monotonise bounds (valid: value-count invariants are monotone in
        the key) so rank queries can binary-search them."""
        if self.keys.size == 0:
            return
        self.rmin = np.maximum.accumulate(self.rmin)
        self.rmax = np.minimum.accumulate(self.rmax[::-1])[::-1]

    def _compress(self) -> None:
        """GK-style compaction: keep the fewest stored keys such that any
        adjacent pair spans at most ``2*eps*count`` rank positions (plus
        whatever slack the data's own duplicates force). Only drops stored
        keys — INV1/INV2 are untouched."""
        m = self.keys.size
        if m <= 2:
            return
        bound = max(1, int(2.0 * self.eps * self.count))
        keep = [0]
        last = 0
        for i in range(1, m - 1):
            if self.rmax[i + 1] - self.rmin[last] > bound:
                keep.append(i)
                last = i
        keep.append(m - 1)
        idx = np.asarray(keep, dtype=np.int64)
        self.keys = self.keys[idx]
        self.rmin = self.rmin[idx]
        self.rmax = self.rmax[idx]

    # ------------------------------------------------------------- queries

    def rank_bounds(self, k: int) -> tuple:
        """Keys ``(lo, hi)`` guaranteed to bracket the k-th smallest.

        ``lo`` is the largest stored key proven to sit at or before rank
        ``k`` (INV2), ``hi`` the smallest proven to sit at or after it
        (INV1); the sketch always stores the exact min and max, so the
        bracket always exists.
        """
        k = int(k)
        if not (1 <= k <= self.count):
            raise ConfigurationError(
                f"rank k={k} out of range [1, {self.count}]"
            )
        # rmax/rmin are nondecreasing after _tighten.
        i = int(np.searchsorted(self.rmax, k, side="right")) - 1
        lo = self.keys[i] if i >= 0 else self.keys[0]
        j = int(np.searchsorted(self.rmin, k, side="left"))
        hi = self.keys[j] if j < self.keys.size else self.keys[-1]
        return lo, hi

    def rank_of(self, key) -> tuple[int, int]:
        """Guaranteed bounds on ``#{y <= key}`` (diagnostics/tests).

        Lower: the largest stored key ``<= key`` proves at least its own
        ``rmin`` values at or below it. Upper: the smallest stored key
        *strictly greater* than ``key`` caps ``#{y <= key}`` at its
        ``rmax - 1`` (``side="left"`` would pick ``key`` itself when it is
        stored and under-count its compacted duplicates).
        """
        right = int(np.searchsorted(self.keys, key, side="right"))
        lower = int(self.rmin[right - 1]) if right > 0 else 0
        upper = (
            int(self.rmax[right] - 1) if right < self.keys.size
            else self.count
        )
        return lower, max(lower, upper)

    def quantile(self, q: float):
        """ε-approximate value at quantile fraction ``q`` in ``(0, 1]``.

        Maps ``q`` to rank ``ceil(q * count)`` (the library's quantile
        convention) and returns the *upper* key of :meth:`rank_bounds` —
        conservative for tail-latency reporting (a p99 read from the
        sketch never understates the true p99 by more than the bracket).
        """
        if not (0.0 < float(q) <= 1.0):
            raise ConfigurationError(f"quantile {q!r} outside (0, 1]")
        if self.count == 0:
            raise ConfigurationError("quantile of an empty sketch")
        k = max(1, int(np.ceil(float(q) * self.count)))
        _lo, hi = self.rank_bounds(k)
        return hi

    # ---------------------------------------------------------- book-keeping

    @property
    def size(self) -> int:
        """Stored keys (the sketch's memory/payload footprint)."""
        return int(self.keys.size)

    def __len__(self) -> int:
        return self.size

    def __sim_words__(self) -> float:
        """Simulated payload words when a sketch rides a collective: three
        stored arrays plus two scalars."""
        words = self.keys.size * self.keys.itemsize / 8.0
        words += self.rmin.size + self.rmax.size  # int64: 1 word each
        return words + 2.0

    def __getstate__(self):
        return (self.eps, self.count, self.keys, self.rmin, self.rmax)

    def __setstate__(self, state):
        self.eps, self.count, self.keys, self.rmin, self.rmax = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileSketch(eps={self.eps}, count={self.count}, "
            f"stored={self.size})"
        )


def merge_all(sketches: Iterable[QuantileSketch],
              eps: float | None = None) -> QuantileSketch:
    """Left-fold merge of any number of sketches (deterministic order).

    Every rank of an SPMD launch folds the same Global Concatenate payload
    in the same order, so all ranks hold the identical merged summary.
    """
    merged: QuantileSketch | None = None
    for sk in sketches:
        merged = sk if merged is None else merged.merge(sk)
    if merged is None:
        return QuantileSketch(eps if eps is not None else 0.01)
    return merged
