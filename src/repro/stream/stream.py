""":class:`StreamingArray` — an appendable, window-aware distributed array.

The batch API answers queries over a *static* block-distributed array; a
serving system ingests continuously. A ``StreamingArray`` is a
:class:`~repro.core.array.DistributedArray` whose content arrives in
batches:

* **Round-robin placement.** ``append(batch)`` deals each new key to rank
  ``(global arrival index) mod p``, so shard sizes stay balanced within one
  key of each other forever — and, crucially, the resulting layout depends
  only on the *concatenated stream*, not on how it was chopped into
  batches: ``append(a); append(b)`` produces bit-identical shards to
  ``append(concat(a, b))`` (the streaming/batch equivalence the tests pin).
* **Incremental fingerprint.** The array's cache identity (what
  :class:`~repro.core.session.Session` keys its result cache on) updates
  in ``O(batch)`` per mutation, never ``O(n)``. Append-only streams feed
  one running SHA-1 per rank with each append's slice, so equal live
  content (however batched) gives equal fingerprints; after the first
  retirement the identity switches to chaining the live batches'
  once-computed digests (a running byte hash cannot drop a retired
  prefix). Every append/retirement changes the fingerprint, so cached
  results are invalidated *precisely*.
* **Windows.** ``window=W`` keeps the most recent ``W`` batches: sliding
  mode retires the oldest batch as each new one arrives, tumbling mode
  clears the whole window when the (W+1)-th batch starts the next one.
  Retirement drops the expired batch's keys from every shard.
* **Ingest-time sketches.** Each batch's per-rank slices are summarised by
  mergeable :class:`~repro.stream.sketch.QuantileSketch` objects on first
  use and cached per batch, so a sketch-prefiltered query
  (``SelectionPlan(prefilter="sketch")``) merges prebuilt summaries
  instead of re-scanning the shards — the append-time work amortises
  across every query of the window.

All query surfaces are inherited: fluent ``select``/``median``/
``quantiles``/``multi_select`` route through the machine's default session
with this array's append-aware fingerprint, and deferred Session futures
answer against the content at flush time.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.array import DistributedArray, Machine
from ..errors import ConfigurationError
from .sketch import QuantileSketch, merge_all

__all__ = ["StreamingArray", "WINDOW_MODES"]

#: Window semantics ``StreamingArray`` understands.
WINDOW_MODES: tuple[str, ...] = ("sliding", "tumbling")


class _Batch:
    """One append: per-rank slices + lazily-built sketches and digests."""

    __slots__ = ("batch_id", "parts", "count", "sketches", "_digests")

    def __init__(self, batch_id: int, parts: list[np.ndarray], count: int):
        self.batch_id = batch_id
        self.parts = parts
        self.count = count
        self.sketches: dict[float, list[QuantileSketch]] = {}
        self._digests: list[bytes] | None = None

    def rank_sketches(self, eps: float) -> list[QuantileSketch]:
        """Per-rank sketches of this batch's slices (built once per eps)."""
        cached = self.sketches.get(eps)
        if cached is None:
            cached = [QuantileSketch.from_array(p, eps) for p in self.parts]
            self.sketches[eps] = cached
        return cached

    def rank_digests(self) -> list[bytes]:
        """Per-rank content digests (built once, ``O(batch)``; the
        fingerprint unit of windowed streams)."""
        if self._digests is None:
            self._digests = [
                hashlib.sha1(np.ascontiguousarray(p).tobytes()).digest()
                for p in self.parts
            ]
        return self._digests

    def forget_derived(self) -> None:
        """Drop cached sketches/digests (parts were mutated in place)."""
        self.sketches.clear()
        self._digests = None


class StreamingArray(DistributedArray):
    """An appendable :class:`DistributedArray` with windowed retirement.

    Parameters
    ----------
    machine:
        The machine the stream lives on.
    dtype:
        Key dtype; fixed by the first append when omitted. Later batches
        must cast safely to it.
    window:
        Number of most-recent batches retained (``None`` = unbounded).
    window_mode:
        ``"sliding"`` (retire the oldest batch per append once full) or
        ``"tumbling"`` (clear the window when a new one starts).
    """

    def __init__(
        self,
        machine: Machine,
        dtype=None,
        window: int | None = None,
        window_mode: str = "sliding",
    ):
        if window is not None and (not isinstance(window, int)
                                   or isinstance(window, bool) or window < 1):
            raise ConfigurationError(
                f"window must be a positive int or None, got {window!r}"
            )
        if window_mode not in WINDOW_MODES:
            raise ConfigurationError(
                f"unknown window_mode {window_mode!r}; "
                f"available: {sorted(WINDOW_MODES)}"
            )
        self.machine = machine
        self.window = window
        self.window_mode = window_mode
        self._dtype = np.dtype(dtype) if dtype is not None else None
        self._batches: list[_Batch] = []
        #: Total keys ever appended (the round-robin dealing position —
        #: survives retirement so layout stays a pure function of the
        #: arrival stream).
        self.appended_total = 0
        self.batches_appended = 0
        self.batches_retired = 0
        #: Monotone mutation counter (append or retirement).
        self.generation = 0
        self._next_batch_id = 0
        self._rank_hashers: list | None = None
        #: Set by the first retirement: the fingerprint then chains live
        #: per-batch digests instead of the running per-rank byte hashes
        #: (see :attr:`fingerprint`).
        self._windowed = False
        self._shards_cache: list[np.ndarray] | None = None
        self._fingerprint: str | None = None
        self._sketch_cache: dict = {}

    # ------------------------------------------------------------- ingest

    def append(self, batch) -> int:
        """Ingest one batch; returns its batch id.

        Keys are dealt round-robin by global arrival index, the per-rank
        hash chain advances by exactly this batch's bytes, and window
        retirement runs according to ``window_mode``.
        """
        batch = np.asarray(batch)
        if batch.ndim != 1:
            raise ConfigurationError(
                f"append expects a 1-D batch, got ndim={batch.ndim}"
            )
        if self._dtype is None:
            self._dtype = batch.dtype
        elif batch.dtype != self._dtype:
            if not np.can_cast(batch.dtype, self._dtype, casting="safe"):
                raise ConfigurationError(
                    f"batch dtype {batch.dtype} does not cast safely to "
                    f"stream dtype {self._dtype}"
                )
            batch = batch.astype(self._dtype)
        if (self.window is not None and self.window_mode == "tumbling"
                and len(self._batches) >= self.window):
            # The window is full: this batch starts the next window.
            while self._batches:
                self._retire_oldest()
        p = self.machine.n_procs
        base = self.appended_total
        parts = [batch[(r - base) % p:: p].copy() for r in range(p)]
        if not self._windowed:
            # Advance the per-rank hash chains by exactly this batch's
            # bytes (materialise the chains BEFORE registering the batch,
            # or a lazy rebuild would include it and double-hash). Once a
            # retirement has switched the array to digest-chain mode, the
            # batch digest is the fingerprint unit instead.
            hashers = self._hashers()
            for hasher, part in zip(hashers, parts):
                hasher.update(np.ascontiguousarray(part).tobytes())
        bid = self._next_batch_id
        self._next_batch_id += 1
        self._batches.append(_Batch(bid, parts, int(batch.size)))
        self.appended_total += int(batch.size)
        self.batches_appended += 1
        self._bump()
        if self.window is not None and self.window_mode == "sliding":
            while len(self._batches) > self.window:
                self._retire_oldest()
        return bid

    def retire(self, batch_id: int) -> None:
        """Explicitly expire one live batch (manual retention policies)."""
        for i, b in enumerate(self._batches):
            if b.batch_id == batch_id:
                del self._batches[i]
                self._mark_retired()
                return
        raise ConfigurationError(
            f"batch {batch_id} is not live; live ids: {self.live_batch_ids}"
        )

    def _retire_oldest(self) -> None:
        self._batches.pop(0)
        self._mark_retired()

    def _mark_retired(self) -> None:
        """Switch (permanently) to digest-chain fingerprints: a running
        byte hash cannot drop a retired prefix, and rebuilding it per
        retirement would cost ``O(window)`` on every steady-state append.
        Chaining the live batches' once-computed digests keeps retirement
        ``O(live batches)``; batch-boundary invariance only ever held
        before the first retirement anyway (retirement changes how a fresh
        stream of the same content would have been dealt)."""
        self.batches_retired += 1
        self._windowed = True
        self._rank_hashers = None
        self._bump()

    def _bump(self) -> None:
        self.generation += 1
        self._shards_cache = None
        self._fingerprint = None
        self._sketch_cache.clear()

    def _hashers(self) -> list:
        if self._rank_hashers is None:
            self._rank_hashers = [
                hashlib.sha1() for _ in range(self.machine.n_procs)
            ]
            for b in self._batches:
                for hasher, part in zip(self._rank_hashers, b.parts):
                    hasher.update(np.ascontiguousarray(part).tobytes())
        return self._rank_hashers

    # ------------------------------------------------------------ identity

    @property
    def fingerprint(self) -> str:
        """Append-aware cache identity, ``O(batch)`` per mutation.

        Append-only streams hash the per-rank byte streams, so equal live
        content gives equal fingerprints regardless of how it was chopped
        into batches. After the first retirement the identity chains the
        live batches' digests instead (computed once per batch); every
        mutation — append or retirement — changes the fingerprint, which
        is what makes Session cache invalidation precise.
        """
        if self._fingerprint is None:
            h = hashlib.sha1()
            h.update(f"stream:{self.machine.n_procs}:{self._dtype}".encode())
            if self._windowed:
                h.update(b"windowed")
                for b in self._batches:
                    for digest in b.rank_digests():
                        h.update(digest)
            else:
                for hasher in self._hashers():
                    h.update(hasher.digest())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def invalidate(self) -> None:
        """Forget memoised identity/layout/summary state (defensive parity
        with :meth:`DistributedArray.invalidate` for callers that mutated
        batch contents in place; normal mutation paths need only
        :meth:`_bump`)."""
        self._rank_hashers = None
        for b in self._batches:
            b.forget_derived()
        self._bump()

    # -------------------------------------------------------------- layout

    @property
    def shards(self) -> list[np.ndarray]:
        """The live window materialised per rank (cached until mutation)."""
        if self._shards_cache is None:
            p = self.machine.n_procs
            dtype = self._dtype if self._dtype is not None else np.float64
            per_rank: list[list[np.ndarray]] = [[] for _ in range(p)]
            for b in self._batches:
                for r in range(p):
                    if b.parts[r].size:
                        per_rank[r].append(b.parts[r])
            self._shards_cache = [
                np.concatenate(parts) if parts else np.empty(0, dtype=dtype)
                for parts in per_rank
            ]
        return self._shards_cache

    @property
    def live_batch_ids(self) -> list[int]:
        return [b.batch_id for b in self._batches]

    @property
    def live_batches(self) -> int:
        return len(self._batches)

    # ------------------------------------------------------------ sketches

    def local_sketches(self, eps: float) -> list[QuantileSketch]:
        """Per-rank sketches of the live window at accuracy ``eps``.

        Built by merging the cached per-batch sketches in arrival order
        (deterministic), memoised until the next append/retirement. This
        is the ingest-time amortisation the sketch-prefiltered query path
        rides: no query-launch work is spent summarising the shards.
        """
        eps = float(eps)
        cached = self._sketch_cache.get(eps)
        if cached is None:
            per_batch = [b.rank_sketches(eps) for b in self._batches]
            cached = [
                merge_all((ranks[r] for ranks in per_batch), eps=eps)
                for r in range(self.machine.n_procs)
            ]
            self._sketch_cache[eps] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingArray(n={self.n}, p={self.p}, "
            f"batches={self.live_batches}, window={self.window}, "
            f"mode={self.window_mode}, generation={self.generation})"
        )
