"""The streaming selection subsystem: ingest-then-query workloads.

Three pieces, layered over the batch core:

* :mod:`repro.stream.sketch` — :class:`QuantileSketch`, a mergeable
  deterministic ε-approximate rank summary with *guaranteed* bracketing
  bounds (``update`` / ``merge`` / ``rank_bounds``);
* :mod:`repro.stream.stream` — :class:`StreamingArray`, an appendable
  :class:`~repro.core.array.DistributedArray`: round-robin batch
  placement, an incremental append-aware fingerprint (precise Session
  cache invalidation), sliding/tumbling windows with batch retirement,
  and ingest-time per-rank sketches;
* :mod:`repro.stream.refine` — sketch-accelerated **exact** selection:
  pre-filter every shard to the candidate key interval the sketch proves
  must hold the target ranks, then run the existing contraction engine on
  the survivors. Opt in per plan with
  ``SelectionPlan(prefilter="sketch")``; answers are bit-identical to the
  plain path.
"""

from .refine import execute_sketch_multi_select, execute_sketch_select
from .sketch import QuantileSketch, merge_all
from .stream import WINDOW_MODES, StreamingArray

__all__ = [
    "QuantileSketch",
    "StreamingArray",
    "WINDOW_MODES",
    "execute_sketch_multi_select",
    "execute_sketch_select",
    "merge_all",
]
