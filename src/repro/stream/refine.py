"""Sketch-accelerated **exact** selection: pre-filter, then contract.

The paper's contraction engine spends most of its simulated time in the
early iterations, when the live set is still the whole input — every
iteration is a full partition pass plus a round of collectives. A mergeable
quantile sketch can localise any target rank to a narrow key interval in
O(1) communication rounds (Saukas–Song-style localisation; cf. the sample
-based splitter selection of parallel multiselection by regular sampling),
after which the exact engine only grinds the tiny surviving fraction.

The launch runs in four steps, all inside ONE SPMD program so the serving
layer's one-launch accounting is untouched:

1. **Summarise.** Each rank sketches its shard
   (:meth:`QuantileSketch.from_array`, charged as a multi-rank
   introselect), unless the array is a
   :class:`~repro.stream.stream.StreamingArray` carrying prebuilt
   ingest-time sketches.
2. **Merge.** ONE Global Concatenate ships every rank's sketch everywhere;
   each rank folds them in rank order, so all ranks hold the identical
   merged summary (the sketch sizes its own payload via ``__sim_words__``).
3. **Pre-filter.** ``rank_bounds(k)`` per target, overlapping intervals
   merged; one cheap local pass over the shard (band passes for few
   intervals, a multiway partition at every distinct boundary for many)
   plus ONE Combine yields the exact global interval counts, which both
   *verify* the sketch bounds and re-base every target rank onto the
   survivor multiset. If any verification fails (never expected — the
   bounds are guaranteed — but kept as a safety valve), every rank
   deterministically falls back to the full input.
4. **Refine.** The *existing* engine — the same pivot strategies, the same
   RNG construction, the same endgame — runs on the survivors with the
   re-based ranks. Selection is exact, so the answers are bit-identical to
   a plain ``select``/``multi_select`` over the full array; the pre-filter
   only removed keys that provably cannot hold any target rank.

``execute_sketch_select`` / ``execute_sketch_multi_select`` mirror the
launch primitives of :mod:`repro.core.session` and are what
``SelectionPlan(prefilter="sketch")`` routes to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.reports import MultiSelectionReport, PrefilterStats, SelectionReport
from ..kernels.costed import CostedKernels
from .sketch import QuantileSketch, merge_all

if TYPE_CHECKING:
    from ..core.array import DistributedArray
    from ..core.plan import SelectionPlan

__all__ = [
    "execute_sketch_select",
    "execute_sketch_multi_select",
    "candidate_intervals",
]


# --------------------------------------------------------------------------
# In-launch helpers (run on every rank)
# --------------------------------------------------------------------------


def _local_sketch(ctx, K: CostedKernels, shard: np.ndarray, eps: float,
                  prebuilt: QuantileSketch | None) -> QuantileSketch:
    """This rank's summary: prebuilt (ingest-amortised) or built now."""
    if prebuilt is not None:
        return prebuilt
    ctx.charge_compute(QuantileSketch.build_cost(ctx.model, shard.size, eps))
    return QuantileSketch.from_array(shard, eps)


def _merged_sketch(ctx, K: CostedKernels,
                   local: QuantileSketch, eps: float) -> QuantileSketch:
    """All ranks' sketches combined in ONE Global Concatenate, folded in
    rank order so every rank holds the identical merged summary."""
    parts = ctx.comm.global_concat(local)
    K.scan_pass(sum(sk.size for sk in parts))
    return merge_all(parts, eps=eps)


def candidate_intervals(
    sketch: QuantileSketch, ks: Sequence[int]
) -> list[tuple[object, object, list[int]]]:
    """Disjoint candidate key intervals covering every target rank.

    One ``rank_bounds`` bracket per target, overlapping/touching brackets
    merged (``rank_bounds`` is monotone in ``k``, so one ascending sweep
    suffices; ``ks`` is sorted here so the downstream offset-based rank
    re-basing can rely on value-ordered disjoint intervals). Returns
    ``[(lo, hi, targets), ...]`` in key order.
    """
    intervals: list[list] = []
    for k in sorted(int(k) for k in ks):
        lo, hi = sketch.rank_bounds(k)
        if intervals and lo <= intervals[-1][1]:
            intervals[-1][1] = max(intervals[-1][1], hi)
            intervals[-1][2].append(k)
        else:
            intervals.append([lo, hi, [k]])
    return [(lo, hi, targets) for lo, hi, targets in intervals]


def _prefilter(ctx, K: CostedKernels, shard: np.ndarray,
               intervals: list) -> tuple:
    """Exact pre-filter: survivors + re-based ranks, or ``None`` to fall
    back.

    One local pass over the shard — a partition-band pass per interval
    when there are at most two (one full scan each beats the multiway
    pass's binary-search depth), a single multiway partition at every
    distinct interval boundary otherwise — plus ONE Combine of the
    per-interval ``(< lo, in-band)`` counts. The exact counts re-base
    every target onto the survivor multiset *and* verify the sketch
    bounds; the fallback decision is a pure function of the global
    counts, hence identical on every rank.
    """
    local_counts: list[int] = []
    survivor_parts: list[np.ndarray] = []
    if len(intervals) <= 2:
        for lo, hi, _targets in intervals:
            less, mid, _high = K.partition_band(shard, lo, hi)
            local_counts.extend((less.size, mid.size))
            survivor_parts.append(mid)
    else:
        bounds = [b for lo, hi, _t in intervals for b in (lo, hi)]
        cuts = np.unique(np.asarray(bounds))
        # partition_multiway yields 2c+1 value-ordered segments
        # alternating open ranges with equality bands: segment 2i+1 is
        # ``== cuts[i]``.
        segs = K.partition_multiway(shard, cuts)
        sizes = [s.size for s in segs]
        cum = np.concatenate([[0], np.cumsum(sizes)])
        for lo, hi, _targets in intervals:
            li = int(np.searchsorted(cuts, lo))
            hi_i = int(np.searchsorted(cuts, hi))
            first, last = 2 * li + 1, 2 * hi_i + 1  # ==lo .. ==hi
            local_counts.extend(
                (int(cum[first]), int(cum[last + 1] - cum[first]))
            )
            mids = [s for s in segs[first: last + 1] if s.size]
            survivor_parts.append(
                np.concatenate(mids) if mids else shard[:0]
            )
    totals = ctx.comm.combine(np.asarray(local_counts, dtype=np.int64))
    adjusted: list[int] = []
    offset = 0
    n_surv = 0
    for j, (_lo, _hi, targets) in enumerate(intervals):
        c_less = int(totals[2 * j])
        c_mid = int(totals[2 * j + 1])
        for k in targets:
            rebased = k - c_less
            if not (1 <= rebased <= c_mid):
                return None, None, int(sum(totals[1::2]))
            adjusted.append(offset + rebased)
        offset += c_mid
        n_surv += c_mid
    live = [s for s in survivor_parts if s.size]
    survivors = np.concatenate(live) if live else shard[:0]
    return survivors, adjusted, n_surv


def _rounds_saved(n: int, survivors: int) -> int:
    """Halving estimate of skipped contraction iterations: a pivot round
    roughly halves the live set, so landing directly on the survivor set
    skips ``~log2(n / survivors)`` full-input rounds."""
    if n <= 0 or survivors <= 0 or survivors >= n:
        return 0
    return int(np.floor(np.log2(n / survivors)))


# --------------------------------------------------------------------------
# Launch primitives (mirror core.session.execute_select / execute_multi_select)
# --------------------------------------------------------------------------


def _prebuilt_sketches(data: "DistributedArray", eps: float):
    """Ingest-time sketches when the array maintains them, else Nones."""
    sketches = getattr(data, "local_sketches", None)
    if sketches is None:
        return [None] * len(data.shards), False
    return sketches(eps), True


def execute_sketch_select(
    data: "DistributedArray", k: int, plan: "SelectionPlan"
) -> SelectionReport:
    """One sketch-prefiltered single-rank launch (exact; value
    bit-identical to :func:`repro.core.session.execute_select`).

    Resolution, validation and report assembly are the *same code* as the
    plain path (:mod:`repro.core.session` helpers); only the SPMD program
    body — summarise, merge, pre-filter, then the same algorithm entry
    point over the survivors — differs.
    """
    from ..core import session as core_session

    fn, cfg, balancer_name, extra = core_session.resolve_single(plan)
    eps = plan.sketch_eps
    prebuilt, amortised = _prebuilt_sketches(data, eps)

    def program(ctx, shard, local_sk, target_k, config):
        K = CostedKernels(ctx, kernels=config.kernels)
        merged = _merged_sketch(
            ctx, K, _local_sketch(ctx, K, shard, eps, local_sk), eps
        )
        intervals = candidate_intervals(merged, [target_k])
        survivors, adjusted, n_surv = _prefilter(ctx, K, shard, intervals)
        if survivors is None:
            value, stats = fn(ctx, shard.copy(), target_k, config, *extra)
            fallback = True
        else:
            value, stats = fn(ctx, survivors, adjusted[0], config, *extra)
            fallback = False
        stats.prefilter = _evidence(
            eps, merged, intervals, n_surv, fallback, amortised
        )
        return value, stats

    result = data.machine.run(
        program,
        rank_args=[(s, sk) for s, sk in zip(data.shards, prebuilt)],
        args=(k, cfg),
        backend=plan.backend,
        topology=plan.topology,
        trace=plan.trace,
    )
    return core_session.finish_select(data, k, plan, balancer_name, result)


def execute_sketch_multi_select(
    data: "DistributedArray", ks: Sequence[int], plan: "SelectionPlan"
) -> MultiSelectionReport:
    """One sketch-prefiltered batched launch (exact; values bit-identical
    to :func:`repro.core.session.execute_multi_select`).

    Per-target brackets merge into disjoint candidate intervals; because
    the intervals are value-ordered and disjoint, the survivor multiset's
    sorted order is the intervals in sequence, so each target's re-based
    rank is its in-interval rank plus the sizes of the intervals before it
    — ONE contraction over the union answers everything. Validation, the
    empty-set report, the per-algorithm runner and the report assembly are
    shared with the plain path (:mod:`repro.core.session` helpers).
    """
    from ..core import session as core_session

    ks = core_session.validate_ks(ks, data.n)
    cfg, balancer_name, runner = core_session.resolve_multi(plan)
    if not ks:
        return core_session.empty_multi_report(data, plan, balancer_name)
    unique_ks = sorted(set(ks))
    eps = plan.sketch_eps
    prebuilt, amortised = _prebuilt_sketches(data, eps)

    def program(ctx, shard, local_sk, ks_sorted, config):
        K = CostedKernels(ctx, kernels=config.kernels)
        merged = _merged_sketch(
            ctx, K, _local_sketch(ctx, K, shard, eps, local_sk), eps
        )
        intervals = candidate_intervals(merged, ks_sorted)
        survivors, adjusted, n_surv = _prefilter(ctx, K, shard, intervals)
        if survivors is None:
            values, stats = runner(ctx, shard.copy(), ks_sorted, config)
            fallback = True
        else:
            values, stats = runner(ctx, survivors, adjusted, config)
            fallback = False
        stats.prefilter = _evidence(
            eps, merged, intervals, n_surv, fallback, amortised
        )
        return values, stats

    result = data.machine.run(
        program,
        rank_args=[(s, sk) for s, sk in zip(data.shards, prebuilt)],
        args=(unique_ks, cfg),
        backend=plan.backend,
        topology=plan.topology,
        trace=plan.trace,
    )
    return core_session.finish_multi(
        data, ks, unique_ks, plan, balancer_name, result
    )


def _evidence(eps, merged, intervals, n_surv, fallback, prebuilt):
    """The :class:`PrefilterStats` one prefiltered launch records."""
    return PrefilterStats(
        eps=eps, sketch_size=merged.size, n=merged.count,
        survivors=merged.count if fallback else n_surv,
        intervals=len(intervals),
        rounds_saved=0 if fallback else _rounds_saved(merged.count, n_surv),
        fallback=fallback, prebuilt=prebuilt,
    )
