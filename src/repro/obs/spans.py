"""Hierarchical spans: one tree per traced workload.

A :class:`Span` is one timed region of work — a query, a session flush, an
SPMD launch, a contraction iteration, a collective, one schedule round —
carrying *both* time axes this repository cares about:

* the **wall clock** (``t0``/``t1``, host seconds since the recorder's
  epoch) — what the operator pays;
* the **simulated clock** (``sim_t0``/``sim_t1``, the machine model's
  seconds) — what the paper's analysis prices.

Spans form a tree via ``parent_id``. Driver-side spans (query, flush,
launch) are opened/closed with :meth:`SpanRecorder.span` as a context
manager — nesting follows a thread-local stack, so the hierarchy falls out
of ordinary call structure. In-launch evidence (collectives, rounds,
contraction iterations) is *derived* after the launch returns — from the
launch's :class:`~repro.machine.trace.TraceEvent` log and the engine's
:class:`~repro.selection.base.IterationRecord` sim checkpoints — via
:meth:`SpanRecorder.add` / :func:`spans_from_trace`. Deriving on the driver
side is what keeps the disabled path bit-identical: the SPMD program never
sees a span object, so values, RNG streams and simulated times cannot be
perturbed.

Successive launches share one process-wide simulated clock that restarts at
zero; :meth:`SpanRecorder.advance_sim` hands each launch a cumulative base
offset so launches lay out sequentially on the exported sim-time track
instead of piling up at ``t=0``.

When capture is off, :data:`NULL_RECORDER`/:data:`NULL_SPAN` absorb every
call as a no-op (the conformance tests in ``tests/test_obs.py`` pin that
the off path records nothing and changes nothing).
"""

from __future__ import annotations

import itertools
import threading
import time

__all__ = [
    "NULL_RECORDER",
    "NULL_SPAN",
    "NullRecorder",
    "NullSpan",
    "Span",
    "SpanRecorder",
    "format_tree",
    "spans_from_trace",
]


class Span:
    """One timed region of work; a node in the recorder's span tree.

    ``t0``/``t1`` are wall seconds since the recorder epoch (``None`` for
    sim-only derived spans); ``sim_t0``/``sim_t1`` are simulated seconds on
    the recorder's cumulative sim axis (``None`` for wall-only spans).
    ``attrs`` may be enriched via :meth:`set` at any point before export —
    including after the span ended (reports attach predicted-vs-actual cost
    to an already-closed launch span).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "rank",
        "t0", "t1", "sim_t0", "sim_t1", "attrs", "_recorder",
    )

    enabled = True

    def __init__(self, recorder, name, span_id, parent_id=None, rank=None,
                 t0=None, t1=None, sim_t0=None, sim_t1=None, attrs=None):
        self._recorder = recorder
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.rank = rank
        self.t0 = t0
        self.t1 = t1
        self.sim_t0 = sim_t0
        self.sim_t1 = sim_t1
        self.attrs = dict(attrs) if attrs else {}

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes (``None`` values are dropped)."""
        for key, value in attrs.items():
            if value is not None:
                self.attrs[key] = value
        return self

    def end(self) -> "Span":
        """Close the wall interval (idempotent)."""
        if self.t1 is None and self.t0 is not None:
            self.t1 = self._recorder._now()
        return self

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while open or for sim-only spans)."""
        if self.t0 is None or self.t1 is None:
            return 0.0
        return self.t1 - self.t0

    @property
    def sim_duration(self) -> float:
        """Simulated seconds (0.0 for wall-only spans)."""
        if self.sim_t0 is None or self.sim_t1 is None:
            return 0.0
        return self.sim_t1 - self.sim_t0

    def as_dict(self) -> dict:
        """The JSON-Lines export row for this span."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "rank": self.rank,
            "t0_s": self.t0,
            "t1_s": self.t1,
            "sim_t0_s": self.sim_t0,
            "sim_t1_s": self.sim_t1,
            "attrs": self.attrs,
        }

    # Context-manager protocol: pop the thread-local stack and publish.
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder._close(self, error=exc_type is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, rank={self.rank})"
        )


class NullSpan:
    """The disabled-path span: absorbs every call, records nothing."""

    __slots__ = ()

    enabled = False
    name = ""
    span_id = 0
    parent_id = None
    rank = None
    t0 = t1 = sim_t0 = sim_t1 = None
    duration = 0.0
    sim_duration = 0.0

    def set(self, **attrs) -> "NullSpan":
        return self

    def end(self) -> "NullSpan":
        return self

    def as_dict(self) -> dict:  # pragma: no cover - never exported
        return {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = NullSpan()


class SpanRecorder:
    """Thread-safe span sink + the thread-local open-span stack.

    ``max_spans`` bounds memory for long-running services: past the cap new
    spans are counted in :attr:`dropped` instead of stored (the tree stays
    well-formed — parents are recorded before their derived children).
    """

    enabled = True

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = int(max_spans)
        self.dropped = 0
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self._sim_cursor = 0.0
        #: Deferred trace batches: ``(events, parent_id, sim_base)`` per
        #: traced launch, synthesized into collective/round spans on first
        #: read (keeps the capture hot path O(1) per launch).
        self._pending_traces: list[tuple] = []

    # ----------------------------------------------------------- internals

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _publish(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
            else:
                self._spans.append(span)

    def _publish_many(self, spans: list[Span]) -> None:
        """Batched publish: ONE lock acquisition for a whole derived-span
        batch (the per-launch trace synthesis hot path)."""
        with self._lock:
            room = self.max_spans - len(self._spans)
            if room >= len(spans):
                self._spans.extend(spans)
            else:
                self._spans.extend(spans[:max(0, room)])
                self.dropped += len(spans) - max(0, room)

    def _close(self, span: Span, error: bool = False) -> None:
        span.end()
        if error:
            span.attrs["error"] = True
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._publish(span)

    # ----------------------------------------------------------- recording

    def span(self, name: str, *, rank=None, parent=None, **attrs) -> Span:
        """Open a wall-clocked span as a context manager.

        The parent is the innermost open span on the *calling thread*
        unless ``parent`` names one explicitly (cross-thread hand-offs).
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        parent_id = parent.span_id if parent is not None else None
        span = Span(
            self, name, next(self._ids), parent_id=parent_id, rank=rank,
            t0=self._now(), attrs=attrs,
        )
        stack.append(span)
        return span

    def add(self, name: str, *, parent=None, rank=None, t0=None, t1=None,
            sim_t0=None, sim_t1=None, **attrs) -> Span:
        """Record an already-finished (derived) span immediately."""
        parent_id = parent.span_id if parent is not None else None
        span = Span(
            self, name, next(self._ids), parent_id=parent_id, rank=rank,
            t0=t0, t1=t1, sim_t0=sim_t0, sim_t1=sim_t1, attrs=attrs,
        )
        self._publish(span)
        return span

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def advance_sim(self, simulated_seconds: float) -> float:
        """Reserve ``simulated_seconds`` on the cumulative sim axis; returns
        the base offset the caller should place its launch at."""
        with self._lock:
            base = self._sim_cursor
            self._sim_cursor += max(0.0, float(simulated_seconds))
        return base

    def defer_trace(self, events, parent, sim_base: float = 0.0) -> None:
        """Queue a traced launch's collective events for lazy synthesis.

        The launch hot path pays one list append; the collective and
        per-round spans (thousands for a large traced launch) are
        materialized by :func:`spans_from_trace` on the first read
        (:attr:`spans` / :meth:`tree` / export)."""
        parent_id = parent.span_id if parent is not None else None
        with self._lock:
            self._pending_traces.append((events, parent_id, sim_base))

    def _drain_traces(self) -> None:
        with self._lock:
            pending, self._pending_traces = self._pending_traces, []
        for events, parent_id, sim_base in pending:
            spans_from_trace(self, events, _ParentRef(parent_id), sim_base)

    # ------------------------------------------------------------- reading

    @property
    def spans(self) -> list[Span]:
        """Snapshot of every recorded (closed) span."""
        self._drain_traces()
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        self._drain_traces()
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._pending_traces.clear()
            self.dropped = 0
            self._sim_cursor = 0.0

    def tree(self) -> list[tuple[Span, list]]:
        """The recorded forest as ``[(span, children), ...]`` nested lists,
        children ordered by (sim start, wall start, id)."""
        spans = self.spans
        by_parent: dict[object, list[Span]] = {}
        ids = {s.span_id for s in spans}
        for s in spans:
            # A span whose parent was dropped (or never recorded) roots its
            # own subtree rather than vanishing from the view.
            key = s.parent_id if s.parent_id in ids else None
            by_parent.setdefault(key, []).append(s)

        def order(s: Span):
            return (
                s.sim_t0 if s.sim_t0 is not None else float("inf"),
                s.t0 if s.t0 is not None else float("inf"),
                s.span_id,
            )

        def build(parent_key):
            return [
                (s, build(s.span_id))
                for s in sorted(by_parent.get(parent_key, []), key=order)
            ]

        return build(None)


class NullRecorder:
    """The disabled-path recorder: every operation is a no-op."""

    enabled = False
    dropped = 0
    spans: tuple = ()

    def span(self, name: str, **kwargs) -> NullSpan:
        return NULL_SPAN

    def add(self, name: str, **kwargs) -> NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def advance_sim(self, simulated_seconds: float) -> float:
        return 0.0

    def defer_trace(self, events, parent, sim_base: float = 0.0) -> None:
        pass

    def tree(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_RECORDER = NullRecorder()


class _ParentRef:
    """A parent stand-in carrying just a ``span_id`` (deferred synthesis
    happens after the real parent span object is out of scope)."""

    __slots__ = ("span_id",)

    def __init__(self, span_id):
        self.span_id = span_id


def spans_from_trace(recorder, events, parent, sim_base: float = 0.0,
                     rounds: bool = True) -> int:
    """Derive collective (and per-round) leaf spans from a launch's trace.

    ``events`` are :class:`~repro.machine.trace.TraceEvent` records; each
    becomes a ``collective.<op>`` span on its rank's track under ``parent``
    (the launch span), offset by ``sim_base`` on the cumulative sim axis.
    With ``rounds=True`` each event's per-round schedule times become child
    ``round`` spans. Events are ordered by (rank, issue sequence) so the
    exported span list is deterministic even though worker threads append
    to the tracer concurrently. Returns the number of spans added.
    """
    ordered = sorted(
        events,
        key=lambda e: (
            (0, e.rank) if e.rank is not None else (1, 0),
            e.seq, e.t_start, e.t_end,
        ),
    )
    # Hot path (thousands of spans per traced launch): construct Span
    # records directly and publish the whole batch under one lock instead
    # of going through ``recorder.add``'s kwargs packing per span.
    parent_id = parent.span_id if parent is not None else None
    ids = recorder._ids
    batch: list[Span] = []
    for event in ordered:
        span = Span(
            recorder, "collective." + event.op, next(ids),
            parent_id=parent_id, rank=event.rank,
            sim_t0=sim_base + event.t_start,
            sim_t1=sim_base + event.t_end,
        )
        span.attrs = {
            "words": event.words,
            "rounds": event.rounds,
            "congestion": event.congestion,
        }
        batch.append(span)
        if rounds and len(event.round_times) > 1:
            t = sim_base + event.t_start
            collective_id = span.span_id
            for i, round_cost in enumerate(event.round_times):
                child = Span(
                    recorder, "round", next(ids), parent_id=collective_id,
                    rank=event.rank, sim_t0=t, sim_t1=t + round_cost,
                )
                child.attrs = {"index": i}
                batch.append(child)
                t += round_cost
    recorder._publish_many(batch)
    return len(batch)


def format_tree(recorder, max_children: int = 12) -> str:
    """A human-readable indentation rendering of the recorded span forest
    (what ``python -m repro.obs summary`` and the quickstart print)."""
    lines: list[str] = []

    def fmt(span: Span) -> str:
        parts = [span.name]
        if span.rank is not None:
            parts.append(f"rank={span.rank}")
        if span.t0 is not None and span.t1 is not None:
            parts.append(f"wall={span.duration * 1e3:.2f}ms")
        if span.sim_t0 is not None and span.sim_t1 is not None:
            parts.append(f"sim={span.sim_duration * 1e3:.3f}ms")
        for key in ("algorithm", "backend", "topology", "n", "p"):
            if key in span.attrs:
                parts.append(f"{key}={span.attrs[key]}")
        return "  ".join(parts)

    def walk(nodes, depth):
        shown = nodes[:max_children]
        for span, children in shown:
            lines.append("  " * depth + fmt(span))
            walk(children, depth + 1)
        if len(nodes) > len(shown):
            lines.append(
                "  " * depth + f"... {len(nodes) - len(shown)} more"
            )

    walk(recorder.tree(), 0)
    return "\n".join(lines)
