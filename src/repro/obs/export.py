"""Trace exporters: JSON Lines and Chrome trace-event format.

Two on-disk shapes, one source of truth (the recorder's span list):

* **JSON Lines** (``*.jsonl``) — one span per line, the lossless archival
  form ``python -m repro.obs summary`` reads back;
* **Chrome trace events** (``*.json``) — the ``{"traceEvents": [...]}``
  document Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
  load directly. The export lays spans out on TWO process tracks — pid 1
  "simulated time" and pid 2 "wall clock" — with one thread track per rank
  (machine-level spans ride the driver track, tid 0), so the paper's cost
  model and the host's reality sit one screen apart.

:func:`validate_chrome` is the schema check CI gates on: a hand-rolled
structural validator (the container has no ``jsonschema``) enforcing the
documented trace-event contract — top-level shape, required keys per
phase, numeric non-negative timestamps.
"""

from __future__ import annotations

import json
import numbers

__all__ = [
    "SIM_PID",
    "WALL_PID",
    "chrome_document",
    "read_jsonl",
    "summarize",
    "validate_chrome",
    "write_chrome",
    "write_jsonl",
]

#: Chrome-trace process ids of the two time axes.
SIM_PID = 1
WALL_PID = 2

#: tid of machine-level (rank-less, driver-side) spans on either track.
DRIVER_TID = 0


def _span_rows(spans) -> list[dict]:
    return [s.as_dict() if hasattr(s, "as_dict") else dict(s) for s in spans]


def write_jsonl(spans, path: str) -> int:
    """One span per line; returns the number of lines written."""
    rows = _span_rows(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, default=_jsonable) + "\n")
    return len(rows)


def read_jsonl(path: str) -> list[dict]:
    rows = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def _jsonable(obj):
    """Fallback encoder: numpy scalars and exotic attrs degrade to repr."""
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return repr(obj)


def _tid(row: dict) -> int:
    rank = row.get("rank")
    return DRIVER_TID if rank is None else int(rank) + 1


def chrome_document(spans) -> dict:
    """Build the ``{"traceEvents": [...]}`` document for a span list.

    Every span with a wall interval becomes a complete ("ph": "X") event
    on the wall-clock process; every span with a sim interval becomes one
    on the simulated-time process. Timestamps are microseconds, per the
    format. Metadata ("ph": "M") events name the two processes and one
    thread per rank."""
    rows = _span_rows(spans)
    events: list[dict] = []
    tids: dict[int, str] = {DRIVER_TID: "driver"}
    for row in rows:
        rank = row.get("rank")
        if rank is not None:
            tids.setdefault(int(rank) + 1, f"rank {int(rank)}")
    for pid, label in ((SIM_PID, "simulated time"), (WALL_PID, "wall clock")):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        for tid, tname in sorted(tids.items()):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })
    for row in rows:
        args = {"span_id": row.get("span_id")}
        args.update(row.get("attrs") or {})
        common = {"name": row.get("name", "?"), "cat": "repro",
                  "ph": "X", "tid": _tid(row), "args": args}
        if row.get("sim_t0_s") is not None and row.get("sim_t1_s") is not None:
            events.append({
                **common, "pid": SIM_PID,
                "ts": row["sim_t0_s"] * 1e6,
                "dur": max(0.0, (row["sim_t1_s"] - row["sim_t0_s"]) * 1e6),
            })
        if row.get("t0_s") is not None and row.get("t1_s") is not None:
            events.append({
                **common, "pid": WALL_PID,
                "ts": row["t0_s"] * 1e6,
                "dur": max(0.0, (row["t1_s"] - row["t0_s"]) * 1e6),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(spans, path: str) -> int:
    """Write the Chrome/Perfetto document; returns the event count."""
    doc = chrome_document(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, default=_jsonable)
    return len(doc["traceEvents"])


# ------------------------------------------------------------- validation


def _is_num(x) -> bool:
    return isinstance(x, numbers.Real) and not isinstance(x, bool)


def validate_chrome(doc) -> list[str]:
    """Structural schema check of a Chrome trace-event document.

    ``doc`` is a parsed document, a JSON string, or a path to one. Returns
    a list of human-readable violations — empty means the document conforms
    to the trace-event contract this exporter targets (and that CI's obs
    smoke leg gates on).
    """
    if isinstance(doc, str):
        if doc.lstrip().startswith(("{", "[")):
            doc = json.loads(doc)
        else:
            with open(doc, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
    errors: list[str] = []
    if isinstance(doc, list):
        events = doc
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object must carry a 'traceEvents' list"]
    else:
        return [f"document must be an object or array, got {type(doc).__name__}"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing phase 'ph'")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: 'name' must be a string")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], numbers.Integral):
                errors.append(f"{where}: '{key}' must be an integer")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
        if ph == "M":
            continue
        if ph in ("X", "B", "E", "I", "i"):
            if not _is_num(ev.get("ts")):
                errors.append(f"{where}: 'ts' must be a number")
            elif ev["ts"] < 0:
                errors.append(f"{where}: 'ts' must be non-negative")
        if ph == "X":
            if not _is_num(ev.get("dur")):
                errors.append(f"{where}: complete event needs numeric 'dur'")
            elif ev["dur"] < 0:
                errors.append(f"{where}: 'dur' must be non-negative")
    return errors


# -------------------------------------------------------------- summaries


def summarize(rows: list[dict]) -> list[dict]:
    """Per-name aggregates over exported span rows (the CLI table).

    ``pred_s`` sums the planner's predicted simulated seconds over spans
    that carried a prediction and ``actual_s`` the matching simulated
    seconds of those same spans, so predicted-vs-actual is comparable
    per name at a glance (both are 0.0 for names that never predict).
    """
    table: dict[str, dict] = {}
    for row in rows:
        agg = table.setdefault(row.get("name", "?"), {
            "name": row.get("name", "?"), "count": 0,
            "wall_s": 0.0, "sim_s": 0.0, "pred_s": 0.0, "actual_s": 0.0,
        })
        agg["count"] += 1
        if row.get("t0_s") is not None and row.get("t1_s") is not None:
            agg["wall_s"] += row["t1_s"] - row["t0_s"]
        sim = None
        if row.get("sim_t0_s") is not None and row.get("sim_t1_s") is not None:
            sim = row["sim_t1_s"] - row["sim_t0_s"]
            agg["sim_s"] += sim
        predicted = (row.get("attrs") or {}).get("predicted_s")
        if predicted is not None and sim is not None:
            agg["pred_s"] += predicted
            agg["actual_s"] += sim
    return sorted(table.values(),
                  key=lambda a: (-a["wall_s"], -a["sim_s"], a["name"]))
