"""Process-wide metrics: named counters, gauges and sketch histograms.

The repo's counters were scattered per object (``Machine.launch_count``,
pool ``fork_count``/``reuse_count``, the serve tier's latency sketch). This
module gives them ONE registry with labeled dimensions, so every layer
increments the same process-wide totals while the old per-object attributes
stay alive as views over their original sources (a Machine still knows *its*
launch count; the registry knows the fleet's).

* :class:`Counter` — monotone float/int total (``inc``);
* :class:`Gauge` — last-write-wins level (``set_value``/``inc``);
* :class:`Histogram` — distribution summary backed by the library's own
  mergeable :class:`~repro.stream.sketch.QuantileSketch` (dogfooding the
  paper's machinery), plus exact count/sum/min/max.

Metrics are identified by ``(name, sorted labels)``; :meth:`MetricsRegistry.
counter` etc. get-or-create, so call sites never coordinate. Recording is
always-on and cheap (a dict lookup + a lock-free buffer append); it never
touches simulated clocks or RNG streams, so the bit-identity contract of
the execution layers is untouchable from here by construction.

``REGISTRY`` is the process-wide instance every layer shares; tests that
need isolation construct their own :class:`MetricsRegistry`.

The :class:`~repro.stream.sketch.QuantileSketch` import is deferred into
the histogram fold: ``repro.stream`` imports the core layers, and the core
layers import this module — laziness breaks the cycle.
"""

from __future__ import annotations

import threading
from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared identity/lock plumbing of every metric kind."""

    kind = "?"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.full_name}>"


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: dict):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_row(self) -> dict:
        return {"kind": self.kind, "name": self.full_name,
                "value": self._value}


class Gauge(_Metric):
    """A last-write-wins level (queue depths, pinned bytes, cache sizes)."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict):
        super().__init__(name, labels)
        self._value = 0.0

    def set_value(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def as_row(self) -> dict:
        return {"kind": self.kind, "name": self.full_name,
                "value": self._value}


class Histogram(_Metric):
    """A distribution summary: exact count/sum/min/max + ε-approximate
    quantiles from a :class:`~repro.stream.sketch.QuantileSketch`.

    Observations buffer in a plain list and fold into the sketch in
    batches (the same pattern the serve tier's latency sketch uses), so
    the hot path is an append."""

    kind = "histogram"

    def __init__(self, name: str, labels: dict, eps: float = 0.01):
        super().__init__(name, labels)
        self.eps = float(eps)
        self._buf: list[float] = []
        self._sketch = None
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._buf.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def _fold(self):
        import numpy as np

        from ..stream.sketch import QuantileSketch

        with self._lock:
            if self._sketch is None:
                self._sketch = QuantileSketch(eps=self.eps)
            if self._buf:
                self._sketch.update(np.asarray(self._buf, dtype=np.float64))
                self._buf.clear()
            return self._sketch

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """ε-approximate value at fraction ``q`` (0.0 when empty)."""
        if not self._count:
            return 0.0
        return float(self._fold().quantile(q))

    def as_row(self) -> dict:
        row = {
            "kind": self.kind, "name": self.full_name, "count": self._count,
            "sum": self._sum, "mean": self.mean, "min": self.min,
            "max": self.max,
        }
        if self._count:
            row["p50"] = self.quantile(0.50)
            row["p99"] = self.quantile(0.99)
        return row


class MetricsRegistry:
    """Get-or-create home for every named metric in the process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple, _Metric] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, eps: float = 0.01, **labels) -> Histogram:
        return self._get(Histogram, name, labels, eps=eps)

    def collect(self) -> list[dict]:
        """Every metric as a flat export row, sorted by name."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted((m.as_row() for m in metrics),
                      key=lambda row: row["name"])

    def find(self, prefix: str = "") -> "Iterable[_Metric]":
        """Metrics whose name starts with ``prefix`` (inspection/tests)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return [m for m in metrics if m.name.startswith(prefix)]

    def clear(self) -> None:
        """Drop every metric (test isolation only)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


#: The process-wide registry every layer records into.
REGISTRY = MetricsRegistry()
