"""``repro.obs`` — unified telemetry: spans, metrics, exporters.

One switch, three surfaces:

* ``REPRO_TRACE=<path>`` — capture every span in the process and export on
  exit (``*.jsonl`` → JSON Lines, anything else → Chrome trace format);
* ``Machine(trace="<path>")`` — same switch from code (a plain
  ``trace=True`` keeps its historical meaning: per-launch collective
  tracing, feeding leaf spans whenever capture is on);
* :func:`enable` / :func:`capture` — programmatic control (the bench
  harness and tests use the :func:`capture` context manager for clean
  on/off bracketing).

Disabled is the default and costs nothing observable: the execution layers
consult :func:`get_recorder` and get :data:`~repro.obs.spans.NULL_RECORDER`,
whose spans absorb every call — values, RNG streams, simulated times and
launch counts stay bit-identical (pinned by ``tests/test_obs.py``).

The metrics :data:`~repro.obs.metrics.REGISTRY` is independent of span
capture: counters/histograms are always-on (they are pure driver-side
bookkeeping and never touch the simulated machine).
"""

from __future__ import annotations

import atexit
import os

from .export import (
    chrome_document,
    read_jsonl,
    summarize,
    validate_chrome,
    write_chrome,
    write_jsonl,
)
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .spans import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    NullSpan,
    Span,
    SpanRecorder,
    format_tree,
    spans_from_trace,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "NullSpan",
    "Span",
    "SpanRecorder",
    "capture",
    "chrome_document",
    "disable",
    "enable",
    "enabled",
    "export",
    "format_tree",
    "get_recorder",
    "read_jsonl",
    "span",
    "spans_from_trace",
    "summarize",
    "validate_chrome",
    "write_chrome",
    "write_jsonl",
]

#: Environment switch: a path enables capture and names the export target.
TRACE_ENV = "REPRO_TRACE"

_recorder: SpanRecorder | None = None
_export_path: str | None = None
_env_checked = False
_atexit_registered = False


def _check_env() -> None:
    global _env_checked
    if _env_checked:
        return
    _env_checked = True
    path = os.environ.get(TRACE_ENV)
    if path:
        enable(path)


def get_recorder():
    """The active :class:`SpanRecorder`, or the null recorder when capture
    is off. Every instrumented layer routes through here."""
    _check_env()
    return _recorder if _recorder is not None else NULL_RECORDER


def enabled() -> bool:
    """True when span capture is on."""
    return get_recorder().enabled


def enable(path: str | None = None,
           recorder: SpanRecorder | None = None) -> SpanRecorder:
    """Switch span capture on process-wide.

    ``path`` (optional) registers an at-exit export: ``*.jsonl`` writes
    JSON Lines, any other suffix the Chrome trace document. Idempotent —
    repeated calls keep the existing recorder (updating the export path if
    a new one is given). Returns the active recorder.
    """
    global _recorder, _export_path, _env_checked, _atexit_registered
    _env_checked = True
    if _recorder is None:
        _recorder = recorder if recorder is not None else SpanRecorder()
    if path is not None:
        _export_path = str(path)
        if not _atexit_registered:
            _atexit_registered = True
            atexit.register(_export_at_exit)
    return _recorder


def disable() -> None:
    """Switch span capture off (the recorder and its spans are dropped;
    call :func:`export` first to keep them)."""
    global _recorder, _export_path
    _recorder = None
    _export_path = None


def span(name: str, **attrs):
    """Open a span on the active recorder (a no-op context manager when
    capture is off) — the one-liner instrumented layers use::

        with obs.span("session.flush", queries=len(pending)):
            ...
    """
    return get_recorder().span(name, **attrs)


def export(path, recorder: SpanRecorder | None = None) -> int:
    """Write the captured spans to ``path`` now (format by suffix; see
    :func:`enable`). Returns the number of spans/events written."""
    rec = recorder if recorder is not None else get_recorder()
    spans = list(rec.spans)
    path = os.fspath(path)
    if path.endswith(".jsonl"):
        return write_jsonl(spans, path)
    return write_chrome(spans, path)


def _export_at_exit() -> None:  # pragma: no cover - exercised in subprocess
    if _recorder is not None and _export_path:
        try:
            export(_export_path, _recorder)
        except OSError:
            pass


class capture:
    """Context manager bracketing a capture window with a fresh recorder.

    Restores the previous capture state on exit (so benches can measure
    obs-on vs obs-off in one process) and exposes the recorder::

        with obs.capture() as rec:
            data.median()
        print(obs.format_tree(rec))
    """

    def __init__(self, path: str | None = None,
                 max_spans: int = 200_000):
        self.path = path
        self.recorder = SpanRecorder(max_spans=max_spans)

    def __enter__(self) -> SpanRecorder:
        global _recorder, _export_path, _env_checked
        self._prev = (_recorder, _export_path, _env_checked)
        _env_checked = True
        _recorder = self.recorder
        _export_path = None
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        global _recorder, _export_path, _env_checked
        if self.path is not None:
            export(self.path, self.recorder)
        _recorder, _export_path, _env_checked = self._prev
