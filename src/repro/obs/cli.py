"""``python -m repro.obs`` — summarize, convert, validate trace files.

Three subcommands over the two export formats:

* ``summary <trace.jsonl>`` — span-tree counts, per-name wall/sim totals;
* ``convert <trace.jsonl> <out.json>`` — JSON Lines → Chrome trace
  document (load the output at https://ui.perfetto.dev);
* ``validate <trace.json>`` — the schema check CI's obs smoke leg gates
  on (exit status 1 and one line per violation when the document fails).
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (
    chrome_document,
    read_jsonl,
    summarize,
    validate_chrome,
)

__all__ = ["main"]


def _load_rows(path: str) -> list[dict]:
    if path.endswith(".jsonl"):
        return read_jsonl(path)
    raise SystemExit(
        f"summary/convert read the JSON Lines export (*.jsonl), got {path!r}"
    )


def _cmd_summary(args) -> int:
    rows = _load_rows(args.trace)
    roots = sum(1 for r in rows if r.get("parent_id") is None)
    print(f"{len(rows)} spans ({roots} roots) in {args.trace}")
    print(f"{'name':<28} {'count':>7} {'wall_s':>10} {'sim_s':>12} "
          f"{'pred_s':>12} {'actual_s':>12}")
    for agg in summarize(rows)[: args.top]:
        print(f"{agg['name']:<28} {agg['count']:>7} "
              f"{agg['wall_s']:>10.4f} {agg['sim_s']:>12.6f} "
              f"{agg['pred_s']:>12.6f} {agg['actual_s']:>12.6f}")
    return 0


def _cmd_convert(args) -> int:
    rows = _load_rows(args.trace)
    doc = chrome_document(rows)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    print(f"wrote {len(doc['traceEvents'])} events to {args.out} "
          "(load in https://ui.perfetto.dev)")
    return 0


def _cmd_validate(args) -> int:
    errors = validate_chrome(args.trace)
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        return 1
    print(f"{args.trace}: valid Chrome trace-event document")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, convert or validate repro trace exports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="per-name aggregates of a .jsonl trace")
    p.add_argument("trace")
    p.add_argument("--top", type=int, default=20,
                   help="rows to print (default 20)")
    p.set_defaults(fn=_cmd_summary)

    p = sub.add_parser("convert",
                       help=".jsonl trace -> Chrome/Perfetto .json")
    p.add_argument("trace")
    p.add_argument("out")
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser("validate",
                       help="schema-check a Chrome trace document")
    p.add_argument("trace")
    p.set_defaults(fn=_cmd_validate)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed early (e.g. `summary ... | head`).
        sys.stderr.close()
        return 0
