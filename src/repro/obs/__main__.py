"""Entry point for ``python -m repro.obs`` (see :mod:`repro.obs.cli`)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
