"""The ``threaded`` backend: one preemptive OS thread per rank.

This is the historical runtime vehicle (coarse-grained machines have few,
powerful processors — 2..128 in the paper — so threads are a faithful and
cheap model); each rank blocks in real condition variables at collectives
and mailboxes, and heavy local work is vectorised NumPy, which releases
the GIL for large arrays, so ranks genuinely overlap where it matters.

Failure semantics: the first rank to raise aborts the barrier and all
mailboxes; sibling ranks unwind with ``WorkerAborted``; the caller receives
a :class:`~repro.errors.WorkerError` chaining the original exception. No
deadlocks, no leaked threads (joined with a timeout and asserted dead).
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ...errors import WorkerAborted, WorkerError
from ..channels import MessageBoard
from ..clock import LogicalClock
from ..collectives import CollectiveEngine
from ..comm import Comm
from .base import (
    ExecutionBackend,
    Launch,
    ProcContext,
    SPMDResult,
    raise_worker_failures,
    run_single_rank,
)

__all__ = ["ThreadedBackend"]


class ThreadedBackend(ExecutionBackend):
    """One OS thread per rank, preemptively scheduled by the OS."""

    name = "threaded"

    def execute(self, launch: Launch) -> SPMDResult:
        p = launch.n_procs
        if p == 1:
            return run_single_rank(launch, self.name)
        engine = CollectiveEngine(
            p, launch.cost_model, launch.tracer, topology=launch.topology
        )
        board = MessageBoard(p)
        clocks = [LogicalClock() for _ in range(p)]
        results: list[Any] = [None] * p
        errors: list[BaseException | None] = [None] * p

        def worker(rank: int) -> None:
            ctx = ProcContext(
                rank=rank,
                size=p,
                comm=Comm(
                    rank, p, engine, board, clocks[rank], launch.cost_model
                ),
                clock=clocks[rank],
                model=launch.cost_model,
            )
            try:
                results[rank] = launch.call(ctx)
            except WorkerAborted as exc:
                errors[rank] = exc
            except BaseException as exc:  # noqa: BLE001 - must not leak threads
                errors[rank] = exc
                engine.abort()
                board.abort()

        t0 = time.perf_counter()
        threads = [
            threading.Thread(
                target=worker, args=(r,), name=f"repro-rank-{r}", daemon=True
            )
            for r in range(p)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=launch.join_timeout)
        stuck = [t.name for t in threads if t.is_alive()]
        if stuck:
            engine.abort()
            board.abort()
            for t in threads:
                t.join(timeout=5.0)
            still = [t.name for t in threads if t.is_alive()]
            if still:  # pragma: no cover - catastrophic, test-only path
                raise WorkerError(
                    0, RuntimeError(f"threads failed to unwind: {still}")
                )
        wall = time.perf_counter() - t0

        raise_worker_failures(errors)
        board.drain_check()
        return SPMDResult(
            values=results,
            clocks=[c.now for c in clocks],
            breakdowns=[c.breakdown() for c in clocks],
            wall_time=wall,
            tracer=launch.tracer,
            backend=self.name,
            topology=launch.topology.name,
        )
