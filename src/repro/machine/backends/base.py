"""The execution-backend contract: ``Launch`` in, ``SPMDResult`` out.

The paper's algorithms are machine-independent — they only assume a
coarse-grained SPMD machine with the six collectives — so the runtime
separates *what* a launch is from *how* its ranks are physically driven:

* :class:`Launch` — one validated SPMD launch: the program, the per-rank
  arguments, the cost model, the topology, the tracer. Backend-agnostic,
  and the **single** validation point for launch shape (rank counts,
  per-rank argument lists, topology resolution): every entry path —
  ``SPMDRuntime.run``, ``run_spmd``, a backend driven directly — goes
  through ``Launch.__post_init__``, so no check is duplicated anywhere.
* :class:`ProcContext` — everything one rank sees: identity, communicator,
  logical clock, cost model. Identical on every backend, which is what
  makes the cross-backend differential tests meaningful.
* :class:`ExecutionBackend` — the strategy interface. Implementations:
  ``serial`` (:mod:`.serial`), ``threaded`` (:mod:`.threaded`) and
  ``process`` (:mod:`.process`).
* :class:`SPMDResult` — per-rank values, final clocks and breakdowns, the
  real wall time, and the name of the backend that ran the launch.

Because every backend charges the same simulated costs through the same
:class:`~repro.machine.collectives.CollectiveEngine`, selection values,
RNG streams and simulated times are bit-identical across backends; only
``wall_time`` (and the physical vehicle) differs.
"""

from __future__ import annotations

import abc
import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ...errors import ConfigurationError, WorkerAborted, WorkerError
from ..channels import MessageBoard
from ..clock import Category, LogicalClock, TimeBreakdown
from ..collectives import CollectiveEngine
from ..comm import Comm
from ..cost_model import CostModel
from ..topology import Topology, resolve_topology
from ..trace import NullTracer, Tracer

__all__ = [
    "MAX_RANKS",
    "ExecutionBackend",
    "Launch",
    "ProcContext",
    "SPMDResult",
    "raise_worker_failures",
    "run_single_rank",
    "validate_n_procs",
]

#: Hard rank-count ceiling to protect CI boxes; the paper's largest
#: machine is 128. Shared by the runtime facade and Launch validation.
MAX_RANKS = 1024


def validate_n_procs(n_procs) -> int:
    """The one rank-count check every launch path shares."""
    if not isinstance(n_procs, int) or isinstance(n_procs, bool) or n_procs < 1:
        raise ConfigurationError(
            f"n_procs must be a positive integer, got {n_procs!r}"
        )
    if n_procs > MAX_RANKS:
        raise ConfigurationError(
            f"n_procs={n_procs} exceeds MAX_RANKS={MAX_RANKS}"
        )
    return n_procs


@dataclass
class ProcContext:
    """Everything one rank needs: identity, comm, clock, cost model."""

    rank: int
    size: int
    comm: Comm
    clock: LogicalClock
    model: CostModel

    def charge_compute(self, seconds: float) -> None:
        self.clock.charge(Category.COMPUTE, seconds)

    @contextlib.contextmanager
    def balance_section(self):
        """Attribute all time charged inside to the load-balancing bucket."""
        self.clock.open_balance_section()
        try:
            yield self
        finally:
            self.clock.close_balance_section()


@dataclass
class SPMDResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    values:
        Per-rank return values of the program.
    clocks:
        Final simulated time per rank.
    breakdowns:
        Per-rank :class:`TimeBreakdown`.
    wall_time:
        Real seconds the simulation took (not the simulated metric).
    backend:
        Name of the execution backend that ran the launch.
    topology:
        Name of the machine topology the collectives were lowered onto.
    """

    values: list[Any]
    clocks: list[float]
    breakdowns: list[TimeBreakdown]
    wall_time: float
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)
    backend: str = "threaded"
    topology: str = "crossbar"
    #: The launch's :class:`~repro.obs.spans.Span` when span capture was on
    #: (attached by the runtime after execution so report assembly can
    #: enrich it with query-level attributes); ``None`` otherwise.
    span: Any = field(default=None, repr=False, compare=False)

    @property
    def simulated_time(self) -> float:
        """The machine finishes when its slowest processor does."""
        return max(self.clocks) if self.clocks else 0.0

    @property
    def breakdown(self) -> TimeBreakdown:
        """Breakdown of the rank that determined the finish time."""
        if not self.clocks:
            return TimeBreakdown()
        critical = max(range(len(self.clocks)), key=self.clocks.__getitem__)
        return self.breakdowns[critical]

    @property
    def balance_time(self) -> float:
        """Max across ranks of time attributed to load balancing."""
        return max((b.balance for b in self.breakdowns), default=0.0)

    def collective_rounds(self, rank: int = 0) -> dict[str, dict]:
        """Per-collective round evidence from the trace (one rank's view).

        Returns ``{op: {"calls", "rounds", "max_congestion"}}`` — how many
        times the op ran, the total schedule rounds it executed, and the
        worst per-round transfer pile-up on a single rank. Empty when the
        launch ran without tracing; any rank gives the same answer (strict
        SPMD discipline), so rank 0 is read by default.
        """
        summary: dict[str, dict] = {}
        for e in self.tracer.events(rank=rank):
            row = summary.setdefault(
                e.op, {"calls": 0, "rounds": 0, "max_congestion": 0}
            )
            row["calls"] += 1
            row["rounds"] += e.rounds
            row["max_congestion"] = max(row["max_congestion"], e.congestion)
        return summary


@dataclass
class Launch:
    """One validated SPMD launch, independent of the execution vehicle.

    ``__post_init__`` is the single validation/normalisation point every
    launch path shares: the rank count, the per-rank argument shape, and
    the topology (a spec string, ``None`` for the ``REPRO_TOPOLOGY``/
    crossbar default, or a ready :class:`~repro.machine.topology.Topology`)
    are checked here once, so backends can trust every field.
    """

    fn: Callable[..., Any]
    n_procs: int
    cost_model: CostModel
    rank_args: Sequence[Sequence[Any]] | None = None
    args: Sequence[Any] = ()
    kwargs: dict = field(default_factory=dict)
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)
    join_timeout: float = 120.0
    topology: Topology | str | None = None

    def __post_init__(self) -> None:
        validate_n_procs(self.n_procs)
        if self.rank_args is not None and len(self.rank_args) != self.n_procs:
            raise ConfigurationError(
                f"rank_args must have one entry per rank ({self.n_procs}), "
                f"got {len(self.rank_args)}"
            )
        self.topology = resolve_topology(self.topology, self.n_procs)

    def call(self, ctx: ProcContext) -> Any:
        """Run the program body for ``ctx.rank``."""
        extra = (
            tuple(self.rank_args[ctx.rank]) if self.rank_args is not None else ()
        )
        return self.fn(ctx, *extra, *self.args, **self.kwargs)


class ExecutionBackend(abc.ABC):
    """How one SPMD launch is physically driven.

    A backend receives a :class:`Launch` and must return an
    :class:`SPMDResult` with one entry per rank, converting any rank
    failure into a :class:`~repro.errors.WorkerError` that chains the
    original exception (siblings unwinding with ``WorkerAborted`` are
    suppressed). One instance serves any number of runtimes; most
    backends are stateless, while ``pool`` keeps persistent workers and a
    pin cache precisely so launches can share them.
    """

    #: Registry key; also recorded on every result/report.
    name: str = "?"

    @abc.abstractmethod
    def execute(self, launch: Launch) -> SPMDResult:
        """Run ``launch`` on every rank and collect the outcome."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def raise_worker_failures(errors: Sequence[BaseException | None]) -> None:
    """Convert per-rank errors to the caller-facing :class:`WorkerError`.

    The first *real* failure (lowest rank, non-``WorkerAborted``) wins and
    chains its original exception; pure aborts without a root cause are a
    runtime bug but still surface as an error rather than silence.
    """
    real = [
        (r, e)
        for r, e in enumerate(errors)
        if e is not None and not isinstance(e, WorkerAborted)
    ]
    if real:
        rank, cause = real[0]
        raise WorkerError(rank, cause) from cause
    aborted = [r for r, e in enumerate(errors) if e is not None]
    if aborted:  # pragma: no cover - abort without a root cause
        raise WorkerError(aborted[0], errors[aborted[0]])


def run_single_rank(launch: Launch, backend_name: str) -> SPMDResult:
    """The shared ``p == 1`` fast path: no workers, run inline.

    A single rank cannot deadlock or race, so every backend executes it on
    the calling thread — the historical behaviour of the monolithic
    runtime, preserved bit-for-bit.
    """
    engine = CollectiveEngine(
        1, launch.cost_model, launch.tracer, topology=launch.topology
    )
    board = MessageBoard(1)
    clock = LogicalClock()
    ctx = ProcContext(
        rank=0,
        size=1,
        comm=Comm(0, 1, engine, board, clock, launch.cost_model),
        clock=clock,
        model=launch.cost_model,
    )
    t0 = time.perf_counter()
    try:
        value = launch.call(ctx)
    except WorkerAborted as exc:  # pragma: no cover - single rank can't abort
        raise_worker_failures([exc])
    except BaseException as exc:
        raise_worker_failures([exc])
    wall = time.perf_counter() - t0
    board.drain_check()
    return SPMDResult(
        values=[value],
        clocks=[clock.now],
        breakdowns=[clock.breakdown()],
        wall_time=wall,
        tracer=launch.tracer,
        backend=backend_name,
        topology=launch.topology.name,
    )
