"""Shared worker-process machinery for the ``process`` and ``pool`` backends.

Both multi-process backends drive ranks the same way; what differs is only
the worker *lifetime* (per-launch forks vs a persistent pool). This module
holds the common pieces once so they cannot drift apart:

* :class:`SharedArray` — one rank shard copied into an anonymous
  shared-memory buffer (``multiprocessing.RawArray``) the children inherit
  and wrap as a zero-copy NumPy view; shard bytes cross the process
  boundary exactly once regardless of how many launches scan them.
* :class:`RankTransport` / :class:`QueueRendezvous` /
  :class:`QueueBoard` — the per-rank inbox-queue message fabric that plugs
  the forked ranks into the shared
  :class:`~repro.machine.collectives.CollectiveEngine`, so the cost
  formulas — and therefore the simulated times — are bit-identical to the
  in-process backends.
* :func:`build_worker_context` — assembles one child rank's
  :class:`~repro.machine.backends.base.ProcContext` over the transport.
* :func:`picklable_failure` — exceptions must survive the result queue;
  unpicklable ones are wrapped in :class:`UnpicklableWorkerFailure`.
"""

from __future__ import annotations

import ctypes
import multiprocessing
import pickle
import queue as queue_module
import time
from collections import deque
from typing import Any

import numpy as np

from ...errors import CommunicationError, WorkerAborted
from ..clock import LogicalClock
from ..collectives import CollectiveEngine
from ..comm import Comm
from ..trace import NullTracer, Tracer
from .base import ProcContext

__all__ = [
    "QueueBoard",
    "QueueMailbox",
    "QueueRendezvous",
    "RankTransport",
    "SharedArray",
    "UnpicklableWorkerFailure",
    "build_worker_context",
    "picklable_failure",
    "resolve_shared",
    "share_rank_args",
]


class UnpicklableWorkerFailure(RuntimeError):
    """Stand-in for a worker exception whose type cannot cross processes."""


def picklable_failure(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return UnpicklableWorkerFailure(f"{type(exc).__name__}: {exc}")


class SharedArray:
    """One rank shard copied into an anonymous shared-memory buffer.

    Created in the parent before the fork; children inherit the mapping
    and wrap it as a zero-copy NumPy view, so shard bytes cross the
    process boundary exactly once (the parent-side copy-in) regardless of
    how often ranks scan them.
    """

    def __init__(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        self.dtype = arr.dtype
        self.shape = arr.shape
        self.size = arr.size
        self._raw = multiprocessing.RawArray(ctypes.c_byte, max(arr.nbytes, 1))
        if arr.size:
            self.as_array()[...] = arr

    @property
    def nbytes(self) -> int:
        return len(self._raw)

    def as_array(self) -> np.ndarray:
        return np.frombuffer(
            self._raw, dtype=self.dtype, count=self.size
        ).reshape(self.shape)

    def matches(self, arr: np.ndarray) -> bool:
        """Cheap staleness guard for pinned arrays: shape/dtype plus a
        three-point content probe (first/middle/last element). Pinning is
        by object identity; this catches the common in-place mutations
        without re-hashing the whole buffer every launch."""
        if arr.dtype != self.dtype or arr.shape != self.shape:
            return False
        if not arr.size:
            return True
        view = self.as_array()
        probe = (0, arr.size // 2, arr.size - 1)
        flat, vflat = arr.reshape(-1), view.reshape(-1)
        return all(flat[i] == vflat[i] for i in probe)


def share_rank_args(rank_args):
    """Replace every NumPy array in per-rank args with a shared buffer."""
    if rank_args is None:
        return None
    return [
        tuple(
            SharedArray(a) if isinstance(a, np.ndarray) else a for a in row
        )
        for row in rank_args
    ]


def resolve_shared(extra):
    return tuple(
        a.as_array() if isinstance(a, SharedArray) else a for a in extra
    )


class RankTransport:
    """One child's view of the inter-rank queues: demux + buffering.

    Every rank owns one inbox queue; peers push ``coll`` (collective
    deposits, sequence-numbered), ``p2p`` (tagged point-to-point
    payloads), ``end`` (clean-completion marker used by the drain check)
    and ``abort`` messages into it. Per-producer FIFO order is what makes
    the end-marker drain protocol sound.
    """

    def __init__(self, rank: int, n: int, inboxes, timeout: float):
        self.rank = rank
        self.n = n
        self.aborted = False
        self._inboxes = inboxes
        self._timeout = timeout
        self._coll: dict[tuple[int, int], tuple] = {}
        self._p2p: dict[tuple[int, Any], deque] = {}
        self._ends: set[int] = set()

    # ---------------------------------------------------------------- sends

    def _encode(self, msg: tuple):
        """Pickle payload-carrying messages eagerly, in the sending rank.

        ``multiprocessing.Queue`` serialises on a background feeder
        thread; a payload that cannot pickle dies *there*, the message is
        never delivered, and every peer stalls until the launch timeout.
        Encoding ``coll``/``p2p`` messages here instead turns that into a
        synchronous :class:`CommunicationError` in the offending rank,
        which then takes the normal broadcast-abort + error-report path.
        Control messages (``end``/``abort``) stay plain tuples — they are
        always picklable and the parent injects raw ``abort`` tuples too.
        """
        if msg[0] not in ("coll", "p2p"):
            return msg
        try:
            return pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CommunicationError(
                f"rank {self.rank}: {msg[0]} payload cannot cross the "
                f"process boundary ({type(exc).__name__}: {exc})"
            ) from exc

    def send_to(self, dest: int, msg: tuple) -> None:
        self._inboxes[dest].put(self._encode(msg))

    def send_all(self, msg: tuple) -> None:
        wire = self._encode(msg)
        for dest in range(self.n):
            if dest != self.rank:
                self._inboxes[dest].put(wire)

    def broadcast_abort(self) -> None:
        self.aborted = True
        self.send_all(("abort",))

    def deliver_local(self, source: int, tag, payload) -> None:
        """A self-send: never touches a queue."""
        self._p2p.setdefault((source, tag), deque()).append(payload)

    # --------------------------------------------------------------- receive

    def _pump(self, timeout: float) -> None:
        """Read and dispatch one inbound message (or time out)."""
        try:
            msg = self._inboxes[self.rank].get(timeout=timeout)
        except queue_module.Empty:
            raise CommunicationError(
                f"rank {self.rank}: no inter-rank message within {timeout}s "
                "(peer stalled or desynchronised)"
            ) from None
        if isinstance(msg, bytes):  # eagerly-encoded coll/p2p (see _encode)
            msg = pickle.loads(msg)
        kind = msg[0]
        if kind == "coll":
            _, seq, src, op, value, clock_now = msg
            self._coll[(src, seq)] = (op, value, clock_now)
        elif kind == "p2p":
            _, src, tag, payload = msg
            self._p2p.setdefault((src, tag), deque()).append(payload)
        elif kind == "end":
            self._ends.add(msg[1])
        else:  # "abort"
            self.aborted = True

    def _check_abort(self) -> None:
        if self.aborted:
            raise WorkerAborted("sibling rank failed")

    def wait_coll(self, src: int, seq: int) -> tuple:
        key = (src, seq)
        while key not in self._coll:
            self._check_abort()
            self._pump(self._timeout)
        self._check_abort()
        return self._coll.pop(key)

    def wait_p2p(self, src: int, tag, timeout: float | None):
        key = (src, tag)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._p2p.get(key):
            self._check_abort()
            remaining = self._timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"rank {self.rank}: recv(source={src}, tag={tag!r}) "
                        f"timed out after {timeout}s"
                    )
                remaining = min(remaining, self._timeout)
            try:
                self._pump(remaining)
            except CommunicationError:
                if deadline is None:
                    raise
                continue  # keep waiting until the caller's own deadline
        self._check_abort()
        return self._p2p[key].popleft()

    # ----------------------------------------------------------------- drain

    def finish_and_drain(self) -> None:
        """End-marker handshake + undelivered-message check.

        Each rank announces completion to every peer, waits for every
        peer's announcement, then verifies nothing tagged for it is still
        buffered. Per-producer queue FIFO guarantees any message a peer
        sent *before* its end marker has already been dispatched here, so
        a clean pass means no unmatched sends anywhere — the
        process-world equivalent of the runtime's ``drain_check``. A side
        effect the persistent pool relies on: after every rank passes, all
        inbox queues are empty, so they can carry the next launch.
        """
        self.send_all(("end", self.rank))
        while len(self._ends) < self.n - 1:
            self._check_abort()
            self._pump(self._timeout)
        pending = sum(len(q) for q in self._p2p.values())
        if pending or self._coll:
            raise CommunicationError(
                f"rank {self.rank} finished with {pending} undelivered "
                f"point-to-point message(s) and {len(self._coll)} unread "
                "collective deposit(s)"
            )


class QueueRendezvous:
    """Message-passing rendezvous: deposits cross per-rank inbox queues."""

    def __init__(self, transport: RankTransport):
        self._t = transport
        self._seq = 0

    def exchange(self, rank, op, value, clock_now):
        t = self._t
        if t.aborted:
            raise WorkerAborted("sibling rank failed")
        seq = self._seq
        self._seq += 1
        t.send_all(("coll", seq, rank, op, value, clock_now))
        ops: list[str] = [""] * t.n
        values: list[Any] = [None] * t.n
        clocks: list[float] = [0.0] * t.n
        ops[rank], values[rank], clocks[rank] = op, value, clock_now
        for src in range(t.n):
            if src != rank:
                ops[src], values[src], clocks[src] = t.wait_coll(src, seq)
        return ops, values, max(clocks)

    def abort(self) -> None:
        self._t.broadcast_abort()


class QueueMailbox:
    """Receive side of one rank's point-to-point traffic."""

    def __init__(self, transport: RankTransport):
        self._t = transport

    def recv(self, source: int, tag, timeout: float | None = None):
        return self._t.wait_p2p(source, tag, timeout)


class QueueBoard:
    """MessageBoard-compatible facade over the queue transport."""

    def __init__(self, transport: RankTransport):
        self._t = transport
        self._mailbox = QueueMailbox(transport)

    def send(self, source: int, dest: int, tag, payload) -> None:
        n = self._t.n
        if not (0 <= dest < n):
            raise CommunicationError(
                f"send: destination rank {dest} out of range [0, {n})"
            )
        if dest == self._t.rank:
            self._t.deliver_local(source, tag, payload)
        else:
            self._t.send_to(dest, ("p2p", source, tag, payload))

    def mailbox(self, rank: int):
        if rank != self._t.rank:  # pragma: no cover - misuse guard
            raise CommunicationError(
                "a rank may only read its own mailbox"
            )
        return self._mailbox

    def abort(self) -> None:
        self._t.broadcast_abort()


def build_worker_context(
    rank: int,
    p: int,
    cost_model,
    topology,
    transport: RankTransport,
    trace_enabled: bool,
):
    """One child rank's execution context over the queue transport.

    Returns ``(ctx, clock, tracer)`` — the same wiring for a per-launch
    ``process`` child and a persistent ``pool`` worker serving one job.
    """
    tracer = Tracer() if trace_enabled else NullTracer()
    clock = LogicalClock()
    engine = CollectiveEngine(
        p, cost_model, tracer, rendezvous=QueueRendezvous(transport),
        topology=topology,
    )
    board = QueueBoard(transport)
    ctx = ProcContext(
        rank=rank,
        size=p,
        comm=Comm(rank, p, engine, board, clock, cost_model),
        clock=clock,
        model=cost_model,
    )
    return ctx, clock, tracer
