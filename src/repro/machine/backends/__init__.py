"""Pluggable execution backends for the SPMD runtime.

The paper's algorithms only assume a coarse-grained SPMD machine with
collectives, so *how* ranks are physically driven is a strategy:

==============  ==========================================================
``serial``      deterministic cooperative round-robin: one rank at a time,
                handoff at communication points; fully reproducible
                interleaving + deadlock detection (CI / debugging)
``threaded``    one preemptive OS thread per rank (the historical
                simulator); NumPy releases the GIL on large kernels
``process``     one forked process per rank, shard data in shared memory,
                collectives over queues; true multi-core past the GIL
``pool``        persistent forked workers reused across launches, shards
                pinned in shared memory; zero per-launch fork/pickle cost
                for the repeated-launch (Session) workload
==============  ==========================================================

All four charge identical simulated costs through the shared
:class:`~repro.machine.collectives.CollectiveEngine`: values, RNG streams
and simulated times are bit-identical across backends (pinned by
``tests/test_backend_conformance.py``); only wall-clock differs.

Selection: ``Machine(backend=...)`` / ``SelectionPlan(backend=...)`` /
``run_spmd(..., backend=...)``, or the ``REPRO_BACKEND`` environment
variable as the process-wide default (how CI runs the whole suite under
each backend).
"""

from __future__ import annotations

import os

from ...errors import ConfigurationError
from .base import ExecutionBackend, Launch, ProcContext, SPMDResult
from .pool import PoolBackend
from .process import ProcessBackend
from .serial import SerialBackend
from .threaded import ThreadedBackend

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "Launch",
    "ProcContext",
    "SPMDResult",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
]

#: Environment variable naming the process-wide default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Registry: backend name -> shared process-wide instance. Most backends
#: are stateless; ``pool`` deliberately is not (it owns the persistent
#: workers and the pin cache), and sharing one instance is what lets every
#: Machine reuse the same warm workers.
BACKENDS: dict[str, ExecutionBackend] = {
    backend.name: backend
    for backend in (
        SerialBackend(), ThreadedBackend(), ProcessBackend(), PoolBackend()
    )
}


def available_backends() -> tuple[str, ...]:
    """The registered execution backend names, sorted."""
    return tuple(sorted(BACKENDS))


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend by name (:class:`ConfigurationError` lists the
    available names for unknown ones, same convention as the algorithm
    and balancer registries)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None


def default_backend_name() -> str:
    """``REPRO_BACKEND`` if set (validated), else ``"threaded"``."""
    name = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if not name:
        return "threaded"
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {name!r} in ${BACKEND_ENV_VAR}; "
            f"available: {sorted(BACKENDS)}"
        )
    return name


def resolve_backend(backend) -> ExecutionBackend:
    """Normalise ``None`` (env default / threaded), a name, or an
    :class:`ExecutionBackend` instance to an instance."""
    if backend is None:
        return BACKENDS[default_backend_name()]
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise ConfigurationError(
        f"backend must be a name, an ExecutionBackend or None, "
        f"got {type(backend).__name__}"
    )
