"""The ``pool`` backend: persistent forked workers, shards pinned in shm.

The ``process`` backend gives selection true multi-core execution but pays
fork + shard copy-in on *every* launch — exactly the setup overhead the
paper's coarse-grained model abstracts away. For the serving workload
(a :class:`~repro.core.session.Session` firing many selections at the
same distributed array) that cost dominates the wall clock. This backend
amortises it:

* **Fork once, serve many.** Ranks are forked the first time a launch
  needs them and then kept alive; subsequent launches push a small pickled
  job descriptor down per-rank job queues instead of spawning processes.
  :attr:`PoolBackend.fork_count` counts spawn events so tests and benches
  can assert "k launches, one fork".
* **Shards are pinned.** Every NumPy array in ``rank_args`` is copied once
  into a :class:`~repro.machine.backends._shm.SharedArray` and referenced
  in later jobs by a small token; workers inherit the pin table at fork
  and wrap buffers as zero-copy views, so repeated launches over the same
  array move no shard bytes at all. Pins are identity-keyed with a cheap
  content probe guarding against in-place mutation, and evicted LRU past
  :data:`MAX_PINNED_BYTES`. ``RawArray`` segments are inherited, never
  attached: a launch that needs a token the live generation was not forked
  with simply retires that generation and re-forks with the merged table.
* **Same fabric, same evidence.** Jobs run over the shared
  :class:`~repro.machine.backends._shm.RankTransport` queue fabric and
  :func:`~repro.machine.backends._shm.build_worker_context`, so values,
  RNG streams and simulated times are bit-identical to every other
  backend. A clean ``finish_and_drain`` leaves the inbox queues empty,
  which is what lets one set of queues carry launch after launch.
* **Failures retire the generation.** Any rank error, abort, timeout or
  worker death tears the generation down (results are epoch-tagged, so a
  straggler from a torn-down launch can never corrupt the next one) and
  raises :class:`~repro.errors.WorkerError` chaining the cause; the next
  launch re-forks transparently — the pool stays usable.
* **Closures still work.** Jobs must pickle (workers already exist, so
  inheritance cannot carry them). A launch whose program or arguments
  cannot be pickled falls back to a one-shot inherited fork — the
  ``process`` mechanism reported under this backend's name — so every
  program that runs on ``process`` runs on ``pool``.

Requires the ``fork`` start method (POSIX), same as ``process``.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ...errors import WorkerAborted
from ._shm import (
    RankTransport,
    SharedArray,
    build_worker_context,
    picklable_failure,
)
from .base import (
    ExecutionBackend,
    Launch,
    SPMDResult,
    raise_worker_failures,
    run_single_rank,
)
from .process import ProcessBackend, collect_results, require_fork

__all__ = ["PoolBackend"]

#: Environment variables forwarded from the parent to pool workers with
#: every job: workers fork once, so parent-side changes (e.g. a test
#: flipping ``REPRO_KERNELS``) must ride the job descriptor to be seen.
#: Listed literally — the machine layer must not import the kernel layer.
FORWARDED_ENV = ("REPRO_KERNELS",)

#: Soft cap on shard bytes pinned in shared memory before least-recently
#: used pins are dropped (a dropped pin only costs a re-copy + re-fork if
#: that array comes back).
MAX_PINNED_BYTES = 512 * 1024 * 1024


@dataclass(frozen=True)
class _PinRef:
    """Placeholder for a pinned shard inside a job's rank-args row."""

    token: int


def _pool_worker_main(rank, p, pins, inboxes, job_q, result_q):
    """Entire life of one pool worker: serve jobs until the ``None``
    sentinel (or termination). ``pins`` is the token → :class:`SharedArray`
    table inherited at fork; every result is tagged with the job's epoch so
    the parent can discard stragglers from torn-down launches."""
    while True:
        job = job_q.get()
        if job is None:
            return
        epoch, payload = job
        try:
            (fn, extra, args, kwargs, cost_model, topology, trace_enabled,
             timeout, env) = pickle.loads(payload)
        except BaseException as exc:  # noqa: BLE001 - must report, not hang
            result_q.put((epoch, "error", rank, picklable_failure(exc)))
            continue
        for name, value in env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        transport = RankTransport(rank, p, inboxes, timeout)
        ctx, clock, tracer = build_worker_context(
            rank, p, cost_model, topology, transport, trace_enabled
        )
        try:
            resolved = tuple(
                pins[a.token].as_array() if isinstance(a, _PinRef) else a
                for a in extra
            )
            value = fn(ctx, *resolved, *args, **kwargs)
            transport.finish_and_drain()
            events = tracer.events() if trace_enabled else None
            result_q.put(
                (epoch, "done", rank, value, clock.now, clock.breakdown(),
                 events)
            )
        except WorkerAborted:
            result_q.put((epoch, "aborted", rank))
        except BaseException as exc:  # noqa: BLE001 - must report, not leak
            transport.broadcast_abort()
            result_q.put((epoch, "error", rank, picklable_failure(exc)))


class _RankPool:
    """One generation-managed set of ``p`` persistent workers."""

    def __init__(self, backend: "PoolBackend", p: int):
        self.backend = backend
        self.p = p
        self.procs = None
        self.job_qs: list = []
        self.inboxes: list = []
        self.result_q = None
        self.epoch = 0
        self.forked_tokens: frozenset[int] = frozenset()

    @property
    def alive(self) -> bool:
        return self.procs is not None and all(
            pr.is_alive() for pr in self.procs
        )

    def spawn(self, mp_ctx, pin_table: dict[int, SharedArray]) -> None:
        """Start a fresh generation inheriting a snapshot of ``pin_table``."""
        self.teardown()
        self.inboxes = [mp_ctx.Queue() for _ in range(self.p)]
        self.job_qs = [mp_ctx.Queue() for _ in range(self.p)]
        self.result_q = mp_ctx.Queue()
        pins = dict(pin_table)
        self.procs = [
            mp_ctx.Process(
                target=_pool_worker_main,
                args=(r, self.p, pins, self.inboxes, self.job_qs[r],
                      self.result_q),
                name=f"repro-pool-rank-{r}",
                daemon=True,
            )
            for r in range(self.p)
        ]
        for pr in self.procs:
            pr.start()
        self.forked_tokens = frozenset(pins)
        self.backend.fork_count += 1

    def teardown(self) -> None:
        """Retire the generation: sentinel, join, terminate stragglers,
        discard the queues (stale messages die with them)."""
        if self.procs is None:
            return
        for q in self.job_qs:
            try:
                q.put_nowait(None)
            except Exception:
                pass
        for pr in self.procs:
            pr.join(timeout=0.5)
        for pr in self.procs:
            if pr.is_alive():
                pr.terminate()
                pr.join(timeout=5.0)
        for q in [*self.job_qs, *self.inboxes, self.result_q]:
            q.close()
            q.cancel_join_thread()
        self.procs = None
        self.job_qs = []
        self.inboxes = []
        self.result_q = None
        self.forked_tokens = frozenset()


class _InheritedLaunchFallback(ProcessBackend):
    """One-shot forks for unpicklable programs, reported as ``pool``."""

    name = "pool"


class PoolBackend(ExecutionBackend):
    """Persistent forked workers with shared-memory-pinned shards."""

    name = "pool"

    #: Seconds a worker may be observed dead without having reported
    #: before the parent declares it crashed (matches ``process``).
    DEAD_GRACE = 1.0

    def __init__(self):
        self._pools: dict[int, _RankPool] = {}
        self._pin_cache: OrderedDict[int, tuple[np.ndarray, int]] = (
            OrderedDict()
        )
        self._pin_table: dict[int, SharedArray] = {}
        self._pinned_bytes = 0
        self._next_token = 0
        #: Cumulative worker spawn events (generation forks + one-shot
        #: fallback launches). Survives :meth:`shutdown` so "k launches,
        #: one fork" stays assertable across a pool's whole life.
        self.fork_count = 0
        #: Launches served by an already-live generation (zero forks).
        self.reuse_count = 0
        self._fallback = _InheritedLaunchFallback()
        atexit.register(self.shutdown)

    # ------------------------------------------------------------- pinning

    def _unpin(self, key: int) -> None:
        _, token = self._pin_cache.pop(key)
        shared = self._pin_table.pop(token)
        self._pinned_bytes -= shared.nbytes

    def _pin(self, arr: np.ndarray) -> int:
        """Pin ``arr`` (identity-keyed) and return its token.

        The cache holds a strong reference to the original array, so its
        ``id`` stays valid for the cache's lifetime; ``matches`` catches
        in-place mutation of a previously pinned array.
        """
        key = id(arr)
        hit = self._pin_cache.get(key)
        if hit is not None:
            ref, token = hit
            if ref is arr and self._pin_table[token].matches(arr):
                self._pin_cache.move_to_end(key)
                return token
            self._unpin(key)
        shared = SharedArray(arr)
        token = self._next_token
        self._next_token += 1
        self._pin_table[token] = shared
        self._pin_cache[key] = (arr, token)
        self._pinned_bytes += shared.nbytes
        return token

    def _evict_over_budget(self, protect: frozenset[int]) -> None:
        """Drop least-recently used pins past the byte budget, never
        touching the tokens the in-flight launch needs."""
        for key in list(self._pin_cache):
            if self._pinned_bytes <= MAX_PINNED_BYTES:
                break
            if self._pin_cache[key][1] in protect:
                continue
            self._unpin(key)

    def _pin_rank_args(self, rank_args):
        """Replace arrays with pin tokens; returns ``(rows, needed)``."""
        if rank_args is None:
            return None, frozenset()
        rows, needed = [], set()
        for row in rank_args:
            out = []
            for a in row:
                if isinstance(a, np.ndarray):
                    token = self._pin(a)
                    needed.add(token)
                    out.append(_PinRef(token))
                else:
                    out.append(a)
            rows.append(tuple(out))
        needed = frozenset(needed)
        self._evict_over_budget(needed)
        return rows, needed

    # ------------------------------------------------------------ dispatch

    def _encode_jobs(self, launch: Launch, rows) -> list[bytes] | None:
        """Pickle one job descriptor per rank, or ``None`` if the launch
        cannot cross into already-running workers."""
        env = {name: os.environ.get(name) for name in FORWARDED_ENV}
        try:
            payloads = []
            for rank in range(launch.n_procs):
                extra = rows[rank] if rows is not None else ()
                payloads.append(pickle.dumps((
                    launch.fn, extra, launch.args, launch.kwargs,
                    launch.cost_model, launch.topology,
                    launch.tracer.enabled, launch.join_timeout, env,
                )))
            return payloads
        except Exception:
            return None

    def execute(self, launch: Launch) -> SPMDResult:
        p = launch.n_procs
        if p == 1:
            return run_single_rank(launch, self.name)
        mp_ctx = require_fork(self.name)
        # Probe the launch-wide parts first so closure programs skip
        # straight to the fallback without pinning anything.
        try:
            pickle.dumps(
                (launch.fn, launch.args, launch.kwargs)
            )
        except Exception:
            self.fork_count += 1
            return self._fallback.execute(launch)
        rows, needed = self._pin_rank_args(launch.rank_args)
        payloads = self._encode_jobs(launch, rows)
        if payloads is None:
            self.fork_count += 1
            return self._fallback.execute(launch)

        # Wall clock from here mirrors the process backend: the fork (when
        # one happens) is inside the measurement, argument staging is not.
        t0 = time.perf_counter()
        pool = self._pools.get(p)
        if pool is None:
            pool = self._pools[p] = _RankPool(self, p)
        if not pool.alive or not needed <= pool.forked_tokens:
            pool.spawn(mp_ctx, self._pin_table)
        else:
            self.reuse_count += 1

        pool.epoch += 1
        epoch = pool.epoch
        for rank in range(p):
            pool.job_qs[rank].put((epoch, payloads[rank]))
        values, clocks, breakdowns, trace_events, errors = collect_results(
            pool.procs, pool.result_q, p, launch.join_timeout,
            self.DEAD_GRACE, epoch=epoch, inboxes=pool.inboxes,
        )
        wall = time.perf_counter() - t0

        if any(errors):
            # Retire the generation: queue state after a failed launch is
            # unknowable. The next launch re-forks — the pool recovers.
            pool.teardown()
            raise_worker_failures(errors)
        for rank in sorted(trace_events):
            for event in trace_events[rank]:
                launch.tracer.record(event)
        return SPMDResult(
            values=values,
            clocks=clocks,
            breakdowns=breakdowns,
            wall_time=wall,
            tracer=launch.tracer,
            backend=self.name,
            topology=launch.topology.name,
        )

    # ------------------------------------------------------------ lifetime

    @property
    def pinned_bytes(self) -> int:
        """Shard bytes currently pinned in shared memory — the resident
        cost a long-lived service carries between launches (bounded by
        ``MAX_PINNED_BYTES`` via LRU eviction)."""
        return self._pinned_bytes

    def shutdown(self) -> None:
        """Retire every generation and drop all pins (counters survive).

        This is the hook behind ``SPMDRuntime.release_workers`` — the
        graceful-shutdown seam a draining ``repro.serve`` service calls.
        The backend stays usable: the next launch re-pins and re-forks a
        fresh generation transparently.
        """
        for pool in self._pools.values():
            pool.teardown()
        self._pools.clear()
        self._pin_cache.clear()
        self._pin_table.clear()
        self._pinned_bytes = 0
