"""The ``serial`` backend: deterministic cooperative round-robin execution.

Exactly ONE rank executes at any instant. Each rank runs until it blocks
at a communication point (a collective rendezvous or a mailbox receive),
then hands a run token to the next live rank in round-robin order. The
interleaving is therefore a pure function of the program — bit-identical
runs every time, no preemption, no lock contention — which makes this the
backend of choice for CI and debugging. Values, RNG streams and simulated
times are identical to the ``threaded`` backend (the differential suite in
``tests/test_backend_conformance.py`` pins exactly that).

Ranks need real call stacks, so they are carried by parked OS threads;
"serial" refers to the execution discipline (the scheduler never lets two
ranks run concurrently), not to the absence of threads.

A bonus of cooperative scheduling is *deadlock detection*: if the token
completes a full cycle in which every live rank is blocked and nothing
changed (no message delivered, no barrier arrival), the run cannot ever
progress — the backend raises a clean
:class:`~repro.errors.CommunicationError` naming each rank's blocking
point instead of hanging until a timeout.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ...errors import CommunicationError, WorkerAborted
from ..channels import Mailbox, MessageBoard
from ..clock import LogicalClock
from ..collectives import CollectiveEngine, SharedRendezvous
from ..comm import Comm
from .base import (
    ExecutionBackend,
    Launch,
    ProcContext,
    SPMDResult,
    raise_worker_failures,
    run_single_rank,
)

__all__ = ["SerialBackend"]


class _TokenScheduler:
    """Round-robin run token over ``n`` cooperating rank threads.

    Only the token holder executes; every blocking primitive calls
    :meth:`yield_blocked`, which passes the token to the next live rank
    and parks until it comes back. ``progress()`` marks any state change a
    blocked rank could be waiting on (message delivered, barrier arrival
    or release, abort, rank finished); a full token cycle with every live
    rank blocked and zero progress is a deadlock.
    """

    def __init__(self, n: int):
        self._n = n
        self._cond = threading.Condition()
        self._turn = 0
        self._alive = [True] * n
        self._blocked: dict[int, str] = {}
        self._stalled_yields = 0
        self._local = threading.local()

    # -- rank threads --------------------------------------------------------

    def register(self, rank: int) -> None:
        """Bind the calling thread to ``rank`` and park until its turn."""
        self._local.rank = rank
        with self._cond:
            while self._turn != rank:
                self._cond.wait()

    def progress(self) -> None:
        """Record a state change some blocked rank may be waiting on."""
        with self._cond:
            self._stalled_yields = 0

    def yield_blocked(self, reason: str) -> None:
        """Hand the token on; return when it comes back to this rank.

        Raises
        ------
        CommunicationError
            When every live rank is blocked and a whole token cycle made
            no progress: the run is deadlocked and can never resume.
        """
        rank = self._local.rank
        with self._cond:
            self._blocked[rank] = reason
            self._stalled_yields += 1
            live = sum(self._alive)
            if self._stalled_yields > live + 1:
                waits = ", ".join(
                    f"rank {r} in {w}" for r, w in sorted(self._blocked.items())
                )
                raise CommunicationError(
                    f"serial backend deadlock: all {live} live ranks are "
                    f"blocked with no possible progress ({waits})"
                )
            self._pass_token(rank)
            while self._turn != rank:
                self._cond.wait()
            self._blocked.pop(rank, None)

    def finish(self, rank: int) -> None:
        """Mark ``rank`` done (returned or raised) and pass the token on."""
        with self._cond:
            self._alive[rank] = False
            self._stalled_yields = 0
            self._pass_token(rank)

    # -- internals -----------------------------------------------------------

    def _pass_token(self, rank: int) -> None:
        """Move the token to the next live rank after ``rank`` (lock held)."""
        for step in range(1, self._n + 1):
            nxt = (rank + step) % self._n
            if self._alive[nxt]:
                self._turn = nxt
                self._cond.notify_all()
                return
        # No live rank left: nothing to schedule (the run is over).


class _CooperativeBarrier:
    """Sense-reversing barrier that yields the scheduler token while waiting.

    API-compatible with :class:`~repro.machine.barrier.AbortableBarrier`
    (``wait``/``abort``/``aborted``) so it slots straight into a
    :class:`~repro.machine.collectives.SharedRendezvous`.
    """

    def __init__(self, scheduler: _TokenScheduler, n_parties: int):
        self._scheduler = scheduler
        self._n = n_parties
        self._arrived = 0
        self._generation = 0
        self._aborted = False

    @property
    def aborted(self) -> bool:
        return self._aborted

    def abort(self) -> None:
        self._aborted = True
        self._scheduler.progress()

    def wait(self, timeout: float | None = None) -> int:
        if self._aborted:
            raise WorkerAborted("barrier aborted")
        gen = self._generation
        self._arrived += 1
        self._scheduler.progress()
        if self._arrived == self._n:
            self._arrived = 0
            self._generation += 1
            return gen
        while self._generation == gen and not self._aborted:
            self._scheduler.yield_blocked("barrier")
        if self._aborted:
            raise WorkerAborted("barrier aborted")
        return gen


class _CooperativeMailbox(Mailbox):
    """Mailbox whose receive yields the token instead of blocking.

    ``timeout`` is ignored: a receive that can never be matched surfaces
    through the scheduler's deadlock detection, which is both faster and
    more precise than a wall-clock timeout.
    """

    def __init__(self, owner_rank: int, scheduler: _TokenScheduler):
        super().__init__(owner_rank)
        self._scheduler = scheduler

    def deliver(self, source, tag, payload) -> None:
        super().deliver(source, tag, payload)
        self._scheduler.progress()

    def abort(self) -> None:
        super().abort()
        self._scheduler.progress()

    def recv(self, source, tag, timeout=None):
        key = (source, tag)
        while True:
            if self._aborted:
                raise WorkerAborted("mailbox aborted")
            q = self._queues.get(key)
            if q:
                return q.popleft()
            self._scheduler.yield_blocked(
                f"recv(source={source}, tag={tag!r})"
            )


class SerialBackend(ExecutionBackend):
    """Deterministic cooperative round-robin scheduling of all ranks."""

    name = "serial"

    def execute(self, launch: Launch) -> SPMDResult:
        p = launch.n_procs
        if p == 1:
            return run_single_rank(launch, self.name)
        scheduler = _TokenScheduler(p)
        engine = CollectiveEngine(
            p,
            launch.cost_model,
            launch.tracer,
            rendezvous=SharedRendezvous(
                p, barrier=_CooperativeBarrier(scheduler, p)
            ),
            topology=launch.topology,
        )
        board = MessageBoard(
            p, mailbox_factory=lambda r: _CooperativeMailbox(r, scheduler)
        )
        clocks = [LogicalClock() for _ in range(p)]
        results: list[Any] = [None] * p
        errors: list[BaseException | None] = [None] * p

        def worker(rank: int) -> None:
            scheduler.register(rank)
            ctx = ProcContext(
                rank=rank,
                size=p,
                comm=Comm(
                    rank, p, engine, board, clocks[rank], launch.cost_model
                ),
                clock=clocks[rank],
                model=launch.cost_model,
            )
            try:
                results[rank] = launch.call(ctx)
            except WorkerAborted as exc:
                errors[rank] = exc
            except BaseException as exc:  # noqa: BLE001 - must not leak threads
                errors[rank] = exc
                engine.abort()
                board.abort()
            finally:
                scheduler.finish(rank)

        t0 = time.perf_counter()
        threads = [
            threading.Thread(
                target=worker, args=(r,), name=f"repro-serial-rank-{r}",
                daemon=True,
            )
            for r in range(p)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=launch.join_timeout)
        stuck = [t.name for t in threads if t.is_alive()]
        if stuck:  # pragma: no cover - the scheduler cannot leave waiters
            engine.abort()
            board.abort()
            for t in threads:
                t.join(timeout=5.0)
        wall = time.perf_counter() - t0

        raise_worker_failures(errors)
        board.drain_check()
        return SPMDResult(
            values=results,
            clocks=[c.now for c in clocks],
            breakdowns=[c.breakdown() for c in clocks],
            wall_time=wall,
            tracer=launch.tracer,
            backend=self.name,
            topology=launch.topology.name,
        )
