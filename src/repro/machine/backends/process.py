"""The ``process`` backend: one forked OS process per rank.

Python threads share one GIL; NumPy releases it for large kernels, but the
interpreter-level parts of every iteration still serialise. This backend
forks one worker process per rank so large-``n`` selections get true
multi-core execution:

* **Rank-local data rides shared memory.** Every NumPy array in
  ``rank_args`` is copied once into an anonymous shared-memory buffer
  (``multiprocessing.RawArray``) before the fork; each child wraps its
  buffer as a zero-copy NumPy view, so shards are never pickled.
* **Collectives are message-passing.** A :class:`_QueueRendezvous` ships
  each rank's deposit to every peer through per-rank inbox queues and
  plugs into the shared
  :class:`~repro.machine.collectives.CollectiveEngine`, so the cost
  formulas — and therefore the simulated times — are bit-identical to the
  ``serial`` and ``threaded`` backends.
* **Failures abort cleanly.** A raising rank broadcasts an abort to every
  peer and reports the (pickled) original exception to the parent, which
  terminates stragglers and raises
  :class:`~repro.errors.WorkerError` chaining the cause. No leaked
  processes: every child is joined (or terminated) before ``execute``
  returns.

Requires the ``fork`` start method (POSIX): programs are arbitrary
closures, which only survive into children by inheritance, never by
pickling.
"""

from __future__ import annotations

import ctypes
import multiprocessing
import pickle
import queue as queue_module
import time
from collections import deque
from typing import Any

import numpy as np

from ...errors import (
    CommunicationError,
    ConfigurationError,
    WorkerAborted,
)
from ..clock import LogicalClock
from ..collectives import CollectiveEngine
from ..comm import Comm
from ..trace import NullTracer, Tracer
from .base import (
    ExecutionBackend,
    Launch,
    ProcContext,
    SPMDResult,
    raise_worker_failures,
    run_single_rank,
)

__all__ = ["ProcessBackend"]


class UnpicklableWorkerFailure(RuntimeError):
    """Stand-in for a worker exception whose type cannot cross processes."""


def _picklable_failure(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return UnpicklableWorkerFailure(f"{type(exc).__name__}: {exc}")


class _SharedArray:
    """One rank shard copied into an anonymous shared-memory buffer.

    Created in the parent before the fork; children inherit the mapping
    and wrap it as a zero-copy NumPy view, so shard bytes cross the
    process boundary exactly once (the parent-side copy-in) regardless of
    how often ranks scan them.
    """

    def __init__(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        self.dtype = arr.dtype
        self.shape = arr.shape
        self.size = arr.size
        self._raw = multiprocessing.RawArray(ctypes.c_byte, max(arr.nbytes, 1))
        if arr.size:
            self.as_array()[...] = arr

    def as_array(self) -> np.ndarray:
        return np.frombuffer(
            self._raw, dtype=self.dtype, count=self.size
        ).reshape(self.shape)


def _share_rank_args(rank_args):
    """Replace every NumPy array in per-rank args with a shared buffer."""
    if rank_args is None:
        return None
    return [
        tuple(
            _SharedArray(a) if isinstance(a, np.ndarray) else a for a in row
        )
        for row in rank_args
    ]


def _resolve_shared(extra):
    return tuple(
        a.as_array() if isinstance(a, _SharedArray) else a for a in extra
    )


class _RankTransport:
    """One child's view of the inter-rank queues: demux + buffering.

    Every rank owns one inbox queue; peers push ``coll`` (collective
    deposits, sequence-numbered), ``p2p`` (tagged point-to-point
    payloads), ``end`` (clean-completion marker used by the drain check)
    and ``abort`` messages into it. Per-producer FIFO order is what makes
    the end-marker drain protocol sound.
    """

    def __init__(self, rank: int, n: int, inboxes, timeout: float):
        self.rank = rank
        self.n = n
        self.aborted = False
        self._inboxes = inboxes
        self._timeout = timeout
        self._coll: dict[tuple[int, int], tuple] = {}
        self._p2p: dict[tuple[int, Any], deque] = {}
        self._ends: set[int] = set()

    # ---------------------------------------------------------------- sends

    def send_to(self, dest: int, msg: tuple) -> None:
        self._inboxes[dest].put(msg)

    def send_all(self, msg: tuple) -> None:
        for dest in range(self.n):
            if dest != self.rank:
                self.send_to(dest, msg)

    def broadcast_abort(self) -> None:
        self.aborted = True
        self.send_all(("abort",))

    def deliver_local(self, source: int, tag, payload) -> None:
        """A self-send: never touches a queue."""
        self._p2p.setdefault((source, tag), deque()).append(payload)

    # --------------------------------------------------------------- receive

    def _pump(self, timeout: float) -> None:
        """Read and dispatch one inbound message (or time out)."""
        try:
            msg = self._inboxes[self.rank].get(timeout=timeout)
        except queue_module.Empty:
            raise CommunicationError(
                f"rank {self.rank}: no inter-rank message within {timeout}s "
                "(peer stalled or desynchronised)"
            ) from None
        kind = msg[0]
        if kind == "coll":
            _, seq, src, op, value, clock_now = msg
            self._coll[(src, seq)] = (op, value, clock_now)
        elif kind == "p2p":
            _, src, tag, payload = msg
            self._p2p.setdefault((src, tag), deque()).append(payload)
        elif kind == "end":
            self._ends.add(msg[1])
        else:  # "abort"
            self.aborted = True

    def _check_abort(self) -> None:
        if self.aborted:
            raise WorkerAborted("sibling rank failed")

    def wait_coll(self, src: int, seq: int) -> tuple:
        key = (src, seq)
        while key not in self._coll:
            self._check_abort()
            self._pump(self._timeout)
        self._check_abort()
        return self._coll.pop(key)

    def wait_p2p(self, src: int, tag, timeout: float | None):
        key = (src, tag)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._p2p.get(key):
            self._check_abort()
            remaining = self._timeout
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"rank {self.rank}: recv(source={src}, tag={tag!r}) "
                        f"timed out after {timeout}s"
                    )
                remaining = min(remaining, self._timeout)
            try:
                self._pump(remaining)
            except CommunicationError:
                if deadline is None:
                    raise
                continue  # keep waiting until the caller's own deadline
        self._check_abort()
        return self._p2p[key].popleft()

    # ----------------------------------------------------------------- drain

    def finish_and_drain(self) -> None:
        """End-marker handshake + undelivered-message check.

        Each rank announces completion to every peer, waits for every
        peer's announcement, then verifies nothing tagged for it is still
        buffered. Per-producer queue FIFO guarantees any message a peer
        sent *before* its end marker has already been dispatched here, so
        a clean pass means no unmatched sends anywhere — the
        process-world equivalent of the runtime's ``drain_check``.
        """
        self.send_all(("end", self.rank))
        while len(self._ends) < self.n - 1:
            self._check_abort()
            self._pump(self._timeout)
        pending = sum(len(q) for q in self._p2p.values())
        if pending or self._coll:
            raise CommunicationError(
                f"rank {self.rank} finished with {pending} undelivered "
                f"point-to-point message(s) and {len(self._coll)} unread "
                "collective deposit(s)"
            )


class _QueueRendezvous:
    """Message-passing rendezvous: deposits cross per-rank inbox queues."""

    def __init__(self, transport: _RankTransport):
        self._t = transport
        self._seq = 0

    def exchange(self, rank, op, value, clock_now):
        t = self._t
        if t.aborted:
            raise WorkerAborted("sibling rank failed")
        seq = self._seq
        self._seq += 1
        t.send_all(("coll", seq, rank, op, value, clock_now))
        ops: list[str] = [""] * t.n
        values: list[Any] = [None] * t.n
        clocks: list[float] = [0.0] * t.n
        ops[rank], values[rank], clocks[rank] = op, value, clock_now
        for src in range(t.n):
            if src != rank:
                ops[src], values[src], clocks[src] = t.wait_coll(src, seq)
        return ops, values, max(clocks)

    def abort(self) -> None:
        self._t.broadcast_abort()


class _ProcessMailbox:
    """Receive side of one rank's point-to-point traffic."""

    def __init__(self, transport: _RankTransport):
        self._t = transport

    def recv(self, source: int, tag, timeout: float | None = None):
        return self._t.wait_p2p(source, tag, timeout)


class _ProcessBoard:
    """MessageBoard-compatible facade over the queue transport."""

    def __init__(self, transport: _RankTransport):
        self._t = transport
        self._mailbox = _ProcessMailbox(transport)

    def send(self, source: int, dest: int, tag, payload) -> None:
        n = self._t.n
        if not (0 <= dest < n):
            raise CommunicationError(
                f"send: destination rank {dest} out of range [0, {n})"
            )
        if dest == self._t.rank:
            self._t.deliver_local(source, tag, payload)
        else:
            self._t.send_to(dest, ("p2p", source, tag, payload))

    def mailbox(self, rank: int):
        if rank != self._t.rank:  # pragma: no cover - misuse guard
            raise CommunicationError(
                "process backend: a rank may only read its own mailbox"
            )
        return self._mailbox

    def abort(self) -> None:
        self._t.broadcast_abort()


def _child_main(launch: Launch, rank: int, shared_rank_args, inboxes,
                result_q) -> None:
    """Entire life of one rank process (runs in the forked child)."""
    p = launch.n_procs
    transport = _RankTransport(rank, p, inboxes, launch.join_timeout)
    tracer = Tracer() if launch.tracer.enabled else NullTracer()
    clock = LogicalClock()
    engine = CollectiveEngine(
        p, launch.cost_model, tracer, rendezvous=_QueueRendezvous(transport),
        topology=launch.topology,
    )
    board = _ProcessBoard(transport)
    ctx = ProcContext(
        rank=rank,
        size=p,
        comm=Comm(rank, p, engine, board, clock, launch.cost_model),
        clock=clock,
        model=launch.cost_model,
    )
    try:
        extra = (
            _resolve_shared(shared_rank_args[rank])
            if shared_rank_args is not None
            else ()
        )
        value = launch.fn(ctx, *extra, *launch.args, **launch.kwargs)
        transport.finish_and_drain()
        events = tracer.events() if tracer.enabled else None
        result_q.put(
            ("done", rank, value, clock.now, clock.breakdown(), events)
        )
    except WorkerAborted:
        result_q.put(("aborted", rank))
    except BaseException as exc:  # noqa: BLE001 - must report, not leak
        transport.broadcast_abort()
        result_q.put(("error", rank, _picklable_failure(exc)))


class ProcessBackend(ExecutionBackend):
    """One forked process per rank; shared-memory shards, queue collectives."""

    name = "process"

    #: Seconds a child may be observed dead without having reported before
    #: the parent declares it crashed (covers the put-then-exit window).
    DEAD_GRACE = 1.0

    def execute(self, launch: Launch) -> SPMDResult:
        p = launch.n_procs
        if p == 1:
            return run_single_rank(launch, self.name)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the process backend requires the 'fork' start method "
                "(POSIX only); use the 'serial' or 'threaded' backend here"
            )
        ctx = multiprocessing.get_context("fork")
        inboxes = [ctx.Queue() for _ in range(p)]
        result_q = ctx.Queue()
        shared_rank_args = _share_rank_args(launch.rank_args)
        procs = [
            ctx.Process(
                target=_child_main,
                args=(launch, r, shared_rank_args, inboxes, result_q),
                name=f"repro-proc-rank-{r}",
                daemon=True,
            )
            for r in range(p)
        ]
        t0 = time.perf_counter()
        for pr in procs:
            pr.start()

        values: list[Any] = [None] * p
        clocks = [0.0] * p
        breakdowns: list[Any] = [None] * p
        trace_events: dict[int, list] = {}
        errors: list[BaseException | None] = [None] * p
        remaining = set(range(p))
        deadline = time.monotonic() + launch.join_timeout
        dead_since: dict[int, float] = {}
        while remaining:
            try:
                msg = result_q.get(timeout=0.2)
            except queue_module.Empty:
                now = time.monotonic()
                for r in sorted(remaining):
                    if procs[r].is_alive():
                        dead_since.pop(r, None)
                        continue
                    # Dead without a report: allow a grace period for its
                    # final queue message to surface, then declare a crash.
                    if now - dead_since.setdefault(r, now) > self.DEAD_GRACE:
                        errors[r] = RuntimeError(
                            f"rank {r} process died with exit code "
                            f"{procs[r].exitcode} before reporting a result"
                        )
                        remaining.discard(r)
                if now > deadline:
                    for r in sorted(remaining):
                        errors[r] = RuntimeError(
                            f"rank {r} did not report within "
                            f"{launch.join_timeout}s"
                        )
                    remaining.clear()
                continue
            kind, rank = msg[0], msg[1]
            remaining.discard(rank)
            if kind == "done":
                _, _, value, now_, breakdown, events = msg
                values[rank] = value
                clocks[rank] = now_
                breakdowns[rank] = breakdown
                if events:
                    trace_events[rank] = events
            elif kind == "error":
                errors[rank] = msg[2]
            else:  # "aborted"
                errors[rank] = WorkerAborted(f"rank {rank} aborted")

        for pr in procs:
            pr.join(timeout=5.0)
        leaked = [pr for pr in procs if pr.is_alive()]
        for pr in leaked:
            pr.terminate()
            pr.join(timeout=5.0)
        for q in [*inboxes, result_q]:
            q.close()
        wall = time.perf_counter() - t0

        raise_worker_failures(errors)
        for rank in sorted(trace_events):
            for event in trace_events[rank]:
                launch.tracer.record(event)
        return SPMDResult(
            values=values,
            clocks=clocks,
            breakdowns=breakdowns,
            wall_time=wall,
            tracer=launch.tracer,
            backend=self.name,
            topology=launch.topology.name,
        )
