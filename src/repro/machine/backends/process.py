"""The ``process`` backend: one forked OS process per rank.

Python threads share one GIL; NumPy releases it for large kernels, but the
interpreter-level parts of every iteration still serialise. This backend
forks one worker process per rank so large-``n`` selections get true
multi-core execution:

* **Rank-local data rides shared memory.** Every NumPy array in
  ``rank_args`` is copied once into an anonymous shared-memory buffer
  (``multiprocessing.RawArray``) before the fork; each child wraps its
  buffer as a zero-copy NumPy view, so shards are never pickled.
* **Collectives are message-passing.** A
  :class:`~repro.machine.backends._shm.QueueRendezvous` ships each rank's
  deposit to every peer through per-rank inbox queues and plugs into the
  shared :class:`~repro.machine.collectives.CollectiveEngine`, so the cost
  formulas — and therefore the simulated times — are bit-identical to the
  ``serial`` and ``threaded`` backends.
* **Failures abort cleanly.** A raising rank broadcasts an abort to every
  peer and reports the (pickled) original exception to the parent, which
  terminates stragglers and raises
  :class:`~repro.errors.WorkerError` chaining the cause. No leaked
  processes: every child is joined (or terminated) before ``execute``
  returns.

The shared-memory and queue-transport machinery lives in
:mod:`repro.machine.backends._shm`, shared with the persistent ``pool``
backend (which amortises this backend's per-launch fork cost away).

Requires the ``fork`` start method (POSIX): programs are arbitrary
closures, which only survive into children by inheritance, never by
pickling.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from typing import Any

from ...errors import ConfigurationError, WorkerAborted
from ._shm import (
    RankTransport,
    SharedArray,
    UnpicklableWorkerFailure,
    build_worker_context,
    picklable_failure,
    resolve_shared,
    share_rank_args,
)
from .base import (
    ExecutionBackend,
    Launch,
    SPMDResult,
    raise_worker_failures,
    run_single_rank,
)

__all__ = ["ProcessBackend", "UnpicklableWorkerFailure"]

# Backwards-compatible aliases (tests exercise the transport mechanics
# through the historical underscore names).
_SharedArray = SharedArray
_RankTransport = RankTransport
_share_rank_args = share_rank_args
_resolve_shared = resolve_shared
_picklable_failure = picklable_failure


def _child_main(launch: Launch, rank: int, shared_rank_args, inboxes,
                result_q) -> None:
    """Entire life of one rank process (runs in the forked child)."""
    p = launch.n_procs
    transport = RankTransport(rank, p, inboxes, launch.join_timeout)
    ctx, clock, tracer = build_worker_context(
        rank, p, launch.cost_model, launch.topology, transport,
        launch.tracer.enabled,
    )
    try:
        extra = (
            resolve_shared(shared_rank_args[rank])
            if shared_rank_args is not None
            else ()
        )
        value = launch.fn(ctx, *extra, *launch.args, **launch.kwargs)
        transport.finish_and_drain()
        events = tracer.events() if tracer.enabled else None
        result_q.put(
            ("done", rank, value, clock.now, clock.breakdown(), events)
        )
    except WorkerAborted:
        result_q.put(("aborted", rank))
    except BaseException as exc:  # noqa: BLE001 - must report, not leak
        transport.broadcast_abort()
        result_q.put(("error", rank, picklable_failure(exc)))


def require_fork(backend_name: str) -> multiprocessing.context.BaseContext:
    """The multi-process backends need ``fork`` (POSIX): programs may be
    arbitrary closures, which only reach children by inheritance."""
    if "fork" not in multiprocessing.get_all_start_methods():
        raise ConfigurationError(
            f"the {backend_name} backend requires the 'fork' start method "
            "(POSIX only); use the 'serial' or 'threaded' backend here"
        )
    return multiprocessing.get_context("fork")


def collect_results(procs, result_q, p: int, join_timeout: float,
                    dead_grace: float, epoch: int | None = None,
                    inboxes=None):
    """Drain worker reports until every rank is accounted for.

    Shared by the per-launch ``process`` collection loop and the pool's
    per-job one. Workers that die without reporting (crash, ``SIGKILL``)
    are detected via liveness polling with a ``dead_grace`` window for
    their final queue message to surface; ``epoch``-tagged messages from a
    previous pool launch are discarded. A dead worker cannot broadcast its
    own abort the way a raising one does, so when ``inboxes`` is given the
    *parent* aborts the surviving ranks (they would otherwise block on the
    dead peer until ``join_timeout``). Returns
    ``(values, clocks, breakdowns, trace_events, errors)``.

    The whole-launch deadline is a *backstop*, not the primary hang
    detector — a genuinely deadlocked worker raises its own per-message
    stall timeout and reports the error here. It therefore scales with
    rank count (many ranks oversubscribing few cores legitimately stretch
    a launch) and extends whenever a rank does report.
    """
    values: list[Any] = [None] * p
    clocks = [0.0] * p
    breakdowns: list[Any] = [None] * p
    trace_events: dict[int, list] = {}
    errors: list[BaseException | None] = [None] * p
    remaining = set(range(p))
    launch_timeout = join_timeout * max(1.0, p / 16.0)
    deadline = time.monotonic() + launch_timeout
    dead_since: dict[int, float] = {}
    while remaining:
        try:
            msg = result_q.get(timeout=0.2)
        except queue_module.Empty:
            now = time.monotonic()
            for r in sorted(remaining):
                if procs[r].is_alive():
                    dead_since.pop(r, None)
                    continue
                # Dead without a report: allow a grace period for its
                # final queue message to surface, then declare a crash.
                if now - dead_since.setdefault(r, now) > dead_grace:
                    errors[r] = RuntimeError(
                        f"rank {r} process died with exit code "
                        f"{procs[r].exitcode} before reporting a result"
                    )
                    remaining.discard(r)
                    if inboxes is not None:
                        for q in inboxes:
                            try:
                                q.put_nowait(("abort",))
                            except Exception:
                                pass
            if now > deadline:
                for r in sorted(remaining):
                    errors[r] = RuntimeError(
                        f"rank {r} did not report within {launch_timeout}s"
                    )
                remaining.clear()
            continue
        if epoch is not None:
            if msg[0] != epoch:  # stale message from a torn-down launch
                continue
            msg = msg[1:]
        deadline = max(deadline, time.monotonic() + join_timeout)
        kind, rank = msg[0], msg[1]
        remaining.discard(rank)
        if kind == "done":
            _, _, value, now_, breakdown, events = msg
            values[rank] = value
            clocks[rank] = now_
            breakdowns[rank] = breakdown
            if events:
                trace_events[rank] = events
        elif kind == "error":
            errors[rank] = msg[2]
        else:  # "aborted"
            errors[rank] = WorkerAborted(f"rank {rank} aborted")
    return values, clocks, breakdowns, trace_events, errors


class ProcessBackend(ExecutionBackend):
    """One forked process per rank; shared-memory shards, queue collectives."""

    name = "process"

    #: Seconds a child may be observed dead without having reported before
    #: the parent declares it crashed (covers the put-then-exit window).
    DEAD_GRACE = 1.0

    def execute(self, launch: Launch) -> SPMDResult:
        p = launch.n_procs
        if p == 1:
            return run_single_rank(launch, self.name)
        ctx = require_fork(self.name)
        inboxes = [ctx.Queue() for _ in range(p)]
        result_q = ctx.Queue()
        shared_rank_args = share_rank_args(launch.rank_args)
        procs = [
            ctx.Process(
                target=_child_main,
                args=(launch, r, shared_rank_args, inboxes, result_q),
                name=f"repro-proc-rank-{r}",
                daemon=True,
            )
            for r in range(p)
        ]
        t0 = time.perf_counter()
        for pr in procs:
            pr.start()

        values, clocks, breakdowns, trace_events, errors = collect_results(
            procs, result_q, p, launch.join_timeout, self.DEAD_GRACE,
            inboxes=inboxes,
        )

        for pr in procs:
            pr.join(timeout=5.0)
        leaked = [pr for pr in procs if pr.is_alive()]
        for pr in leaked:
            pr.terminate()
            pr.join(timeout=5.0)
        for q in [*inboxes, result_q]:
            q.close()
        wall = time.perf_counter() - t0

        raise_worker_failures(errors)
        for rank in sorted(trace_events):
            for event in trace_events[rank]:
                launch.tracer.record(event)
        return SPMDResult(
            values=values,
            clocks=clocks,
            breakdowns=breakdowns,
            wall_time=wall,
            tracer=launch.tracer,
            backend=self.name,
            topology=launch.topology.name,
        )
