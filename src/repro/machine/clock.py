"""Per-rank logical clocks with category breakdown.

Simulated time is the library's headline metric (see DESIGN.md): each rank
carries a :class:`LogicalClock` that advances when local kernels charge
compute time and when communication primitives charge their two-level-model
cost. Collectives synchronise clocks across ranks (``t_i <- max_j t_j +
cost``), exactly like a bulk-synchronous machine in the paper's model.

Every charge is tagged with a :class:`Category` so the figures that split
"total time" vs "load balancing time" (paper Figures 5 and 6) can be
regenerated from one run.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["Category", "LogicalClock", "TimeBreakdown"]


class Category(str, enum.Enum):
    """What a slice of simulated time was spent on.

    ``COMPUTE``/``COMM`` cover the selection algorithm proper;
    ``BALANCE_COMPUTE``/``BALANCE_COMM`` cover time inside a load-balancing
    call (the paper reports these separately in Figures 5-6); ``SORT`` covers
    the parallel sample sort inside fast randomized selection (charged on top
    of its own compute/comm so it can also be reported separately if needed).
    """

    COMPUTE = "compute"
    COMM = "comm"
    BALANCE_COMPUTE = "balance_compute"
    BALANCE_COMM = "balance_comm"

    @property
    def is_balance(self) -> bool:
        return self in (Category.BALANCE_COMPUTE, Category.BALANCE_COMM)

    @property
    def is_comm(self) -> bool:
        return self in (Category.COMM, Category.BALANCE_COMM)


@dataclass
class TimeBreakdown:
    """Immutable-ish summary of a clock: totals per category.

    Attributes mirror :class:`Category`; ``total`` is their sum and equals the
    clock's final simulated time (up to floating-point addition order).
    """

    compute: float = 0.0
    comm: float = 0.0
    balance_compute: float = 0.0
    balance_comm: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.comm + self.balance_compute + self.balance_comm

    @property
    def balance(self) -> float:
        """Total time attributable to load balancing (Figures 5-6 bars)."""
        return self.balance_compute + self.balance_comm

    @property
    def communication(self) -> float:
        return self.comm + self.balance_comm

    @property
    def computation(self) -> float:
        return self.compute + self.balance_compute

    def merged_max(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Element-wise max — used to summarise across ranks conservatively."""
        return TimeBreakdown(
            compute=max(self.compute, other.compute),
            comm=max(self.comm, other.comm),
            balance_compute=max(self.balance_compute, other.balance_compute),
            balance_comm=max(self.balance_comm, other.balance_comm),
        )

    def as_dict(self) -> dict:
        return {
            "compute": self.compute,
            "comm": self.comm,
            "balance_compute": self.balance_compute,
            "balance_comm": self.balance_comm,
            "balance": self.balance,
            "total": self.total,
        }


@dataclass
class LogicalClock:
    """A monotone simulated-time clock for one SPMD rank.

    The clock's ``now`` only moves forward. ``charge`` adds local time under a
    category; ``sync_to`` jumps the clock forward to a rendezvous time
    computed by a collective (never backward) and attributes the *wait + the
    collective's cost* to the given category, which keeps
    ``sum(breakdown) == now`` an invariant (property-tested).
    """

    now: float = 0.0
    _spent: dict = field(default_factory=dict)
    #: When a balance section is open, COMPUTE/COMM charges are re-routed to
    #: their BALANCE_* counterparts. Nesting is counted so balancers may call
    #: helpers that also open sections.
    _balance_depth: int = 0

    def charge(self, category: Category, seconds: float) -> float:
        """Advance the clock by ``seconds`` under ``category``; returns now."""
        if not (math.isfinite(seconds) and seconds >= 0):
            raise ConfigurationError(
                f"charge() needs a finite non-negative duration, got {seconds!r}"
            )
        category = self._route(category)
        self.now += seconds
        self._spent[category] = self._spent.get(category, 0.0) + seconds
        return self.now

    def sync_to(self, rendezvous_time: float, category: Category) -> float:
        """Jump forward to ``rendezvous_time`` (clamped to now) under category.

        Collectives compute ``rendezvous = max_i(now_i) + cost`` and call this
        on every participant; the difference to the local ``now`` (wait time
        plus the collective's own cost) is what the rank "spent".
        """
        delta = rendezvous_time - self.now
        if delta <= 0:
            return self.now
        return self.charge(category, delta)

    def _route(self, category: Category) -> Category:
        if self._balance_depth > 0:
            if category is Category.COMPUTE:
                return Category.BALANCE_COMPUTE
            if category is Category.COMM:
                return Category.BALANCE_COMM
        return category

    # -- balance sections ---------------------------------------------------

    def open_balance_section(self) -> None:
        """Start attributing time to the load-balancing categories."""
        self._balance_depth += 1

    def close_balance_section(self) -> None:
        if self._balance_depth <= 0:
            raise ConfigurationError("close_balance_section() without open")
        self._balance_depth -= 1

    # -- reporting ------------------------------------------------------------

    def breakdown(self) -> TimeBreakdown:
        return TimeBreakdown(
            compute=self._spent.get(Category.COMPUTE, 0.0),
            comm=self._spent.get(Category.COMM, 0.0),
            balance_compute=self._spent.get(Category.BALANCE_COMPUTE, 0.0),
            balance_comm=self._spent.get(Category.BALANCE_COMM, 0.0),
        )

    def snapshot(self) -> float:
        return self.now
