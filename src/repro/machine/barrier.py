"""A reusable, abortable barrier for SPMD worker threads.

``threading.Barrier`` already supports reuse and abort, but its abort story is
awkward for our use case: once broken it must be explicitly reset, and every
waiter gets an opaque ``BrokenBarrierError``. The SPMD runtime wants richer
semantics:

* when any rank *fails* (raises), all ranks currently in — or later arriving
  at — the barrier must raise :class:`~repro.errors.WorkerAborted`
  immediately and permanently (an aborted run never resumes);
* barrier waits happen at every collective, so the implementation must be
  cheap and must never deadlock even if ranks race abort with arrival.

This is a classic sense-reversing barrier built on a ``Condition``.
"""

from __future__ import annotations

import threading

from ..errors import ConfigurationError, WorkerAborted

__all__ = ["AbortableBarrier"]


class AbortableBarrier:
    """Sense-reversing barrier over ``n_parties`` threads with sticky abort."""

    def __init__(self, n_parties: int):
        if n_parties < 1:
            raise ConfigurationError(f"barrier needs >= 1 parties, got {n_parties}")
        self._n = n_parties
        self._cond = threading.Condition()
        self._arrived = 0
        self._generation = 0
        self._aborted = False

    @property
    def n_parties(self) -> int:
        return self._n

    @property
    def aborted(self) -> bool:
        return self._aborted

    def abort(self) -> None:
        """Permanently break the barrier, waking all current waiters."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> int:
        """Block until all parties arrive; returns the generation index.

        Raises
        ------
        WorkerAborted
            If the barrier was aborted before or while waiting.
        TimeoutError
            If ``timeout`` elapses (used only by tests; production waits are
            unbounded because collectives are guaranteed to rendezvous).
        """
        with self._cond:
            if self._aborted:
                raise WorkerAborted("barrier aborted")
            gen = self._generation
            self._arrived += 1
            if self._arrived == self._n:
                # Last arrival releases the cohort and flips the generation.
                self._arrived = 0
                self._generation += 1
                self._cond.notify_all()
                return gen
            while self._generation == gen and not self._aborted:
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"barrier wait timed out after {timeout}s "
                        f"({self._arrived}/{self._n} arrived)"
                    )
            if self._aborted:
                raise WorkerAborted("barrier aborted")
            return gen
