"""The SPMD runtime: run one function on ``p`` simulated processors.

A *program* is any callable ``fn(ctx, *args) -> value``. The runtime
validates the launch, counts it, and hands it to an **execution backend**
(:mod:`repro.machine.backends`): ``serial`` (deterministic cooperative
round-robin — CI and debugging), ``threaded`` (one preemptive OS thread
per rank — the historical simulator) or ``process`` (one forked process
per rank with shared-memory shards — true multi-core past the GIL). Every
backend drives the same :class:`ProcContext`/collectives contract and
charges the same simulated costs, so values, RNG streams and simulated
times are bit-identical across backends; only wall-clock differs.

The default backend is ``threaded``, overridable per process with the
``REPRO_BACKEND`` environment variable, per runtime with
``SPMDRuntime(backend=...)`` / ``Machine(backend=...)``, and per launch
with ``run(..., backend=...)`` (which is how a
:class:`~repro.core.plan.SelectionPlan` carries its backend through the
serving layer).

Failure semantics (all backends): the first rank to raise aborts the
rendezvous and all mailboxes; sibling ranks unwind with ``WorkerAborted``;
the caller receives a :class:`~repro.errors.WorkerError` chaining the
original exception. No deadlocks, no leaked threads or processes.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import ConfigurationError
from .backends import resolve_backend
from .backends.base import Launch, ProcContext, SPMDResult
from .cost_model import CM5, CostModel
from .trace import NullTracer, Tracer

__all__ = ["ProcContext", "SPMDResult", "SPMDRuntime", "run_spmd"]


class SPMDRuntime:
    """Reusable launcher for SPMD programs on a fixed (p, cost-model) pair."""

    #: Hard ceiling to protect CI boxes; the paper's largest machine is 128.
    MAX_RANKS = 1024

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel | None = None,
        trace: bool = False,
        join_timeout: float = 120.0,
        backend=None,
    ):
        if not isinstance(n_procs, int) or n_procs < 1:
            raise ConfigurationError(
                f"n_procs must be a positive integer, got {n_procs!r}"
            )
        if n_procs > self.MAX_RANKS:
            raise ConfigurationError(
                f"n_procs={n_procs} exceeds MAX_RANKS={self.MAX_RANKS}"
            )
        self.n_procs = n_procs
        self.cost_model = cost_model if cost_model is not None else CM5
        self.trace = trace
        self.join_timeout = join_timeout
        #: The runtime's default execution backend (name, instance or None
        #: for the ``REPRO_BACKEND``/threaded default).
        self.backend = resolve_backend(backend)
        #: SPMD launches executed so far (the serving layer's cost unit:
        #: Session coalescing and caching are asserted against this).
        self.launch_count = 0

    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Sequence[Sequence[Any]] | None = None,
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        backend=None,
    ) -> SPMDResult:
        """Execute ``fn(ctx, *rank_args[r], *args, **kwargs)`` on every rank.

        ``rank_args`` supplies per-rank positional arguments (e.g. each
        rank's data shard); ``args``/``kwargs`` are shared by all ranks.
        ``backend`` overrides the runtime's execution backend for this
        launch only.
        """
        p = self.n_procs
        if rank_args is not None and len(rank_args) != p:
            raise ConfigurationError(
                f"rank_args must have one entry per rank ({p}), "
                f"got {len(rank_args)}"
            )
        chosen = self.backend if backend is None else resolve_backend(backend)
        self.launch_count += 1
        launch = Launch(
            fn=fn,
            n_procs=p,
            cost_model=self.cost_model,
            rank_args=rank_args,
            args=tuple(args),
            kwargs=kwargs or {},
            tracer=Tracer() if self.trace else NullTracer(),
            join_timeout=self.join_timeout,
        )
        return chosen.execute(launch)


def run_spmd(
    fn: Callable[..., Any],
    n_procs: int,
    rank_args: Sequence[Sequence[Any]] | None = None,
    cost_model: CostModel | None = None,
    trace: bool = False,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    backend=None,
) -> SPMDResult:
    """One-shot convenience wrapper around :class:`SPMDRuntime`."""
    return SPMDRuntime(
        n_procs, cost_model=cost_model, trace=trace, backend=backend
    ).run(fn, rank_args=rank_args, args=args, kwargs=kwargs)
