"""The SPMD runtime: run one function on ``p`` simulated processors.

A *program* is any callable ``fn(ctx, *args) -> value``. The runtime launches
one OS thread per rank (coarse-grained machines have few, powerful
processors — 2..128 in the paper — so threads are a faithful and cheap
vehicle); each thread receives a :class:`ProcContext` carrying its rank, its
:class:`~repro.machine.comm.Comm` endpoint, its logical clock and the cost
model. Heavy local work is vectorised NumPy, which releases the GIL for
large arrays, so ranks genuinely overlap where it matters.

Failure semantics: the first rank to raise aborts the barrier and all
mailboxes; sibling ranks unwind with ``WorkerAborted``; the caller receives a
:class:`~repro.errors.WorkerError` chaining the original exception. No
deadlocks, no leaked threads (joined with a timeout and asserted dead).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, WorkerAborted, WorkerError
from .channels import MessageBoard
from .clock import Category, LogicalClock, TimeBreakdown
from .collectives import CollectiveEngine
from .comm import Comm
from .cost_model import CM5, CostModel
from .trace import NullTracer, Tracer

__all__ = ["ProcContext", "SPMDResult", "SPMDRuntime", "run_spmd"]


@dataclass
class ProcContext:
    """Everything one rank needs: identity, comm, clock, cost model."""

    rank: int
    size: int
    comm: Comm
    clock: LogicalClock
    model: CostModel

    def charge_compute(self, seconds: float) -> None:
        self.clock.charge(Category.COMPUTE, seconds)

    @contextlib.contextmanager
    def balance_section(self):
        """Attribute all time charged inside to the load-balancing bucket."""
        self.clock.open_balance_section()
        try:
            yield self
        finally:
            self.clock.close_balance_section()


@dataclass
class SPMDResult:
    """Outcome of one SPMD run.

    Attributes
    ----------
    values:
        Per-rank return values of the program.
    clocks:
        Final simulated time per rank.
    breakdowns:
        Per-rank :class:`TimeBreakdown`.
    wall_time:
        Real seconds the simulation took (not the simulated metric).
    """

    values: list[Any]
    clocks: list[float]
    breakdowns: list[TimeBreakdown]
    wall_time: float
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)

    @property
    def simulated_time(self) -> float:
        """The machine finishes when its slowest processor does."""
        return max(self.clocks) if self.clocks else 0.0

    @property
    def breakdown(self) -> TimeBreakdown:
        """Breakdown of the rank that determined the finish time."""
        if not self.clocks:
            return TimeBreakdown()
        critical = max(range(len(self.clocks)), key=self.clocks.__getitem__)
        return self.breakdowns[critical]

    @property
    def balance_time(self) -> float:
        """Max across ranks of time attributed to load balancing."""
        return max((b.balance for b in self.breakdowns), default=0.0)


class SPMDRuntime:
    """Reusable launcher for SPMD programs on a fixed (p, cost-model) pair."""

    #: Hard ceiling to protect CI boxes; the paper's largest machine is 128.
    MAX_RANKS = 1024

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel | None = None,
        trace: bool = False,
        join_timeout: float = 120.0,
    ):
        if not isinstance(n_procs, int) or n_procs < 1:
            raise ConfigurationError(
                f"n_procs must be a positive integer, got {n_procs!r}"
            )
        if n_procs > self.MAX_RANKS:
            raise ConfigurationError(
                f"n_procs={n_procs} exceeds MAX_RANKS={self.MAX_RANKS}"
            )
        self.n_procs = n_procs
        self.cost_model = cost_model if cost_model is not None else CM5
        self.trace = trace
        self.join_timeout = join_timeout
        #: SPMD launches executed so far (the serving layer's cost unit:
        #: Session coalescing and caching are asserted against this).
        self.launch_count = 0

    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Sequence[Sequence[Any]] | None = None,
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
    ) -> SPMDResult:
        """Execute ``fn(ctx, *rank_args[r], *args, **kwargs)`` on every rank.

        ``rank_args`` supplies per-rank positional arguments (e.g. each
        rank's data shard); ``args``/``kwargs`` are shared by all ranks.
        """
        p = self.n_procs
        if rank_args is not None and len(rank_args) != p:
            raise ConfigurationError(
                f"rank_args must have one entry per rank ({p}), "
                f"got {len(rank_args)}"
            )
        kwargs = kwargs or {}
        self.launch_count += 1
        tracer = Tracer() if self.trace else NullTracer()
        engine = CollectiveEngine(p, self.cost_model, tracer)
        board = MessageBoard(p)
        clocks = [LogicalClock() for _ in range(p)]
        results: list[Any] = [None] * p
        errors: list[BaseException | None] = [None] * p

        def worker(rank: int) -> None:
            ctx = ProcContext(
                rank=rank,
                size=p,
                comm=Comm(rank, p, engine, board, clocks[rank], self.cost_model),
                clock=clocks[rank],
                model=self.cost_model,
            )
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            try:
                results[rank] = fn(ctx, *extra, *args, **kwargs)
            except WorkerAborted as exc:
                errors[rank] = exc
            except BaseException as exc:  # noqa: BLE001 - must not leak threads
                errors[rank] = exc
                engine.barrier.abort()
                board.abort()

        t0 = time.perf_counter()
        if p == 1:
            # Fast path: no threads needed for a single rank.
            worker(0)
        else:
            threads = [
                threading.Thread(
                    target=worker, args=(r,), name=f"repro-rank-{r}", daemon=True
                )
                for r in range(p)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.join_timeout)
            stuck = [t.name for t in threads if t.is_alive()]
            if stuck:
                engine.barrier.abort()
                board.abort()
                for t in threads:
                    t.join(timeout=5.0)
                still = [t.name for t in threads if t.is_alive()]
                if still:  # pragma: no cover - catastrophic, test-only path
                    raise WorkerError(
                        0, RuntimeError(f"threads failed to unwind: {still}")
                    )
        wall = time.perf_counter() - t0

        real_failures = [
            (r, e)
            for r, e in enumerate(errors)
            if e is not None and not isinstance(e, WorkerAborted)
        ]
        if real_failures:
            rank, cause = real_failures[0]
            raise WorkerError(rank, cause) from cause
        aborted = [r for r, e in enumerate(errors) if e is not None]
        if aborted:  # pragma: no cover - abort without a root cause
            raise WorkerError(aborted[0], errors[aborted[0]])

        board.drain_check()
        return SPMDResult(
            values=results,
            clocks=[c.now for c in clocks],
            breakdowns=[c.breakdown() for c in clocks],
            wall_time=wall,
            tracer=tracer,
        )


def run_spmd(
    fn: Callable[..., Any],
    n_procs: int,
    rank_args: Sequence[Sequence[Any]] | None = None,
    cost_model: CostModel | None = None,
    trace: bool = False,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
) -> SPMDResult:
    """One-shot convenience wrapper around :class:`SPMDRuntime`."""
    return SPMDRuntime(n_procs, cost_model=cost_model, trace=trace).run(
        fn, rank_args=rank_args, args=args, kwargs=kwargs
    )
