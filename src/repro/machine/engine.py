"""The SPMD runtime facade: run one function on ``p`` simulated processors.

A *program* is any callable ``fn(ctx, *args) -> value``. The runtime is a
thin public facade: it remembers the machine configuration (rank count,
cost model, topology, default backend), counts launches, and assembles a
:class:`~repro.machine.backends.base.Launch` — which is where ALL launch
validation lives, once — before handing it to an **execution backend**
(:mod:`repro.machine.backends`): ``serial`` (deterministic cooperative
round-robin — CI and debugging), ``threaded`` (one preemptive OS thread
per rank — the historical simulator) or ``process`` (one forked process
per rank with shared-memory shards — true multi-core past the GIL). Every
backend drives the same :class:`ProcContext`/collectives contract and
charges the same simulated costs, so values, RNG streams and simulated
times are bit-identical across backends; only wall-clock differs.

Two per-launch strategy axes ride the same plumbing:

* the **backend** (how ranks are physically driven) — ``REPRO_BACKEND``
  env default, ``SPMDRuntime(backend=...)`` / ``Machine(backend=...)``,
  or per launch ``run(..., backend=...)``;
* the **topology** (which machine shape the collectives are lowered
  onto; :mod:`repro.machine.topology`) — ``REPRO_TOPOLOGY`` env default,
  ``SPMDRuntime(topology=...)`` / ``Machine(topology=...)``, or per
  launch ``run(..., topology=...)`` (which is how a
  :class:`~repro.core.plan.SelectionPlan` carries both through the
  serving layer). Values are topology-independent; simulated time is not.

Failure semantics (all backends): the first rank to raise aborts the
rendezvous and all mailboxes; sibling ranks unwind with ``WorkerAborted``;
the caller receives a :class:`~repro.errors.WorkerError` chaining the
original exception. No deadlocks, no leaked threads or processes.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..obs import get_recorder
from ..obs.metrics import REGISTRY
from .backends import resolve_backend
from .backends.base import (
    MAX_RANKS,
    Launch,
    ProcContext,
    SPMDResult,
    validate_n_procs,
)
from .cost_model import CM5, CostModel
from .topology import Topology, resolve_topology
from .trace import NullTracer, Tracer

__all__ = ["ProcContext", "SPMDResult", "SPMDRuntime", "run_spmd"]


class SPMDRuntime:
    """Reusable launcher for SPMD programs on one (p, cost-model, shape)."""

    #: Re-exported launch ceiling (the check itself lives with Launch
    #: validation in :mod:`repro.machine.backends.base`).
    MAX_RANKS = MAX_RANKS

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel | None = None,
        trace: bool = False,
        join_timeout: float = 120.0,
        backend=None,
        topology=None,
    ):
        self.n_procs = validate_n_procs(n_procs)
        self.cost_model = cost_model if cost_model is not None else CM5
        self.trace = trace
        self.join_timeout = join_timeout
        #: The runtime's default execution backend (name, instance or None
        #: for the ``REPRO_BACKEND``/threaded default).
        self.backend = resolve_backend(backend)
        #: The runtime's default machine shape (spec string, Topology
        #: instance or None for the ``REPRO_TOPOLOGY``/crossbar default).
        self.topology: Topology = resolve_topology(topology, self.n_procs)
        #: SPMD launches executed so far (the serving layer's cost unit:
        #: Session coalescing and caching are asserted against this).
        self.launch_count = 0

    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Sequence[Sequence[Any]] | None = None,
        args: Sequence[Any] = (),
        kwargs: dict | None = None,
        backend=None,
        topology=None,
        trace: bool | None = None,
    ) -> SPMDResult:
        """Execute ``fn(ctx, *rank_args[r], *args, **kwargs)`` on every rank.

        ``rank_args`` supplies per-rank positional arguments (e.g. each
        rank's data shard); ``args``/``kwargs`` are shared by all ranks.
        ``backend``, ``topology`` and ``trace`` override the runtime's
        defaults for this launch only (a
        :class:`~repro.core.plan.SelectionPlan` carrying ``trace=True``
        rides the latter); all launch validation happens inside
        :class:`~repro.machine.backends.base.Launch`.

        When span capture is on (:mod:`repro.obs`), the launch is wrapped
        in a ``spmd.launch`` span, a real tracer is forced so collective
        leaf spans exist, and the span is attached to the result for the
        serving layer to enrich. All of that is driver-side observation:
        values, RNG streams, simulated times and the launch count are
        bit-identical with capture off or on.
        """
        chosen = self.backend if backend is None else resolve_backend(backend)
        recorder = get_recorder()
        want_trace = self.trace if trace is None else bool(trace)
        launch = Launch(
            fn=fn,
            n_procs=self.n_procs,
            cost_model=self.cost_model,
            rank_args=rank_args,
            args=tuple(args),
            kwargs=kwargs or {},
            tracer=Tracer() if (want_trace or recorder.enabled)
            else NullTracer(),
            join_timeout=self.join_timeout,
            topology=self.topology if topology is None else topology,
        )
        self.launch_count += 1
        REGISTRY.counter("repro.spmd.launches", backend=chosen.name).inc()
        if not recorder.enabled:
            return chosen.execute(launch)
        with recorder.span(
            "spmd.launch", p=self.n_procs, backend=chosen.name,
            topology=launch.topology.name,
        ) as span:
            result = chosen.execute(launch)
        sim_base = recorder.advance_sim(result.simulated_time)
        span.sim_t0 = sim_base
        span.sim_t1 = sim_base + result.simulated_time
        span.set(sim_s=result.simulated_time, wall_s=result.wall_time)
        # Collective/round leaf spans synthesize lazily on first read —
        # the launch path pays one append, not thousands of Span objects.
        recorder.defer_trace(result.tracer.events(), span, sim_base)
        result.span = span
        return result

    @property
    def fork_count(self) -> int:
        """Worker spawn events recorded by this runtime's default backend
        (0 for backends without persistent workers). The ``pool`` backend
        increments it per generation fork / fallback launch, so "k
        launches, one fork" is assertable next to :attr:`launch_count`."""
        return getattr(self.backend, "fork_count", 0)

    @property
    def reuse_count(self) -> int:
        """Launches served by an already-live worker generation (0 for
        backends without persistent workers). A long-running service's
        "fork once, serve many" receipt: on the ``pool`` backend this
        grows with every warm launch while :attr:`fork_count` stays put."""
        return getattr(self.backend, "reuse_count", 0)

    def release_workers(self) -> None:
        """Release any persistent worker state the default backend holds
        (pool generations, shared-memory pins). A no-op for stateless
        backends; counters survive, and the next launch transparently
        re-provisions — this is the graceful-shutdown hook a long-running
        service calls when it drains."""
        shutdown = getattr(self.backend, "shutdown", None)
        if shutdown is not None:
            shutdown()


def run_spmd(
    fn: Callable[..., Any],
    n_procs: int,
    rank_args: Sequence[Sequence[Any]] | None = None,
    cost_model: CostModel | None = None,
    trace: bool = False,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    backend=None,
    topology=None,
) -> SPMDResult:
    """One-shot convenience wrapper around :class:`SPMDRuntime`."""
    return SPMDRuntime(
        n_procs, cost_model=cost_model, trace=trace, backend=backend,
        topology=topology,
    ).run(fn, rank_args=rank_args, args=args, kwargs=kwargs)
