"""The coarse-grained parallel machine substrate (paper Section 2).

This subpackage is the simulated CM-5: an SPMD launcher (:mod:`.engine`)
over pluggable execution backends (:mod:`.backends` — ``serial`` /
``threaded`` / ``process``), the six communication primitives lowered
onto per-round schedules by pluggable machine shapes (:mod:`.topology` —
``crossbar`` / ``binomial-tree`` / ``hypercube`` / ``two-level``) via
:mod:`.collectives` / :mod:`.comm`, logical clocks with a
compute/comm/balance breakdown (:mod:`.clock`), and the calibrated —
optionally hierarchical — cost model itself (:mod:`.cost_model`).
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    available_backends,
    default_backend_name,
    get_backend,
    resolve_backend,
)
from .barrier import AbortableBarrier
from .clock import Category, LogicalClock, TimeBreakdown
from .collectives import CollectiveEngine, SharedRendezvous, payload_words
from .comm import Comm
from .cost_model import (
    CM5,
    ComputeCosts,
    CostModel,
    cm5,
    cm5_fast_network,
    cm5_two_level,
    zero_cost_model,
)
from .engine import ProcContext, SPMDResult, SPMDRuntime, run_spmd
from .topology import (
    TOPOLOGIES,
    BinomialTreeTopology,
    CrossbarTopology,
    HypercubeTopology,
    Schedule,
    Topology,
    Transfer,
    TwoLevelTopology,
    available_topologies,
    default_topology_spec,
    hypercube_dimensions,
    hypercube_partner,
    hypercube_rounds,
    is_power_of_two,
    log2_ceil,
    next_power_of_two,
    resolve_topology,
    validate_topology_spec,
)
from .trace import NullTracer, TraceEvent, Tracer

__all__ = [
    "AbortableBarrier",
    "BACKENDS",
    "ExecutionBackend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
    "Category",
    "LogicalClock",
    "TimeBreakdown",
    "CollectiveEngine",
    "SharedRendezvous",
    "payload_words",
    "Comm",
    "CM5",
    "ComputeCosts",
    "CostModel",
    "cm5",
    "cm5_fast_network",
    "cm5_two_level",
    "zero_cost_model",
    "ProcContext",
    "SPMDResult",
    "SPMDRuntime",
    "run_spmd",
    "TOPOLOGIES",
    "BinomialTreeTopology",
    "CrossbarTopology",
    "HypercubeTopology",
    "Schedule",
    "Topology",
    "Transfer",
    "TwoLevelTopology",
    "available_topologies",
    "default_topology_spec",
    "hypercube_dimensions",
    "hypercube_partner",
    "hypercube_rounds",
    "is_power_of_two",
    "log2_ceil",
    "next_power_of_two",
    "resolve_topology",
    "validate_topology_spec",
    "NullTracer",
    "TraceEvent",
    "Tracer",
]
