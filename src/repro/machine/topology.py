"""Topology helpers for the virtual-crossbar machine.

The two-level model treats the network as a crossbar, so topology barely
matters for costing — but two algorithms need structural helpers:

* the **dimension exchange** load balancer pairs ranks along hypercube
  dimensions (ranks differing in bit ``i``);
* tree-structured collectives use ``ceil(log2 p)`` rounds of power-of-two
  partners.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ConfigurationError

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "log2_ceil",
    "hypercube_dimensions",
    "hypercube_partner",
    "hypercube_rounds",
]


def is_power_of_two(p: int) -> bool:
    """True iff ``p`` is a positive power of two."""
    return p >= 1 and (p & (p - 1)) == 0


def next_power_of_two(p: int) -> int:
    """Smallest power of two >= ``p`` (``p >= 1``)."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    return 1 << (p - 1).bit_length()


def log2_ceil(p: int) -> int:
    """``ceil(log2 p)``; 0 for ``p == 1``."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    return (p - 1).bit_length()


def hypercube_dimensions(p: int) -> int:
    """Number of dimension-exchange rounds for ``p`` ranks.

    For a power of two this is exactly ``log2 p``. Otherwise we embed the
    ranks in the smallest enclosing hypercube (``ceil(log2 p)`` dimensions);
    ranks whose partner id falls outside ``[0, p)`` sit a round out
    (documented deviation #2 in DESIGN.md).
    """
    return log2_ceil(p)


def hypercube_partner(rank: int, dim: int, p: int) -> int | None:
    """Partner of ``rank`` along hypercube dimension ``dim``; None if the
    partner id does not exist on a non-power-of-two machine."""
    if not (0 <= rank < p):
        raise ConfigurationError(f"rank {rank} out of range [0, {p})")
    partner = rank ^ (1 << dim)
    return partner if partner < p else None


def hypercube_rounds(p: int) -> Iterator[list[tuple[int, int]]]:
    """Yield, per dimension, the list of (low, high) rank pairs that exchange.

    After processing dimension ``i`` on a power-of-two machine, every aligned
    block of ``2^(i+1)`` ranks holds an equal share of the block's load — the
    invariant the paper states in Section 4.2.
    """
    for dim in range(hypercube_dimensions(p)):
        pairs: list[tuple[int, int]] = []
        for rank in range(p):
            partner = rank ^ (1 << dim)
            if partner < p and rank < partner:
                pairs.append((rank, partner))
        yield pairs


def tree_children(rank: int, p: int) -> list[int]:
    """Children of ``rank`` in the binomial broadcast tree rooted at 0.

    Node ``r`` has children ``r + 2^j`` for every ``j`` strictly below the
    position of ``r``'s lowest set bit (all positions for the root), clipped
    to ranks that exist. Union of all edges is a spanning tree over
    ``range(p)`` with depth ``ceil(log2 p)`` — property-tested.
    """
    if not (0 <= rank < p):
        raise ConfigurationError(f"rank {rank} out of range [0, {p})")
    limit = (rank & -rank).bit_length() - 1 if rank else log2_ceil(p)
    return [rank + (1 << j) for j in range(limit) if rank + (1 << j) < p]


def pairwise_distance(_a: int, _b: int) -> int:
    """Crossbar distance is constant; retained for model documentation."""
    return 1
