"""Machine shapes: pluggable topologies that lower collectives to rounds.

The paper's two-level model prices every collective with one closed-form
``tau + mu*m`` formula over a virtual crossbar — but its whole argument is
about communication *rounds*, and how those rounds map onto a real
interconnect decides what a collective actually costs. This module makes
the machine shape a first-class strategy: every collective is **lowered**
into an explicit :class:`Schedule` of per-round point-to-point
:class:`Transfer`\\ s by a :class:`Topology`, and the collective engine
prices that schedule round by round.

Four shapes ship:

==================  ======================================================
``crossbar``        the paper's virtual crossbar (default). Schedules
                    mirror the tree/hypercube algorithms the paper charges
                    for, but the *cost* is the paper's closed form — so
                    simulated times are bit-identical to the historical
                    monolithic formulas (pinned by tests).
``binomial-tree``   all traffic rides a fixed binomial tree rooted at
                    rank 0: reductions fold up, broadcasts fan down,
                    many-to-many traffic is routed edge-by-edge through
                    tree paths (and congests at the root).
``hypercube``       dimension-ordered cube algorithms: butterfly
                    reductions, recursive-doubling allgather, e-cube
                    routed transportation. Non-power-of-two ``p`` folds
                    onto the enclosing cube (missing partners idle,
                    missing route nodes are skipped).
``two-level``       clusters of ranks behind a global switch: collectives
                    run intra-cluster stages on ``tau``/``mu`` links and
                    inter-cluster stages on the hierarchical
                    ``tau_inter``/``mu_inter`` links of an extended
                    :class:`~repro.machine.cost_model.CostModel`.
==================  ======================================================

Semantics never change with the shape — values still meet on the
rendezvous board — so answers are bit-identical across topologies; only
the simulated clock and the per-round trace differ. Selection via
``Machine(topology=...)`` / ``SelectionPlan(topology=...)`` /
``run_spmd(..., topology=...)``, or the ``REPRO_TOPOLOGY`` environment
variable as the process-wide default (mirroring ``REPRO_BACKEND``).

The structural helpers the load balancers use (``hypercube_partner``,
``hypercube_rounds``, ``tree_children``) predate the strategy layer and
remain module-level functions.
"""

from __future__ import annotations

import abc
import os
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ConfigurationError
from .cost_model import CostModel

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "log2_ceil",
    "hypercube_dimensions",
    "hypercube_partner",
    "hypercube_rounds",
    "tree_children",
    "Transfer",
    "Schedule",
    "Topology",
    "CrossbarTopology",
    "BinomialTreeTopology",
    "HypercubeTopology",
    "TwoLevelTopology",
    "TOPOLOGIES",
    "available_topologies",
    "default_topology_spec",
    "resolve_topology",
    "validate_topology_spec",
]

#: Environment variable naming the process-wide default topology spec.
TOPOLOGY_ENV_VAR = "REPRO_TOPOLOGY"


# ---------------------------------------------------------------------------
# Structural helpers (pre-strategy API, used by balancers and schedules)
# ---------------------------------------------------------------------------


def is_power_of_two(p: int) -> bool:
    """True iff ``p`` is a positive power of two."""
    return p >= 1 and (p & (p - 1)) == 0


def next_power_of_two(p: int) -> int:
    """Smallest power of two >= ``p`` (``p >= 1``)."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    return 1 << (p - 1).bit_length()


def log2_ceil(p: int) -> int:
    """``ceil(log2 p)``; 0 for ``p == 1``."""
    if p < 1:
        raise ConfigurationError(f"p must be >= 1, got {p}")
    return (p - 1).bit_length()


def hypercube_dimensions(p: int) -> int:
    """Number of dimension-exchange rounds for ``p`` ranks.

    For a power of two this is exactly ``log2 p``. Otherwise we embed the
    ranks in the smallest enclosing hypercube (``ceil(log2 p)`` dimensions);
    ranks whose partner id falls outside ``[0, p)`` sit a round out
    (documented deviation #2 in DESIGN.md).
    """
    return log2_ceil(p)


def hypercube_partner(rank: int, dim: int, p: int) -> int | None:
    """Partner of ``rank`` along hypercube dimension ``dim``; None if the
    partner id does not exist on a non-power-of-two machine."""
    if not (0 <= rank < p):
        raise ConfigurationError(f"rank {rank} out of range [0, {p})")
    partner = rank ^ (1 << dim)
    return partner if partner < p else None


def hypercube_rounds(p: int) -> Iterator[list[tuple[int, int]]]:
    """Yield, per dimension, the list of (low, high) rank pairs that exchange.

    After processing dimension ``i`` on a power-of-two machine, every aligned
    block of ``2^(i+1)`` ranks holds an equal share of the block's load — the
    invariant the paper states in Section 4.2.
    """
    for dim in range(hypercube_dimensions(p)):
        pairs: list[tuple[int, int]] = []
        for rank in range(p):
            partner = rank ^ (1 << dim)
            if partner < p and rank < partner:
                pairs.append((rank, partner))
        yield pairs


def tree_children(rank: int, p: int) -> list[int]:
    """Children of ``rank`` in the binomial broadcast tree rooted at 0.

    Node ``r`` has children ``r + 2^j`` for every ``j`` strictly below the
    position of ``r``'s lowest set bit (all positions for the root), clipped
    to ranks that exist. Union of all edges is a spanning tree over
    ``range(p)`` with depth ``ceil(log2 p)`` — property-tested.
    """
    if not (0 <= rank < p):
        raise ConfigurationError(f"rank {rank} out of range [0, {p})")
    limit = (rank & -rank).bit_length() - 1 if rank else log2_ceil(p)
    return [rank + (1 << j) for j in range(limit) if rank + (1 << j) < p]


def pairwise_distance(_a: int, _b: int) -> int:
    """Crossbar distance is constant; retained for model documentation."""
    return 1


# ---------------------------------------------------------------------------
# Schedules: what a lowered collective physically is
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message of a schedule round.

    ``inter`` marks a transfer that crosses a cluster boundary on a
    hierarchical machine; flat topologies leave it False and the cost
    model then prices it with the ordinary ``tau``/``mu`` link.
    """

    src: int
    dst: int
    words: float
    inter: bool = False


@dataclass(frozen=True)
class Schedule:
    """One collective, lowered: rounds of simultaneous transfers + price.

    ``cost`` is the simulated seconds the collective charges every rank.
    For every topology except the crossbar it equals ``sum(round_costs)``
    with each round priced at the slowest of its transfers; the crossbar
    keeps the paper's closed-form totals (mathematically the same sums,
    but evaluated in the historical expression order so simulated times
    stay bit-identical to the pre-schedule engine).
    """

    op: str
    rounds: tuple[tuple[Transfer, ...], ...]
    cost: float
    round_costs: tuple[float, ...]
    #: Max messages one rank sends (or receives) within one round.
    #: 1 means every round is a clean exchange pattern — each rank
    #: handles at most one message per direction (pure point-to-point
    #: parallelism); higher values mean some rank serialises that many
    #: messages in a round — the root of a tree under many-to-many
    #: traffic, or the dense crossbar transportation round. Computed
    #: once at construction (schedules are memoised and re-read by
    #: every rank on every traced call).
    congestion: int = 0
    detail: str = ""

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)


def _round_congestion(rounds: Sequence[Sequence[Transfer]]) -> int:
    """Worst per-direction message pile-up on one rank in one round."""
    worst = 0
    for rnd in rounds:
        out: dict[int, int] = {}
        inc: dict[int, int] = {}
        for t in rnd:
            out[t.src] = out.get(t.src, 0) + 1
            inc[t.dst] = inc.get(t.dst, 0) + 1
        for d in (out, inc):
            if d:
                worst = max(worst, max(d.values()))
    return worst


# ---------------------------------------------------------------------------
# Schedule-building blocks (virtual-label round patterns)
# ---------------------------------------------------------------------------


def _binomial_rounds(n: int) -> list[list[tuple[int, int]]]:
    """Binomial broadcast rounds over virtual labels ``0..n-1`` rooted at 0.

    Round ``j`` (1-based) sends from every informed label ``v < 2^(j-1)``
    to ``v + 2^(j-1)`` (clipped to labels that exist): ``ceil(log2 n)``
    rounds, each a matching, spanning every label.
    """
    rounds = []
    for j in range(1, log2_ceil(n) + 1):
        half = 1 << (j - 1)
        rounds.append([(v, v + half) for v in range(half) if v + half < n])
    return rounds


def _fold_rounds(
    n: int, weights: Sequence[int] | None = None
) -> list[list[tuple[int, int, int]]]:
    """Binomial reduction rounds ``(src, dst, src_weight)`` to label 0.

    The reverse of :func:`_binomial_rounds`: leaves fold first, and every
    transfer records how many original contributions the sender has
    already accumulated (1, then 2, 4, ... up the tree) so gathers can
    charge the growing payloads. ``weights`` seeds each label's initial
    contribution count (default 1 each) — the two-level shape folds
    whole clusters, so a label may start worth its cluster's size.
    """
    weight = list(weights) if weights is not None else [1] * n
    rounds: list[list[tuple[int, int, int]]] = []
    for bcast in reversed(_binomial_rounds(n)):
        rnd = []
        for parent, child in bcast:
            rnd.append((child, parent, weight[child]))
            weight[parent] += weight[child]
        rounds.append(rnd)
    return rounds


def _doubling_rounds(
    n: int, weights: Sequence[int] | None = None
) -> list[list[tuple[int, int, int]]]:
    """Recursive-doubling allgather rounds ``(src, dst, src_weight)``.

    Round ``j`` pairs labels differing in bit ``j``; both directions of a
    pair appear, each carrying the sender's accumulated block size
    (seeded by ``weights``, default 1 each). Labels whose partner does
    not exist (non-power-of-two ``n``) idle that round — the
    enclosing-cube fold.
    """
    weight = list(weights) if weights is not None else [1] * n
    rounds: list[list[tuple[int, int, int]]] = []
    for j in range(log2_ceil(n)):
        rnd = []
        merged: list[tuple[int, int]] = []
        for v in range(n):
            u = v ^ (1 << j)
            if u < n and v < u:
                rnd.append((v, u, weight[v]))
                rnd.append((u, v, weight[u]))
                merged.append((v, u))
        for v, u in merged:
            s = weight[v] + weight[u]
            weight[v] = weight[u] = s
        rounds.append(rnd)
    return rounds


# ---------------------------------------------------------------------------
# The strategy interface
# ---------------------------------------------------------------------------


class Topology(abc.ABC):
    """How ``p`` ranks are wired: lowers every collective to a Schedule.

    A topology is a pure, stateless-per-launch pricing strategy: it never
    moves data (values meet on the rendezvous board regardless of shape),
    it only decides which point-to-point transfers happen in which round
    and what link class each transfer rides. One instance serves all
    ranks of a launch concurrently, so implementations must not mutate
    shared state inside the ``*_schedule`` methods.
    """

    #: Registry key; also recorded on results and reports.
    name: str = "?"

    def __init__(self, p: int):
        if not isinstance(p, int) or isinstance(p, bool) or p < 1:
            raise ConfigurationError(f"topology needs p >= 1, got {p!r}")
        self.p = p

    # -- pricing helpers ----------------------------------------------------

    def _round_cost(self, model: CostModel, rnd: Sequence[Transfer]) -> float:
        """One round finishes when its slowest transfer does."""
        cost = 0.0
        for t in rnd:
            tau, mu = model.link(t.inter)
            cost = max(cost, tau + mu * t.words)
        return cost

    def _schedule(
        self,
        op: str,
        rounds: Sequence[Sequence[Transfer]],
        model: CostModel,
        cost: float | None = None,
        detail: str = "",
    ) -> Schedule:
        """Assemble a Schedule; ``cost`` defaults to the sum of round costs."""
        rounds = tuple(tuple(r) for r in rounds if r)
        round_costs = tuple(self._round_cost(model, r) for r in rounds)
        if cost is None:
            total = 0.0
            for c in round_costs:
                total += c
            cost = total
        return Schedule(op=op, rounds=rounds, cost=cost,
                        round_costs=round_costs,
                        congestion=_round_congestion(rounds), detail=detail)

    # -- routing ------------------------------------------------------------

    def route(self, src: int, dst: int) -> list[tuple[int, int, bool]]:
        """Edges ``(u, v, inter)`` a message travels from src to dst.

        The default is a direct link (crossbar semantics); tree and cube
        shapes override with their store-and-forward paths.
        """
        return [] if src == dst else [(src, dst, False)]

    # -- collective lowerings ----------------------------------------------

    @abc.abstractmethod
    def broadcast_schedule(self, model: CostModel, root: int, m: float) -> Schedule:
        """Root's ``m`` words to every rank."""

    @abc.abstractmethod
    def combine_schedule(self, model: CostModel, m: float) -> Schedule:
        """Allreduce of ``m``-word values."""

    @abc.abstractmethod
    def prefix_schedule(self, model: CostModel, m: float) -> Schedule:
        """Parallel prefix of ``m``-word values."""

    @abc.abstractmethod
    def gather_schedule(self, model: CostModel, root: int, m: float) -> Schedule:
        """Every rank's ``m`` words onto ``root``."""

    @abc.abstractmethod
    def allgather_schedule(self, model: CostModel, m: float) -> Schedule:
        """Every rank's ``m`` words onto every rank (Global Concatenate)."""

    @abc.abstractmethod
    def alltoallv_schedule(
        self, model: CostModel, words: Sequence[Sequence[float | None]]
    ) -> Schedule:
        """The transportation primitive: ``words[src][dst]`` is the message
        size in words (``None`` for no message; the diagonal is a local
        copy and never travels)."""

    def pairwise_schedule(
        self, model: CostModel, pairs: Sequence[tuple[int, int, float, float]]
    ) -> Schedule:
        """One round of simultaneous disjoint pair swaps.

        ``pairs`` holds ``(a, b, words_ab, words_ba)`` with ``a < b``. The
        generic lowering routes both directions of every pair and runs one
        schedule round per hop; adjacent pairs (every pair, on crossbar
        and two-level; dimension partners on the hypercube) take exactly
        one round, which reproduces the paper's slowest-pair formula.
        """
        rounds: list[list[Transfer]] = []

        def _lay(src: int, dst: int, w: float) -> None:
            for hop, (u, v, inter) in enumerate(self.route(src, dst)):
                while len(rounds) <= hop:
                    rounds.append([])
                rounds[hop].append(Transfer(u, v, w, inter))

        for a, b, w_ab, w_ba in pairs:
            _lay(a, b, w_ab)
            _lay(b, a, w_ba)
        return self._schedule("pairwise_exchange", rounds, model)

    @abc.abstractmethod
    def barrier_schedule(self, model: CostModel) -> Schedule:
        """Pure synchronisation (a one-word combine)."""

    # -- description --------------------------------------------------------

    def describe(self) -> str:
        """Human-readable shape summary for reports and benches."""
        return f"{self.name}(p={self.p})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


# ---------------------------------------------------------------------------
# Crossbar: the paper's machine, bit-identical to the legacy closed forms
# ---------------------------------------------------------------------------


class CrossbarTopology(Topology):
    """The paper's virtual crossbar (Section 2.1) — the default shape.

    Schedules mirror the tree/hypercube algorithms whose costs the paper
    states (so round counts and congestion are still meaningful), but the
    schedule ``cost`` keeps the historical closed-form expressions,
    evaluated in the exact same order as the pre-schedule engine —
    simulated times are bit-identical to ``main`` and pinned by
    ``tests/test_topology.py`` / ``benchmarks/bench_topology.py``.
    """

    name = "crossbar"

    def _rot(self, root: int):
        return lambda v: (v + root) % self.p

    def _log_rounds(self) -> int:
        return log2_ceil(self.p)

    def broadcast_schedule(self, model, root, m):
        real = self._rot(root)
        rounds = [
            [Transfer(real(s), real(d), m) for s, d in rnd]
            for rnd in _binomial_rounds(self.p)
        ]
        cost = (model.tau + model.mu * m) * self._log_rounds()
        return self._schedule("broadcast", rounds, model, cost=cost)

    def _butterfly(self, op, model, m, cost):
        rounds = [
            [t for a, b in pairs for t in (Transfer(a, b, m), Transfer(b, a, m))]
            for pairs in hypercube_rounds(self.p)
        ]
        return self._schedule(op, rounds, model, cost=cost)

    def combine_schedule(self, model, m):
        cost = (model.tau + model.mu * m) * self._log_rounds()
        return self._butterfly("combine", model, m, cost)

    def prefix_schedule(self, model, m):
        cost = (model.tau + model.mu * m) * self._log_rounds()
        return self._butterfly("prefix", model, m, cost)

    def gather_schedule(self, model, root, m):
        real = self._rot(root)
        rounds = [
            [Transfer(real(s), real(d), m * w) for s, d, w in rnd]
            for rnd in _fold_rounds(self.p)
        ]
        cost = model.tau * self._log_rounds() + model.mu * m * (self.p - 1)
        return self._schedule("gather", rounds, model, cost=cost)

    def allgather_schedule(self, model, m):
        rounds = [
            [Transfer(s, d, m * w) for s, d, w in rnd]
            for rnd in _doubling_rounds(self.p)
        ]
        cost = model.tau * self._log_rounds() + model.mu * m * (self.p - 1)
        return self._schedule("allgather", rounds, model, cost=cost)

    def alltoallv_schedule(self, model, words):
        p = self.p
        # The historical [20] transportation price, evaluated in the exact
        # expression order of the pre-schedule engine (bit-identity).
        out_words = [
            sum(w for w in row if w is not None) for row in words
        ]
        out_net = [
            out_words[i] - (words[i][i] if words[i][i] is not None else 0.0)
            for i in range(p)
        ]
        in_words = [
            sum(
                words[src][dst]
                for src in range(p)
                if src != dst and words[src][dst] is not None
            )
            for dst in range(p)
        ]
        t = max(max(o, i_) for o, i_ in zip(out_net, in_words)) if p else 0.0
        max_msgs = max(
            sum(1 for d, w in enumerate(row) if w is not None and d != i)
            for i, row in enumerate(words)
        )
        cost = model.tau * max_msgs + 2.0 * model.mu * t
        rnd = [
            Transfer(s, d, words[s][d])
            for s in range(p)
            for d in range(p)
            if s != d and words[s][d] is not None
        ]
        return self._schedule(
            "alltoallv", [rnd], model, cost=cost,
            detail=f"max_msgs={max_msgs}",
        )

    def barrier_schedule(self, model):
        cost = (model.tau + model.mu) * self._log_rounds()
        return self._butterfly("barrier", model, 1.0, cost)


# ---------------------------------------------------------------------------
# Binomial tree: fixed wiring rooted at rank 0
# ---------------------------------------------------------------------------


class BinomialTreeTopology(Topology):
    """A fixed binomial tree rooted at rank 0 — ``p - 1`` physical links.

    Reductions fold up the tree, broadcasts fan down it, scans run an
    up-down sweep (twice the crossbar's rounds), and many-to-many traffic
    is routed hop-by-hop through tree paths — the root link is the
    bottleneck, which the per-round slowest-transfer pricing and the
    congestion metric both surface.
    """

    name = "binomial-tree"

    @staticmethod
    def _parent(v: int) -> int:
        return v & (v - 1)

    def _ancestors(self, v: int) -> list[int]:
        chain = [v]
        while v:
            v = self._parent(v)
            chain.append(v)
        return chain

    def route(self, src, dst):
        if src == dst:
            return []
        up = self._ancestors(src)
        down = self._ancestors(dst)
        up_set = set(up)
        # Lowest ancestor of dst that is also an ancestor of src = the LCA.
        lca = next(v for v in down if v in up_set)
        edges = []
        for v in up[: up.index(lca)]:
            edges.append((v, self._parent(v), False))
        descend = down[: down.index(lca)]
        for v in reversed(descend):
            edges.append((self._parent(v), v, False))
        return edges

    def _down_rounds(self, m: float) -> list[list[Transfer]]:
        return [
            [Transfer(s, d, m) for s, d in rnd]
            for rnd in _binomial_rounds(self.p)
        ]

    def _up_rounds(self, m: float, weighted: bool) -> list[list[Transfer]]:
        return [
            [Transfer(s, d, m * w if weighted else m) for s, d, w in rnd]
            for rnd in _fold_rounds(self.p)
        ]

    def _hop_rounds(self, src: int, dst: int, w: float) -> list[list[Transfer]]:
        return [[Transfer(u, v, w, inter)] for u, v, inter in self.route(src, dst)]

    def broadcast_schedule(self, model, root, m):
        rounds = self._hop_rounds(root, 0, m) + self._down_rounds(m)
        return self._schedule("broadcast", rounds, model)

    def combine_schedule(self, model, m):
        rounds = self._up_rounds(m, weighted=False) + self._down_rounds(m)
        return self._schedule("combine", rounds, model)

    def prefix_schedule(self, model, m):
        rounds = self._up_rounds(m, weighted=False) + self._down_rounds(m)
        return self._schedule("prefix", rounds, model)

    def gather_schedule(self, model, root, m):
        rounds = self._up_rounds(m, weighted=True) + self._hop_rounds(
            0, root, m * self.p
        )
        return self._schedule("gather", rounds, model)

    def allgather_schedule(self, model, m):
        rounds = self._up_rounds(m, weighted=True) + self._down_rounds(m * self.p)
        return self._schedule("allgather", rounds, model)

    def alltoallv_schedule(self, model, words):
        rounds = _route_rounds(self, words)
        return self._schedule("alltoallv", rounds, model)

    def barrier_schedule(self, model):
        rounds = self._up_rounds(1.0, weighted=False) + self._down_rounds(1.0)
        return self._schedule("barrier", rounds, model)


# ---------------------------------------------------------------------------
# Hypercube: dimension-ordered cube algorithms
# ---------------------------------------------------------------------------


class HypercubeTopology(Topology):
    """A ``ceil(log2 p)``-dimensional hypercube (folded when p isn't 2^d).

    Broadcast/gather run dimension-ordered binomial trees, allreduce and
    scans run the butterfly, allgather runs recursive doubling, and the
    transportation primitive is e-cube routed (messages fix differing
    address bits in ascending dimension order). On a non-power-of-two
    machine the ranks occupy the low corner of the enclosing cube: absent
    partners idle a round and absent route nodes are skipped — the fold.
    """

    name = "hypercube"

    def _virt(self, root: int):
        """Relabel so the collective's root sits at label 0.

        XOR relabelling is a cube automorphism but only keeps every label
        in range when ``p`` is a power of two; the fold for other ``p``
        rotates labels instead (still spanning, one hop per round).
        """
        if is_power_of_two(self.p):
            return (lambda v: v ^ root), (lambda r: r ^ root)
        return (lambda v: (v + root) % self.p), (lambda r: (r - root) % self.p)

    def route(self, src, dst):
        if src == dst:
            return []
        nodes = [src]
        cur = src
        for j in range(log2_ceil(self.p)):
            if ((cur ^ dst) >> j) & 1:
                cur ^= 1 << j
                nodes.append(cur)
        # Fold: drop intermediate corners that don't exist on this machine.
        nodes = [n for n in nodes if n < self.p]
        return [(nodes[i], nodes[i + 1], False) for i in range(len(nodes) - 1)]

    def broadcast_schedule(self, model, root, m):
        to_real, _ = self._virt(root)
        rounds = [
            [Transfer(to_real(s), to_real(d), m) for s, d in rnd]
            for rnd in _binomial_rounds(self.p)
        ]
        return self._schedule("broadcast", rounds, model)

    def _butterfly_rounds(self, m: float) -> list[list[Transfer]]:
        return [
            [t for a, b in pairs for t in (Transfer(a, b, m), Transfer(b, a, m))]
            for pairs in hypercube_rounds(self.p)
        ]

    def combine_schedule(self, model, m):
        return self._schedule("combine", self._butterfly_rounds(m), model)

    def prefix_schedule(self, model, m):
        return self._schedule("prefix", self._butterfly_rounds(m), model)

    def gather_schedule(self, model, root, m):
        to_real, _ = self._virt(root)
        rounds = [
            [Transfer(to_real(s), to_real(d), m * w) for s, d, w in rnd]
            for rnd in _fold_rounds(self.p)
        ]
        return self._schedule("gather", rounds, model)

    def allgather_schedule(self, model, m):
        rounds = [
            [Transfer(s, d, m * w) for s, d, w in rnd]
            for rnd in _doubling_rounds(self.p)
        ]
        return self._schedule("allgather", rounds, model)

    def alltoallv_schedule(self, model, words):
        rounds = _route_rounds(self, words)
        return self._schedule("alltoallv", rounds, model)

    def barrier_schedule(self, model):
        return self._schedule("barrier", self._butterfly_rounds(1.0), model)


def _route_rounds(
    topo: Topology, words: Sequence[Sequence[float | None]]
) -> list[list[Transfer]]:
    """Store-and-forward lowering of the transportation primitive.

    Every message travels its topology route; the hop-``h`` edges of all
    messages share schedule round ``h``, and messages crossing the same
    directed edge in the same round batch into one transfer (one
    start-up, summed words) — which is exactly where a tree's root link
    or a cube's bisection shows up as congestion.
    """
    p = topo.p
    agg: list[dict[tuple[int, int, bool], float]] = []
    for s in range(p):
        for d in range(p):
            if s == d or words[s][d] is None:
                continue
            for hop, edge in enumerate(topo.route(s, d)):
                while len(agg) <= hop:
                    agg.append({})
                agg[hop][edge] = agg[hop].get(edge, 0.0) + words[s][d]
    return [
        [Transfer(u, v, w, inter) for (u, v, inter), w in sorted(rnd.items())]
        for rnd in agg
    ]


# ---------------------------------------------------------------------------
# Two-level clusters: intra/inter link classes
# ---------------------------------------------------------------------------


class TwoLevelTopology(Topology):
    """Clusters of ranks behind a global switch (the hierarchical shape).

    Ranks ``[c*s, (c+1)*s)`` form cluster ``c`` with its first rank as
    leader. Collectives run in stages: an intra-cluster stage on the flat
    ``tau``/``mu`` links (all clusters in parallel), an inter-cluster
    stage between leaders on the ``tau_inter``/``mu_inter`` links of a
    hierarchical :class:`~repro.machine.cost_model.CostModel` (falling
    back to the flat links when the model carries no hierarchy). The
    default cluster size is ``2^ceil(L/2)`` — the square-ish split.
    """

    name = "two-level"

    def __init__(self, p: int, cluster_size: int | None = None):
        super().__init__(p)
        if cluster_size is None:
            cluster_size = 1 << ((log2_ceil(p) + 1) // 2)
        if not isinstance(cluster_size, int) or isinstance(cluster_size, bool) \
                or cluster_size < 1:
            raise ConfigurationError(
                f"two-level cluster_size must be a positive integer, "
                f"got {cluster_size!r}"
            )
        self.cluster_size = min(cluster_size, p)
        self.n_clusters = -(-p // self.cluster_size)

    def describe(self) -> str:
        return (
            f"{self.name}(p={self.p}, "
            f"clusters={self.n_clusters}x{self.cluster_size})"
        )

    # -- structure ----------------------------------------------------------

    def cluster(self, rank: int) -> int:
        return rank // self.cluster_size

    def leader(self, c: int) -> int:
        return c * self.cluster_size

    def members(self, c: int) -> range:
        return range(
            c * self.cluster_size, min((c + 1) * self.cluster_size, self.p)
        )

    def route(self, src, dst):
        if src == dst:
            return []
        return [(src, dst, self.cluster(src) != self.cluster(dst))]

    # -- stage builders -----------------------------------------------------

    def _intra_down(self, m: float) -> list[list[Transfer]]:
        """Leader-to-members binomial rounds, all clusters in parallel."""
        rounds: list[list[Transfer]] = []
        for c in range(self.n_clusters):
            ranks = list(self.members(c))
            for j, rnd in enumerate(_binomial_rounds(len(ranks))):
                while len(rounds) <= j:
                    rounds.append([])
                rounds[j].extend(
                    Transfer(ranks[s], ranks[d], m) for s, d in rnd
                )
        return rounds

    def _intra_up(self, m: float, weighted: bool) -> list[list[Transfer]]:
        """Members-to-leader folds, all clusters in parallel."""
        rounds: list[list[Transfer]] = []
        for c in range(self.n_clusters):
            ranks = list(self.members(c))
            for j, rnd in enumerate(_fold_rounds(len(ranks))):
                while len(rounds) <= j:
                    rounds.append([])
                rounds[j].extend(
                    Transfer(ranks[s], ranks[d], m * w if weighted else m)
                    for s, d, w in rnd
                )
        return rounds

    # -- lowerings ----------------------------------------------------------

    def broadcast_schedule(self, model, root, m):
        rounds: list[list[Transfer]] = []
        lead = self.leader(self.cluster(root))
        if root != lead:
            rounds.append([Transfer(root, lead, m)])
        c_root = self.cluster(root)
        rot = lambda c: (c + c_root) % self.n_clusters  # noqa: E731
        rounds += [
            [
                Transfer(self.leader(rot(s)), self.leader(rot(d)), m, inter=True)
                for s, d in rnd
            ]
            for rnd in _binomial_rounds(self.n_clusters)
        ]
        rounds += self._intra_down(m)
        return self._schedule("broadcast", rounds, model)

    def _allreduce_rounds(self, m: float) -> list[list[Transfer]]:
        rounds = self._intra_up(m, weighted=False)
        rounds += [
            [
                t
                for a, b in pairs
                for t in (
                    Transfer(self.leader(a), self.leader(b), m, inter=True),
                    Transfer(self.leader(b), self.leader(a), m, inter=True),
                )
            ]
            for pairs in hypercube_rounds(self.n_clusters)
        ]
        rounds += self._intra_down(m)
        return rounds

    def combine_schedule(self, model, m):
        return self._schedule("combine", self._allreduce_rounds(m), model)

    def prefix_schedule(self, model, m):
        return self._schedule("prefix", self._allreduce_rounds(m), model)

    def gather_schedule(self, model, root, m):
        rounds = self._intra_up(m, weighted=True)
        c_root = self.cluster(root)
        rot = lambda c: (c + c_root) % self.n_clusters  # noqa: E731
        sizes = [len(self.members(rot(c))) for c in range(self.n_clusters)]
        rounds += [
            [
                Transfer(self.leader(rot(s)), self.leader(rot(d)),
                         m * w, inter=True)
                for s, d, w in rnd
            ]
            for rnd in _fold_rounds(self.n_clusters, weights=sizes)
        ]
        lead = self.leader(c_root)
        if root != lead:
            rounds.append([Transfer(lead, root, m * self.p)])
        return self._schedule("gather", rounds, model)

    def allgather_schedule(self, model, m):
        rounds = self._intra_up(m, weighted=True)
        sizes = [len(self.members(c)) for c in range(self.n_clusters)]
        rounds += [
            [
                Transfer(self.leader(s), self.leader(d), m * w, inter=True)
                for s, d, w in rnd
            ]
            for rnd in _doubling_rounds(self.n_clusters, weights=sizes)
        ]
        rounds += self._intra_down(m * self.p)
        return self._schedule("allgather", rounds, model)

    def alltoallv_schedule(self, model, words):
        p = self.p
        intra = [
            Transfer(s, d, words[s][d])
            for s in range(p)
            for d in range(p)
            if s != d and words[s][d] is not None
            and self.cluster(s) == self.cluster(d)
        ]
        inter = [
            Transfer(s, d, words[s][d], inter=True)
            for s in range(p)
            for d in range(p)
            if s != d and words[s][d] is not None
            and self.cluster(s) != self.cluster(d)
        ]

        def _transport_cost(transfers: list[Transfer], link_inter: bool) -> float:
            """The [20] price of one dense phase on one link class."""
            if not transfers:
                return 0.0
            out = [0.0] * p
            inc = [0.0] * p
            msgs = [0] * p
            for t in transfers:
                out[t.src] += t.words
                inc[t.dst] += t.words
                msgs[t.src] += 1
            tau, mu = model.link(link_inter)
            t_max = max(max(o, i_) for o, i_ in zip(out, inc))
            return tau * max(msgs) + 2.0 * mu * t_max

        intra_cost = _transport_cost(intra, False)
        inter_cost = _transport_cost(inter, True)
        rounds = tuple(tuple(r) for r in (intra, inter) if r)
        costs = tuple(
            c for r, c in ((intra, intra_cost), (inter, inter_cost)) if r
        )
        total = 0.0
        for c in costs:
            total += c
        return Schedule(
            op="alltoallv", rounds=rounds, cost=total, round_costs=costs,
            congestion=_round_congestion(rounds),
            detail=f"inter_msgs={len(inter)}",
        )

    def pairwise_schedule(self, model, pairs):
        rnd = []
        for a, b, w_ab, w_ba in pairs:
            inter = self.cluster(a) != self.cluster(b)
            rnd.append(Transfer(a, b, w_ab, inter))
            rnd.append(Transfer(b, a, w_ba, inter))
        return self._schedule("pairwise_exchange", [rnd], model)

    def barrier_schedule(self, model):
        return self._schedule("barrier", self._allreduce_rounds(1.0), model)


# ---------------------------------------------------------------------------
# Registry + spec resolution
# ---------------------------------------------------------------------------

#: Registry: canonical topology name -> class. A spec may carry one
#: ``:arg`` suffix (only ``two-level`` consumes it: the cluster size).
TOPOLOGIES: dict[str, type[Topology]] = {
    "crossbar": CrossbarTopology,
    "binomial-tree": BinomialTreeTopology,
    "hypercube": HypercubeTopology,
    "two-level": TwoLevelTopology,
}

#: Accepted shorthand -> canonical name.
_ALIASES = {"tree": "binomial-tree"}


def available_topologies() -> tuple[str, ...]:
    """The registered topology names, sorted."""
    return tuple(sorted(TOPOLOGIES))


def _parse_spec(spec: str) -> tuple[str, int | None]:
    base, _, arg = spec.partition(":")
    base = _ALIASES.get(base, base)
    if base not in TOPOLOGIES:
        raise ConfigurationError(
            f"unknown topology {spec!r}; available: {sorted(TOPOLOGIES)}"
        )
    if not arg:
        return base, None
    if base != "two-level":
        raise ConfigurationError(
            f"topology {base!r} takes no parameter, got {spec!r} "
            "(only 'two-level:<cluster_size>' is parameterised)"
        )
    try:
        size = int(arg)
    except ValueError:
        size = 0
    if size < 1:
        raise ConfigurationError(
            f"two-level cluster size must be a positive integer, got {spec!r}"
        )
    return base, size


def validate_topology_spec(spec: str) -> str:
    """Check a topology spec string; returns its canonical form.

    Accepts a registry name, an alias (``tree``), or a parameterised
    ``two-level:<cluster_size>``; raises
    :class:`~repro.errors.ConfigurationError` listing the options
    otherwise.
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"topology spec must be a string, got {type(spec).__name__}"
        )
    base, size = _parse_spec(spec)
    return base if size is None else f"{base}:{size}"


def default_topology_spec() -> str:
    """``REPRO_TOPOLOGY`` if set (validated), else ``"crossbar"``."""
    spec = os.environ.get(TOPOLOGY_ENV_VAR, "").strip()
    if not spec:
        return "crossbar"
    return validate_topology_spec(spec)


def resolve_topology(topology, p: int) -> Topology:
    """Normalise ``None`` (env default / crossbar), a spec string, or a
    :class:`Topology` instance to an instance wired for ``p`` ranks."""
    if topology is None:
        topology = default_topology_spec()
    if isinstance(topology, Topology):
        if topology.p != p:
            raise ConfigurationError(
                f"topology {topology.describe()} is wired for p={topology.p}, "
                f"but this launch has p={p}"
            )
        return topology
    if isinstance(topology, str):
        base, size = _parse_spec(topology)
        if size is not None:
            return TwoLevelTopology(p, cluster_size=size)
        return TOPOLOGIES[base](p)
    raise ConfigurationError(
        f"topology must be a name, a Topology or None, "
        f"got {type(topology).__name__}"
    )
