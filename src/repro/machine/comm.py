"""Per-rank communicator facade — the API SPMD programs are written against.

Mirrors the mpi4py surface where it makes sense (``rank``/``size``
attributes, lower-case object methods) but exposes the paper's primitive
names: :meth:`broadcast`, :meth:`combine`, :meth:`prefix_sum`,
:meth:`gather`, :meth:`global_concat`, :meth:`alltoallv` (the transportation
primitive) and :meth:`pairwise_exchange`.

Each ``Comm`` is owned by exactly one rank (one thread); all cross-rank
coordination happens inside the shared :class:`CollectiveEngine` and the
:class:`MessageBoard`.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from .channels import MessageBoard
from .clock import Category, LogicalClock
from .collectives import CollectiveEngine, payload_words
from .cost_model import CostModel

__all__ = ["Comm"]


class Comm:
    """Communication endpoint for one SPMD rank."""

    def __init__(
        self,
        rank: int,
        size: int,
        engine: CollectiveEngine,
        board: MessageBoard,
        clock: LogicalClock,
        model: CostModel,
    ):
        self.rank = rank
        self.size = size
        self._engine = engine
        self._board = board
        self._clock = clock
        self._model = model

    # ----------------------------------------------------------- collectives

    def broadcast(self, value: Any = None, root: int = 0) -> Any:
        """Primitive 1 — ``root``'s value delivered to every rank."""
        return self._engine.broadcast(
            self.rank, value if self.rank == root else None, root, self._clock,
            Category.COMM,
        )

    def combine(self, value: Any, op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Primitive 2 — allreduce with a binary associative op."""
        return self._engine.combine(self.rank, value, op, self._clock, Category.COMM)

    def prefix_sum(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = operator.add,
        inclusive: bool = True,
        initial: Any = 0,
    ) -> Any:
        """Primitive 3 — parallel prefix (scan) of one value per rank."""
        return self._engine.prefix(
            self.rank, value, op, self._clock, Category.COMM,
            inclusive=inclusive, initial=initial,
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Primitive 4 — list of all values on ``root``, ``None`` elsewhere."""
        return self._engine.gather(self.rank, value, root, self._clock, Category.COMM)

    def global_concat(self, value: Any) -> list[Any]:
        """Primitive 5 — Global Concatenate: list of all values, everywhere."""
        return self._engine.allgather(self.rank, value, self._clock, Category.COMM)

    # Alias familiar to MPI users.
    allgather = global_concat

    def alltoallv(self, sends: Sequence[Any]) -> list[Any]:
        """Primitive 6 — transportation primitive (many-to-many, variable)."""
        return self._engine.alltoallv(self.rank, sends, self._clock, Category.COMM)

    def pairwise_exchange(self, partner: int | None, payload: Any = None) -> Any:
        """One hypercube round of simultaneous disjoint pair swaps."""
        return self._engine.pairwise_exchange(
            self.rank, partner, payload, self._clock, Category.COMM
        )

    def barrier(self) -> None:
        self._engine.barrier_sync(self.rank, self._clock, Category.COMM)

    # -------------------------------------------------- numeric conveniences

    def gather_concat_array(self, arr: np.ndarray, root: int = 0) -> np.ndarray | None:
        """Gather variable-length arrays to ``root`` and concatenate them.

        This is the ``L = Gather(L_i[l:r])`` step every selection algorithm
        performs for its endgame (solve the residual problem sequentially).
        """
        parts = self.gather(arr, root=root)
        if self.rank != root:
            return None
        live = [p for p in parts if p is not None and p.size]
        return np.concatenate(live) if live else np.asarray(arr)[:0]

    def allreduce_sum(self, value: int | float) -> int | float:
        return self.combine(value, operator.add)

    def exscan_sum(self, value: int | float) -> int | float:
        """Exclusive prefix sum: global offset of this rank's block."""
        return self.prefix_sum(value, operator.add, inclusive=False, initial=0)

    # -------------------------------------------------------- point-to-point

    def send(self, dest: int, payload: Any, tag: Hashable = 0) -> None:
        """Asynchronous-ish send: sender pays ``tau + mu*m`` immediately.

        The message carries the sender's post-send clock; the receiver's
        clock advances to at least that (message cannot be read before it was
        sent). Payloads are delivered by reference — do not mutate after
        sending.
        """
        m = payload_words(payload)
        self._clock.charge(Category.COMM, self._model.msg_time(m))
        self._board.send(self.rank, dest, tag, (payload, self._clock.now))

    def recv(self, source: int, tag: Hashable = 0, timeout: float | None = 60.0) -> Any:
        payload, sent_at = self._board.mailbox(self.rank).recv(
            source, tag, timeout=timeout
        )
        self._clock.sync_to(sent_at, Category.COMM)
        return payload

    # ------------------------------------------------------------ accounting

    def charge_compute(self, seconds: float) -> None:
        self._clock.charge(Category.COMPUTE, seconds)

    @property
    def model(self) -> CostModel:
        return self._model

    @property
    def clock(self) -> LogicalClock:
        return self._clock
