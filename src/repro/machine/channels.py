"""Tagged point-to-point mailboxes between SPMD ranks.

Collectives in this library are built either directly on shared rendezvous
slots (see :mod:`repro.machine.collectives`) or on these channels; user code
and the load balancers use the channels for genuine pairwise exchanges
(dimension exchange) and scatter-style sends.

Semantics mirror MPI:

* messages between a fixed (source, dest) pair with the same tag are
  delivered in FIFO order;
* ``recv`` blocks until a matching message arrives (or the mailbox is
  aborted);
* payloads are delivered by reference — NumPy arrays are *not* copied. That
  matches MPI zero-copy aspirations and is safe in practice because all
  library senders hand over freshly-sliced arrays; the engine never mutates a
  sent buffer. This contract is documented on :meth:`Mailbox.send`.
"""

from __future__ import annotations

import collections
import threading
from typing import Any, Hashable

from ..errors import CommunicationError, ConfigurationError, WorkerAborted

__all__ = ["Mailbox", "MessageBoard"]


class Mailbox:
    """The receive side of one rank: per-(source, tag) FIFO queues."""

    def __init__(self, owner_rank: int):
        self.owner_rank = owner_rank
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, Hashable], collections.deque] = {}
        self._aborted = False

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def deliver(self, source: int, tag: Hashable, payload: Any) -> None:
        with self._cond:
            if self._aborted:
                return
            self._queues.setdefault((source, tag), collections.deque()).append(payload)
            self._cond.notify_all()

    def recv(self, source: int, tag: Hashable, timeout: float | None = None) -> Any:
        """Block for the next message from ``source`` with ``tag``."""
        key = (source, tag)
        with self._cond:
            while True:
                if self._aborted:
                    raise WorkerAborted("mailbox aborted")
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self.owner_rank}: recv(source={source}, "
                        f"tag={tag!r}) timed out after {timeout}s"
                    )

    def pending(self) -> int:
        with self._cond:
            return sum(len(q) for q in self._queues.values())


class MessageBoard:
    """All mailboxes of one runtime; the send side of point-to-point comms.

    ``mailbox_factory`` lets an execution backend substitute its own
    :class:`Mailbox` subclass (the serial backend's cooperative mailbox
    yields the scheduler token instead of blocking the thread).
    """

    def __init__(self, n_ranks: int, mailbox_factory=None):
        if n_ranks < 1:
            raise ConfigurationError(f"need >= 1 rank, got {n_ranks}")
        self.n_ranks = n_ranks
        factory = mailbox_factory if mailbox_factory is not None else Mailbox
        self._mailboxes = [factory(r) for r in range(n_ranks)]

    def abort(self) -> None:
        for mb in self._mailboxes:
            mb.abort()

    def mailbox(self, rank: int) -> Mailbox:
        return self._mailboxes[rank]

    def send(self, source: int, dest: int, tag: Hashable, payload: Any) -> None:
        """Deliver ``payload`` (by reference — do not mutate after send)."""
        if not (0 <= dest < self.n_ranks):
            raise CommunicationError(
                f"send: destination rank {dest} out of range [0, {self.n_ranks})"
            )
        if not (0 <= source < self.n_ranks):
            raise CommunicationError(
                f"send: source rank {source} out of range [0, {self.n_ranks})"
            )
        self._mailboxes[dest].deliver(source, tag, payload)

    def drain_check(self) -> None:
        """Raise if any mailbox still holds messages (used by the runtime on
        clean shutdown to catch unmatched sends, a classic SPMD bug)."""
        leftovers = [
            (mb.owner_rank, mb.pending()) for mb in self._mailboxes if mb.pending()
        ]
        if leftovers:
            raise CommunicationError(
                "runtime finished with undelivered messages: "
                + ", ".join(f"rank {r} has {n} pending" for r, n in leftovers)
            )
