"""Two-level communication/computation cost model (paper Section 2.1).

The paper models a coarse-grained machine as ``p`` powerful processors behind
a virtual crossbar: every off-processor access costs a start-up latency
``tau`` plus ``mu`` seconds per transferred word, independent of distance and
congestion. All complexity analysis in the paper — and therefore all simulated
timing in this library — happens in that model.

Two ingredient tables live here:

* **Communication**: ``tau`` (message start-up, seconds) and ``mu`` (seconds
  per 8-byte word). The collective *schedules* — which point-to-point
  transfers happen in which round — live in :mod:`repro.machine.topology`;
  the lowering in :mod:`repro.machine.collectives` prices each round with
  these link constants. A **hierarchical** machine (the ``two-level``
  topology: clusters of ranks behind a slower global switch) may carry a
  second link class: ``tau_inter``/``mu_inter`` price transfers that cross
  a cluster boundary, and default to the flat ``tau``/``mu`` when unset, so
  every pre-hierarchy cost model keeps meaning exactly what it did.
* **Computation**: per-element costs for the sequential kernels the selection
  algorithms lean on (partitioning a list, deterministic selection, randomized
  selection, sorting, bucket preprocessing...). These are the constants the
  paper repeatedly appeals to when it argues, e.g., that randomized selection
  wins "due to the low constant associated with the algorithm".

The :data:`CM5` preset is calibrated so simulated times land in the same
sub-second magnitude range as the paper's CM-5 measurements and so the
constant-factor relationships the paper reports (deterministic selection an
order of magnitude slower; bucket-based ~2x faster than median-of-medians)
emerge from the model rather than being hard-coded anywhere.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = [
    "ComputeCosts",
    "CostModel",
    "CM5",
    "cm5",
    "cm5_fast_network",
    "cm5_two_level",
    "zero_cost_model",
]


@dataclass(frozen=True)
class ComputeCosts:
    """Per-element simulated costs (seconds) for local sequential kernels.

    The defaults model a ~33 MHz SPARC CM-5 node executing scalar C loops:
    ~16 cycles (~500 ns) per element for a partition pass, roughly two passes
    for randomized quickselect, and a 24x larger constant for deterministic
    median-of-medians selection (groups of five, recursive calls, two
    partition passes per level on a 1996 compiler) — the constant-factor gap
    the paper's Section 5 attributes most of the deterministic slowdown to.
    Calibration targets (EXPERIMENTS.md, n=2M, p=32, random): randomized
    selection ~0.1 s; median of medians >= 16x slower; bucket-based >= 9x
    slower — matching the paper's headline observation.

    Attributes
    ----------
    partition:
        Cost per element of splitting a list around a pivot (one compare +
        move). Also used for counting scans.
    select_deterministic:
        Cost per element of one full deterministic (Blum et al.) sequential
        selection. The classic implementation touches every element many
        times; 12-15 cycles/element/level across ~4 effective levels gives the
        large constant observed in practice.
    select_randomized:
        Cost per element of one randomized quickselect (expected ~2 scans,
        low constant).
    sort_per_cmp:
        Cost per comparison for sorting; an ``n``-element sort charges
        ``sort_per_cmp * n * log2(max(n, 2))``.
    scan:
        Cost per element of a simple sequential pass (copy, count, sum).
    binary_search_step:
        Cost per probe of a binary search.
    bucket_level:
        Cost per element per level of the bucket-preprocessing recursion
        (Section 3.2: ``O((n/p) log log p)`` total).
    rng_draw:
        Cost of drawing one random number (Step 2 of Algorithm 3).
    """

    partition: float = 450e-9
    select_deterministic: float = 20e-6
    select_randomized: float = 1.0e-6
    sort_per_cmp: float = 500e-9
    scan: float = 300e-9
    binary_search_step: float = 1e-6
    bucket_level: float = 2.5e-6
    rng_draw: float = 10e-6

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            if not (isinstance(v, (int, float)) and v >= 0 and math.isfinite(v)):
                raise ConfigurationError(
                    f"ComputeCosts.{f.name} must be a finite non-negative "
                    f"number, got {v!r}"
                )


@dataclass(frozen=True)
class CostModel:
    """The paper's two-level machine model plus local compute constants.

    Parameters
    ----------
    tau:
        Message start-up overhead in seconds. The CM-5's CMMD messaging layer
        had a software start-up on the order of 100 microseconds.
    mu:
        Transfer time per 8-byte word in seconds (the paper's ``1/bandwidth``
        data-transfer rate). 10 MB/s effective node bandwidth gives
        ``0.8 us`` per word.
    compute:
        Per-kernel local computation costs, see :class:`ComputeCosts`.
    name:
        Human-readable preset name used in reports.
    tau_inter / mu_inter:
        Hierarchical extension: start-up and per-word cost of a link that
        crosses a cluster boundary on the ``two-level`` topology. ``None``
        (the default) means the machine is flat — inter-cluster links cost
        the same ``tau``/``mu`` as everything else — which keeps every
        existing cost model byte-compatible with its pre-hierarchy
        behaviour. Topologies without a cluster structure never consult
        these fields.
    """

    tau: float = 100e-6
    mu: float = 0.8e-6
    compute: ComputeCosts = field(default_factory=ComputeCosts)
    name: str = "custom"
    tau_inter: float | None = None
    mu_inter: float | None = None

    def __post_init__(self) -> None:
        if not (math.isfinite(self.tau) and self.tau >= 0):
            raise ConfigurationError(f"tau must be finite and >= 0, got {self.tau!r}")
        if not (math.isfinite(self.mu) and self.mu >= 0):
            raise ConfigurationError(f"mu must be finite and >= 0, got {self.mu!r}")
        for fname in ("tau_inter", "mu_inter"):
            v = getattr(self, fname)
            if v is not None and not (
                isinstance(v, (int, float)) and math.isfinite(v) and v >= 0
            ):
                raise ConfigurationError(
                    f"{fname} must be None or a finite number >= 0, got {v!r}"
                )
        self.compute.validate()

    # -- communication cost formulas shared by several collectives ---------

    def msg_time(self, words: float) -> float:
        """Time for one point-to-point message of ``words`` 8-byte words."""
        return self.tau + self.mu * max(0.0, words)

    def link(self, inter: bool = False) -> tuple[float, float]:
        """``(tau, mu)`` of one link class.

        ``inter=True`` selects the inter-cluster link of a hierarchical
        machine; on a flat model (``tau_inter``/``mu_inter`` unset) both
        classes are the same link, so topologies can price transfers
        uniformly without caring whether the model is hierarchical.
        """
        if not inter:
            return self.tau, self.mu
        return (
            self.tau if self.tau_inter is None else self.tau_inter,
            self.mu if self.mu_inter is None else self.mu_inter,
        )

    def log2p(self, p: int) -> int:
        """``ceil(log2 p)`` with the convention ``log2p(1) == 0``."""
        if p < 1:
            raise ConfigurationError(f"p must be >= 1, got {p}")
        return max(0, int(math.ceil(math.log2(p)))) if p > 1 else 0

    def calibrate(self, machine, **kwargs) -> "CostModel":
        """Re-fit ``tau``/``mu`` from probe launches on ``machine``.

        Convenience front door to
        :func:`repro.planner.calibrate.calibrate_cost_model` (lazy import:
        the planner package imports this module). Returns a new model with
        host-fitted constants; ``self`` and ``machine`` are unchanged.
        """
        from ..planner.calibrate import calibrate_cost_model

        return calibrate_cost_model(machine, model=self, **kwargs)

    def replace(self, **kwargs) -> "CostModel":
        """Return a copy with selected fields replaced (compute merges)."""
        compute_kwargs = {
            k: kwargs.pop(k)
            for k in list(kwargs)
            if k in {f.name for f in dataclasses.fields(ComputeCosts)}
        }
        compute = (
            dataclasses.replace(self.compute, **compute_kwargs)
            if compute_kwargs
            else self.compute
        )
        return dataclasses.replace(self, compute=compute, **kwargs)


def cm5() -> CostModel:
    """The calibrated CM-5-like preset used by all paper reproductions."""
    return CostModel(tau=100e-6, mu=0.8e-6, compute=ComputeCosts(), name="CM5")


#: Module-level singleton preset (immutable, safe to share).
CM5: CostModel = cm5()


def cm5_fast_network() -> CostModel:
    """Alternative calibration with relatively cheap transfers.

    Same two-level model, but the network moves a word for a quarter of the
    ``CM5`` price relative to compute (equivalently: compute is 2x slower
    and bandwidth 1.6x higher). Under this preset the paper's Figure 3/6
    claim — load balancing pays off for *fast randomized* selection on
    sorted data — reproduces, at the cost of the Figure 2 claim that
    balancing never helps plain randomized selection (see EXPERIMENTS.md:
    in a pure two-level model the two claims sit on opposite sides of the
    ``2*mu  vs  rescan-savings`` inequality; the CM-5's 4-byte elements and
    cache effects let the paper have both).
    """
    base = ComputeCosts()
    doubled = ComputeCosts(
        partition=base.partition * 2,
        select_deterministic=base.select_deterministic * 2,
        select_randomized=base.select_randomized * 2,
        sort_per_cmp=base.sort_per_cmp * 2,
        scan=base.scan * 2,
        binary_search_step=base.binary_search_step * 2,
        bucket_level=base.bucket_level * 2,
        rng_draw=base.rng_draw * 2,
    )
    return CostModel(tau=100e-6, mu=0.25e-6, compute=doubled, name="CM5-fastnet")


def cm5_two_level(tau_factor: float = 4.0, mu_factor: float = 8.0) -> CostModel:
    """A hierarchical CM-5-like preset for the ``two-level`` topology.

    Intra-cluster links keep the calibrated ``CM5`` constants; links that
    cross a cluster boundary pay ``tau_factor`` times the start-up and
    ``mu_factor`` times the per-word cost — the usual shape of a cluster
    of SMP-ish nodes behind a slower global switch. On every topology
    without a cluster structure this model behaves exactly like ``CM5``.
    """
    base = cm5()
    return base.replace(
        tau_inter=base.tau * tau_factor,
        mu_inter=base.mu * mu_factor,
        name="CM5-2level",
    )


def zero_cost_model() -> CostModel:
    """A model in which everything is free.

    Useful in tests that check *what* is computed without caring about
    simulated time, and as the base for ablations that isolate one term.
    """
    zero = ComputeCosts(
        partition=0.0,
        select_deterministic=0.0,
        select_randomized=0.0,
        sort_per_cmp=0.0,
        scan=0.0,
        binary_search_step=0.0,
        bucket_level=0.0,
        rng_draw=0.0,
    )
    return CostModel(tau=0.0, mu=0.0, compute=zero, name="zero")
