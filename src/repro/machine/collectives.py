"""The six parallel primitives of paper Section 2.2, lowered onto rounds.

Functionally, each collective is implemented over a shared rendezvous board
(deposit per-rank value -> barrier -> read -> barrier), which is exactly what
a virtual crossbar permits. *Temporally*, each collective is **lowered** by
the machine's :class:`~repro.machine.topology.Topology` into an explicit
schedule of per-round point-to-point transfers, and the clock advances by
that schedule's price. On the default ``crossbar`` topology the schedule
cost keeps the paper's closed forms, bit-for-bit:

===================  =====================================================
Primitive            Crossbar cost (p ranks, m words payload per rank)
===================  =====================================================
Broadcast            ``(tau + mu*m) * ceil(log2 p)``
Combine              ``(tau + mu*m) * ceil(log2 p)``
Parallel Prefix      ``(tau + mu*m) * ceil(log2 p)``
Gather               ``tau * ceil(log2 p) + mu * m * (p - 1)``
Global Concatenate   ``tau * ceil(log2 p) + mu * m * (p - 1)``
Transportation       ``tau * max_msgs + 2 * mu * t``,
(alltoallv)          ``t = max_i max(out_words_i, in_words_i)`` [20]
Pairwise exchange    per round: ``max over pairs of (tau + mu * max(m_ab,
(dimension rounds)   m_ba))`` — the p/2 pairs communicate in parallel
===================  =====================================================

On the other shapes (``binomial-tree``, ``hypercube``, ``two-level``) the
cost is the sum over schedule rounds of the slowest transfer in each round
— values are identical (they meet on the rendezvous board either way), but
simulated time genuinely distinguishes machine shapes, and the trace
records each collective's round count and congestion.

Every collective synchronises clocks (``t_i <- max_j t_j + cost``): the
algorithms in the paper are bulk-synchronous, and the analysis charges each
iteration at the pace of the slowest processor (``n_max^(j)`` terms).

Thread-safety: one :class:`CollectiveEngine` serves all ranks of a runtime;
the rendezvous protocol makes each operation race-free, and the strict SPMD
discipline (all ranks issue the same sequence of collectives) is validated
at runtime with an op-name check that turns a desynchronised program into a
:class:`~repro.errors.RankMismatchError` instead of a hang.

The *rendezvous* — how per-rank deposits physically meet — is pluggable so
every execution backend shares the cost/semantics logic above it:

* :class:`SharedRendezvous` (default) — shared slots + an abortable
  barrier; used by the ``threaded`` backend, and by the ``serial`` backend
  with a cooperative barrier.
* the ``process`` backend supplies a message-passing rendezvous over
  multiprocessing queues (:mod:`repro.machine.backends.process`).
"""

from __future__ import annotations

import math
import os
import sys
import zlib
from collections import Counter
from typing import Any, Callable, Protocol, Sequence

import numpy as np

from ..errors import ConfigurationError, RankMismatchError
from .barrier import AbortableBarrier
from .clock import Category, LogicalClock
from .cost_model import CostModel
from .topology import CrossbarTopology, Schedule, Topology
from .trace import NullTracer, TraceEvent

__all__ = [
    "CollectiveEngine",
    "LockstepVerifier",
    "Rendezvous",
    "SharedRendezvous",
    "payload_words",
]


def payload_words(obj: Any) -> float:
    """Simulated size of a payload in 8-byte words.

    NumPy arrays count ``size * itemsize / 8``; scalars count 1; sequences
    count the sum of their items. ``None`` counts 0. The selection algorithms
    mostly move 8-byte keys, so a word is calibrated to 8 bytes.

    Structured payloads (e.g. the quantile sketches of
    :mod:`repro.stream.sketch`) size themselves via a ``__sim_words__``
    method — the collective cost formulas then charge their true footprint
    instead of the one-word exotic-payload fallback. A sizer that returns
    anything other than a finite non-negative number is a
    :class:`~repro.errors.ConfigurationError`: silently mispricing a
    transfer would corrupt every simulated time downstream of it.
    """
    if obj is None:
        return 0.0
    sizer = getattr(obj, "__sim_words__", None)
    if sizer is not None:
        try:
            words = float(sizer())
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{type(obj).__name__}.__sim_words__() must return a number, "
                f"got a non-numeric value ({exc})"
            ) from exc
        if not math.isfinite(words) or words < 0:
            raise ConfigurationError(
                f"{type(obj).__name__}.__sim_words__() must return a finite "
                f"non-negative word count, got {words!r}"
            )
        return words
    if isinstance(obj, np.ndarray):
        return obj.size * obj.itemsize / 8.0
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj) / 8.0
    if isinstance(obj, (list, tuple)):
        return float(sum(payload_words(x) for x in obj))
    if isinstance(obj, (int, float, complex, np.integer, np.floating)):
        return 1.0
    # Fallback for exotic payloads: charge one word; simulated fidelity for
    # such objects is not meaningful anyway.
    return 1.0


#: Directory containing the machine layer; stack frames inside it are
#: runtime plumbing, the first frame *outside* it is the collective's
#: algorithm-level call site.
_MACHINE_DIR = os.path.dirname(os.path.abspath(__file__))


def _call_site() -> str:
    """``pkg/file.py:line`` of the algorithm frame issuing a collective."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not os.path.abspath(filename).startswith(_MACHINE_DIR):
            parent = os.path.basename(os.path.dirname(filename))
            name = os.path.basename(filename)
            return f"{parent}/{name}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class LockstepVerifier:
    """Audits that every rank issues the same collective sequence from the
    same call sites (``REPRO_VERIFY=lockstep``).

    The op-name check in :meth:`CollectiveEngine._rendezvous` already turns
    *different collectives* into a :class:`RankMismatchError`. This verifier
    sharpens it: each rank's deposit token is extended with the issuing call
    site, the rank's collective sequence number, and a running CRC over its
    entire ``(op, site)`` history, so two ranks that happen to issue the
    same primitive **from different program points** — a latent divergence
    the plain check cannot see — also collide at the rendezvous, and the
    error names the first divergent rank, its op, and both call sites.

    ``pairwise_exchange`` is exempt from call-site matching (its site is
    recorded as ``*``): the primitive is asymmetric by contract — partnered
    and partnerless ranks legitimately reach it through different branches
    (see :mod:`repro.balance.dimension_exchange`) — so only the op identity
    and sequence position are folded in.

    The verifier alters only the token deposited on the rendezvous board,
    never clocks, schedules, payloads, or traces: simulated times stay
    bit-identical with the verifier on.
    """

    #: Base ops whose call sites legitimately differ across ranks.
    SITE_EXEMPT = frozenset({"pairwise_exchange"})

    def __init__(self, n_ranks: int):
        self.n_ranks = n_ranks
        self._seq = [0] * n_ranks
        self._hist = [0] * n_ranks

    def annotate(self, rank: int, op: str) -> str:
        """Extend ``op`` into this rank's verification token."""
        base = op.split("@", 1)[0]
        site = "*" if base in self.SITE_EXEMPT else _call_site()
        seq = self._seq[rank]
        self._seq[rank] = seq + 1
        hist = zlib.crc32(f"{op}|{site}".encode(), self._hist[rank])
        self._hist[rank] = hist
        return f"{op}|{site}|{seq}|{hist:08x}"

    @staticmethod
    def _parse(token: str) -> tuple[str, str, str, str]:
        parts = token.split("|")
        if len(parts) == 4:
            return parts[0], parts[1], parts[2], parts[3]
        return token, "?", "?", "?"

    def mismatch_error(self, tokens: list[str]) -> RankMismatchError:
        """Diagnose a failed rendezvous: name the first divergent rank."""
        majority, _count = Counter(tokens).most_common(1)[0]
        maj_op, maj_site, seq, _h = self._parse(majority)
        divergent = [r for r, t in enumerate(tokens) if t != majority]
        first = divergent[0]
        op, site, _s, _h = self._parse(tokens[first])
        agree = self.n_ranks - len(divergent)
        return RankMismatchError(
            f"lockstep verification failed at collective #{seq}: rank "
            f"{first} issued `{op}` from {site} while {agree} rank(s) "
            f"issued `{maj_op}` from {maj_site} "
            f"(divergent ranks: {divergent})"
        )


class Rendezvous(Protocol):
    """How per-rank collective deposits physically meet.

    ``exchange`` is called by every rank with its deposit and must return
    the same ``(ops, values, tmax)`` triple on all of them: the op names
    and deposited values indexed by rank, plus the maximum clock across
    ranks. ``abort`` must permanently wake every rank currently (or later)
    blocked inside ``exchange`` with
    :class:`~repro.errors.WorkerAborted`.
    """

    def exchange(
        self, rank: int, op: str, value: Any, clock_now: float
    ) -> tuple[list[str], list[Any], float]: ...  # pragma: no cover

    def abort(self) -> None: ...  # pragma: no cover


class SharedRendezvous:
    """Deposit slots + two barrier waits: the shared-memory rendezvous.

    Works for any vehicle whose ranks share the interpreter (the
    ``threaded`` and ``serial`` backends); the barrier is injectable so
    cooperative schedulers can supply their own.
    """

    def __init__(self, n_ranks: int, barrier=None):
        self.barrier = barrier if barrier is not None else AbortableBarrier(n_ranks)
        self._slots: list[Any] = [None] * n_ranks
        self._clocks: list[float] = [0.0] * n_ranks
        self._ops: list[str] = [""] * n_ranks

    def exchange(
        self, rank: int, op: str, value: Any, clock_now: float
    ) -> tuple[list[str], list[Any], float]:
        self._slots[rank] = value
        self._clocks[rank] = clock_now
        self._ops[rank] = op
        self.barrier.wait()
        ops = list(self._ops)
        values = list(self._slots)
        tmax = max(self._clocks)
        # Second barrier: no rank may overwrite the slots for the *next*
        # collective before every rank has read this one.
        self.barrier.wait()
        return ops, values, tmax

    def abort(self) -> None:
        self.barrier.abort()


class CollectiveEngine:
    """The six primitives' cost/semantics logic for one SPMD runtime.

    All execution backends share this class; only the injected
    :class:`Rendezvous` differs, which is why simulated times are
    bit-identical across backends. The injected
    :class:`~repro.machine.topology.Topology` (crossbar when omitted)
    lowers every primitive to its round schedule and prices it.
    """

    def __init__(
        self, n_ranks: int, model: CostModel, tracer=None, rendezvous=None,
        topology: Topology | None = None, verifier: LockstepVerifier | None = None,
    ):
        self.n_ranks = n_ranks
        self.model = model
        self.tracer = tracer if tracer is not None else NullTracer()
        self.rendezvous: Rendezvous = (
            rendezvous if rendezvous is not None else SharedRendezvous(n_ranks)
        )
        self.topology: Topology = (
            topology if topology is not None else CrossbarTopology(n_ranks)
        )
        # Resolved at construction so forked/spawned workers (which build
        # their own engine) inherit the setting through the environment.
        if verifier is None and os.environ.get("REPRO_VERIFY") == "lockstep":
            verifier = LockstepVerifier(n_ranks)
        self.verifier = verifier
        #: Barrier of the shared rendezvous (None for message-passing ones);
        #: kept as an attribute for the runtime's abort path and tests.
        self.barrier = getattr(self.rendezvous, "barrier", None)
        # Schedules are pure functions of (op, shape arguments) and every
        # rank of a collective lowers the same one, so memoise them: the
        # first rank builds, the rest (and later identical calls) reuse.
        # Immutable values + GIL make the unlocked dict race-free (a lost
        # race just rebuilds the same schedule).
        self._sched_cache: dict = {}
        # Per-rank collective issue counters, consumed only when tracing:
        # each rank touches its own slot, and the resulting TraceEvent.seq
        # gives span derivation a deterministic order even when simulated
        # timestamps tie.
        self._seq = [0] * n_ranks

    def _lower(self, key: tuple, build) -> Schedule:
        sched = self._sched_cache.get(key)
        if sched is None:
            sched = build()
            if len(self._sched_cache) >= 256:
                self._sched_cache.clear()
            self._sched_cache[key] = sched
        return sched

    # ------------------------------------------------------------------ core

    def abort(self) -> None:
        """Permanently wake every rank blocked in a collective."""
        self.rendezvous.abort()

    def _rendezvous(
        self,
        rank: int,
        op: str,
        value: Any,
        clock: LogicalClock,
    ) -> tuple[list[Any], float]:
        """Deposit ``value``; return (all values, max clock across ranks)."""
        token = op if self.verifier is None else self.verifier.annotate(rank, op)
        ops, values, tmax = self.rendezvous.exchange(rank, token, value, clock.now)
        distinct = set(ops)
        if len(distinct) != 1:
            self.abort()
            if self.verifier is not None:
                raise self.verifier.mismatch_error(ops)
            raise RankMismatchError(
                f"ranks disagree on collective: {sorted(distinct)}"
            )
        return values, tmax

    def _finish(
        self,
        rank: int,
        op: str,
        clock: LogicalClock,
        t_start: float,
        tmax: float,
        sched: Schedule,
        words: float,
        category: Category,
    ) -> None:
        clock.sync_to(tmax + sched.cost, category)
        if self.tracer.enabled:
            seq = self._seq[rank]
            self._seq[rank] = seq + 1
            self.tracer.record(
                TraceEvent(
                    rank=rank,
                    op=op,
                    words=words,
                    t_start=t_start,
                    t_end=clock.now,
                    detail=sched.detail,
                    rounds=sched.n_rounds,
                    congestion=sched.congestion,
                    round_times=sched.round_costs,
                    seq=seq,
                )
            )

    # ------------------------------------------------------------- primitives

    def broadcast(
        self, rank: int, value: Any, root: int, clock: LogicalClock, category: Category
    ) -> Any:
        """Paper primitive 1 — one rank's value to all ranks."""
        t0 = clock.now
        values, tmax = self._rendezvous(rank, f"broadcast@{root}", value, clock)
        result = values[root]
        m = payload_words(result)
        sched = self._lower(
            ("broadcast", root, m),
            lambda: self.topology.broadcast_schedule(self.model, root, m),
        )
        self._finish(rank, "broadcast", clock, t0, tmax, sched, m, category)
        return result

    def combine(
        self,
        rank: int,
        value: Any,
        op: Callable[[Any, Any], Any],
        clock: LogicalClock,
        category: Category,
    ) -> Any:
        """Paper primitive 2 — reduce with a binary associative+commutative
        op; the result is stored on *every* rank (an allreduce)."""
        t0 = clock.now
        values, tmax = self._rendezvous(rank, "combine", value, clock)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        m = payload_words(value)
        sched = self._lower(
            ("combine", m),
            lambda: self.topology.combine_schedule(self.model, m),
        )
        self._finish(rank, "combine", clock, t0, tmax, sched, m, category)
        return acc

    def prefix(
        self,
        rank: int,
        value: Any,
        op: Callable[[Any, Any], Any],
        clock: LogicalClock,
        category: Category,
        inclusive: bool = True,
        initial: Any = None,
    ) -> Any:
        """Paper primitive 3 — parallel prefix (scan).

        Inclusive scan returns ``x_0 op ... op x_rank``; the exclusive
        variant returns ``initial`` on rank 0 and ``x_0 op ... op x_{rank-1}``
        elsewhere (needed by the order-maintaining load balancer, which wants
        global start offsets).
        """
        t0 = clock.now
        values, tmax = self._rendezvous(rank, "prefix", value, clock)
        if inclusive:
            acc = values[0]
            prefixes = [acc]
            for v in values[1:]:
                acc = op(acc, v)
                prefixes.append(acc)
            result = prefixes[rank]
        else:
            prefixes = [initial]
            acc = None
            for i, v in enumerate(values[:-1]):
                acc = v if i == 0 else op(acc, v)
                prefixes.append(acc)
            result = prefixes[rank]
        m = payload_words(value)
        sched = self._lower(
            ("prefix", m),
            lambda: self.topology.prefix_schedule(self.model, m),
        )
        self._finish(rank, "prefix", clock, t0, tmax, sched, m, category)
        return result

    def gather(
        self, rank: int, value: Any, root: int, clock: LogicalClock, category: Category
    ) -> list[Any] | None:
        """Paper primitive 4 — collect one value per rank onto ``root``."""
        t0 = clock.now
        values, tmax = self._rendezvous(rank, f"gather@{root}", value, clock)
        m = max(payload_words(v) for v in values)
        sched = self._lower(
            ("gather", root, m),
            lambda: self.topology.gather_schedule(self.model, root, m),
        )
        self._finish(rank, "gather", clock, t0, tmax, sched, m, category)
        return list(values) if rank == root else None

    def allgather(
        self, rank: int, value: Any, clock: LogicalClock, category: Category
    ) -> list[Any]:
        """Paper primitive 5 — Global Concatenate (gather to all)."""
        t0 = clock.now
        values, tmax = self._rendezvous(rank, "allgather", value, clock)
        m = max(payload_words(v) for v in values)
        sched = self._lower(
            ("allgather", m),
            lambda: self.topology.allgather_schedule(self.model, m),
        )
        self._finish(rank, "allgather", clock, t0, tmax, sched, m, category)
        return list(values)

    def alltoallv(
        self,
        rank: int,
        sends: Sequence[Any],
        clock: LogicalClock,
        category: Category,
    ) -> list[Any]:
        """Paper primitive 6 — the transportation primitive [20].

        ``sends[d]`` is this rank's payload for rank ``d`` (``None`` for no
        message). Returns the list of payloads received, indexed by source.
        The topology prices the routed traffic; the crossbar keeps the
        ``tau * max_msgs + 2 * mu * t`` closed form with ``t`` the maximum
        over ranks of max(outgoing words, incoming words).
        """
        if len(sends) != self.n_ranks:
            raise RankMismatchError(
                f"alltoallv needs exactly {self.n_ranks} send slots, "
                f"got {len(sends)}"
            )
        t0 = clock.now
        matrix, tmax = self._rendezvous(rank, "alltoallv", list(sends), clock)
        received = [matrix[src][rank] for src in range(self.n_ranks)]
        words = [
            [None if x is None else payload_words(x) for x in row]
            for row in matrix
        ]
        sched = self._lower(
            ("alltoallv", tuple(tuple(row) for row in words)),
            lambda: self.topology.alltoallv_schedule(self.model, words),
        )
        # Traced words: the max per-rank traffic the [20] formula charges
        # (self-sends are local copies and excluded), in the historical
        # expression order so traces stay bit-identical too.
        out_words = [sum(w for w in row if w is not None) for row in words]
        out_net = [
            out_words[i] - (words[i][i] if words[i][i] is not None else 0.0)
            for i in range(self.n_ranks)
        ]
        in_words = [
            sum(
                words[src][dst]
                for src in range(self.n_ranks)
                if src != dst and words[src][dst] is not None
            )
            for dst in range(self.n_ranks)
        ]
        t = max(
            max(o, i_) for o, i_ in zip(out_net, in_words)
        ) if self.n_ranks else 0.0
        self._finish(rank, "alltoallv", clock, t0, tmax, sched, t, category)
        return received

    def pairwise_exchange(
        self,
        rank: int,
        partner: int | None,
        payload: Any,
        clock: LogicalClock,
        category: Category,
    ) -> Any:
        """One hypercube round: disjoint pairs swap payloads in parallel.

        Collective over *all* ranks (ranks without a live partner pass
        ``partner=None`` and receive ``None``). On every flat topology the
        round costs every rank ``max over pairs of (tau + mu * max(payload
        words))`` — the pairs are simultaneous, so the slowest pair paces
        the machine, mirroring the paper's Section 4.2 analysis; pairs that
        cross a cluster boundary on the two-level shape pay the inter link.
        """
        t0 = clock.now
        values, tmax = self._rendezvous(
            rank, "pairwise_exchange", (partner, payload), clock
        )
        # Validate pairing and collect the round's pair traffic once per rank.
        pairs: list[tuple[int, int, float, float]] = []
        for r, (pr, pl) in enumerate(values):
            if pr is None or pr < r:
                continue
            back, their = values[pr]
            if back != r:
                self.abort()
                raise RankMismatchError(
                    f"pairwise_exchange: rank {r} paired with {pr} but rank "
                    f"{pr} paired with {back}"
                )
            pairs.append((r, pr, payload_words(pl), payload_words(their)))
        sched = self._lower(
            ("pairwise", tuple(pairs)),
            lambda: self.topology.pairwise_schedule(self.model, pairs),
        )
        result = values[partner][1] if partner is not None else None
        self._finish(
            rank,
            "pairwise_exchange",
            clock,
            t0,
            tmax,
            sched,
            payload_words(payload),
            category,
        )
        return result

    def barrier_sync(self, rank: int, clock: LogicalClock, category: Category) -> None:
        """Pure synchronisation: clocks meet at the max plus one combine."""
        t0 = clock.now
        _, tmax = self._rendezvous(rank, "barrier", None, clock)
        sched = self._lower(
            ("barrier",),
            lambda: self.topology.barrier_schedule(self.model),
        )
        self._finish(rank, "barrier", clock, t0, tmax, sched, 0.0, category)
