"""Optional per-rank event tracing.

When enabled on the runtime, every communication primitive appends a
:class:`TraceEvent` (operation, payload words, simulated start/end). Traces
make two things cheap: debugging distributed control flow, and unit-testing
that an algorithm issued exactly the primitives the paper's pseudocode says
it should (e.g. Algorithm 3 does one prefix-sum, one broadcast and one
combine per iteration).

Since collectives are lowered onto explicit round schedules
(:mod:`repro.machine.topology`), every event also records the rounds the
schedule ran: ``rounds`` (how many), ``congestion`` (max transfers one
rank serialised in a round) and ``round_times`` (the simulated seconds of
each round) — the per-round evidence reports summarise per collective.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "AGGREGATE_MODES", "NullTracer", "TraceEvent", "TraceSummary", "Tracer",
]


@dataclass(frozen=True)
class TraceEvent:
    """One communication primitive as seen from one rank.

    ``rank=None`` marks a machine-wide **aggregate** record (e.g. a
    whole-launch roll-up) rather than one rank's view; summaries handle
    those explicitly — see :meth:`TraceSummary.from_tracer`.
    """

    rank: int | None
    op: str
    words: float
    t_start: float
    t_end: float
    detail: str = ""
    #: Rounds the lowered schedule executed (0 for a free p=1 collective).
    rounds: int = 0
    #: Max transfers incident on one rank within one schedule round.
    congestion: int = 0
    #: Per-round simulated seconds of the schedule (crossbar totals keep
    #: the closed-form price; see Schedule.cost).
    round_times: tuple = ()
    #: Per-rank issue sequence number (assigned by the collective engine
    #: when tracing is on; -1 for events recorded by other producers).
    #: Gives derived span views a deterministic ordering even when
    #: simulated timestamps tie (e.g. under a zero-cost model).
    seq: int = -1

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Thread-safe append-only event log."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []

    enabled = True

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, rank: int | None = None, op: str | None = None) -> list[TraceEvent]:
        with self._lock:
            evs = list(self._events)
        if rank is not None:
            evs = [e for e in evs if e.rank == rank]
        if op is not None:
            evs = [e for e in evs if e.op == op]
        return evs

    def count(self, op: str, rank: int | None = None) -> int:
        return len(self.events(rank=rank, op=op))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class NullTracer:
    """No-op tracer used when tracing is disabled (the default)."""

    enabled = False

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    def events(self, rank: int | None = None, op: str | None = None) -> list[TraceEvent]:
        return []

    def count(self, op: str, rank: int | None = None) -> int:
        return 0

    def clear(self) -> None:  # pragma: no cover - trivial
        pass


#: How :meth:`TraceSummary.from_tracer` treats ``rank=None`` aggregate
#: records when an ``rank`` filter is given.
AGGREGATE_MODES = ("include", "exclude", "only")


@dataclass
class TraceSummary:
    """Aggregate view over a tracer, keyed by op name."""

    counts: dict = field(default_factory=dict)
    words: dict = field(default_factory=dict)
    time: dict = field(default_factory=dict)
    rounds: dict = field(default_factory=dict)
    congestion: dict = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: Tracer, rank: int | None = None,
                    aggregates: str = "include") -> "TraceSummary":
        """Summarise ``tracer``'s events, with explicit handling of
        machine-wide aggregate records (``TraceEvent.rank is None``).

        ``rank=None`` summarises every event (per-rank and aggregate).
        With an integer ``rank``, aggregate records used to fall through
        the ``e.rank == rank`` filter silently; ``aggregates`` now makes
        the choice explicit:

        * ``"include"`` (default) — that rank's events *plus* machine-wide
          aggregates (they describe this rank too);
        * ``"exclude"`` — strictly that rank's own events (the historical
          silent behaviour, now opt-in);
        * ``"only"`` — aggregate records alone, whatever ``rank`` says.
        """
        if aggregates not in AGGREGATE_MODES:
            raise ValueError(
                f"aggregates must be one of {AGGREGATE_MODES}, "
                f"got {aggregates!r}"
            )
        s = cls()
        for e in tracer.events():
            if aggregates == "only":
                if e.rank is not None:
                    continue
            elif rank is not None:
                if e.rank is None:
                    if aggregates == "exclude":
                        continue
                elif e.rank != rank:
                    continue
            s.counts[e.op] = s.counts.get(e.op, 0) + 1
            s.words[e.op] = s.words.get(e.op, 0.0) + e.words
            s.time[e.op] = s.time.get(e.op, 0.0) + e.duration
            s.rounds[e.op] = s.rounds.get(e.op, 0) + e.rounds
            s.congestion[e.op] = max(s.congestion.get(e.op, 0), e.congestion)
        return s
