"""Optional per-rank event tracing.

When enabled on the runtime, every communication primitive appends a
:class:`TraceEvent` (operation, payload words, simulated start/end). Traces
make two things cheap: debugging distributed control flow, and unit-testing
that an algorithm issued exactly the primitives the paper's pseudocode says
it should (e.g. Algorithm 3 does one prefix-sum, one broadcast and one
combine per iteration).

Since collectives are lowered onto explicit round schedules
(:mod:`repro.machine.topology`), every event also records the rounds the
schedule ran: ``rounds`` (how many), ``congestion`` (max transfers one
rank serialised in a round) and ``round_times`` (the simulated seconds of
each round) — the per-round evidence reports summarise per collective.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One communication primitive as seen from one rank."""

    rank: int
    op: str
    words: float
    t_start: float
    t_end: float
    detail: str = ""
    #: Rounds the lowered schedule executed (0 for a free p=1 collective).
    rounds: int = 0
    #: Max transfers incident on one rank within one schedule round.
    congestion: int = 0
    #: Per-round simulated seconds of the schedule (crossbar totals keep
    #: the closed-form price; see Schedule.cost).
    round_times: tuple = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Thread-safe append-only event log."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []

    enabled = True

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, rank: int | None = None, op: str | None = None) -> list[TraceEvent]:
        with self._lock:
            evs = list(self._events)
        if rank is not None:
            evs = [e for e in evs if e.rank == rank]
        if op is not None:
            evs = [e for e in evs if e.op == op]
        return evs

    def count(self, op: str, rank: int | None = None) -> int:
        return len(self.events(rank=rank, op=op))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class NullTracer:
    """No-op tracer used when tracing is disabled (the default)."""

    enabled = False

    def record(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    def events(self, rank: int | None = None, op: str | None = None) -> list[TraceEvent]:
        return []

    def count(self, op: str, rank: int | None = None) -> int:
        return 0

    def clear(self) -> None:  # pragma: no cover - trivial
        pass


@dataclass
class TraceSummary:
    """Aggregate view over a tracer, keyed by op name."""

    counts: dict = field(default_factory=dict)
    words: dict = field(default_factory=dict)
    time: dict = field(default_factory=dict)
    rounds: dict = field(default_factory=dict)
    congestion: dict = field(default_factory=dict)

    @classmethod
    def from_tracer(cls, tracer: Tracer, rank: int | None = None) -> "TraceSummary":
        s = cls()
        for e in tracer.events(rank=rank):
            s.counts[e.op] = s.counts.get(e.op, 0) + 1
            s.words[e.op] = s.words.get(e.op, 0.0) + e.words
            s.time[e.op] = s.time.get(e.op, 0.0) + e.duration
            s.rounds[e.op] = s.rounds.get(e.op, 0) + e.rounds
            s.congestion[e.op] = max(s.congestion.get(e.op, 0), e.congestion)
        return s
