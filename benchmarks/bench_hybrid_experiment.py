"""Section 5 hybrid experiment: deterministic parallel skeletons with
randomized sequential local parts.

Paper claim pinned: the hybrids land strictly between their deterministic
parents and the fully randomized algorithm — most of the deterministic
slowdown at large n is the sequential constant.

Rendered series: ``python -m repro.bench hybrid``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

N = 128 * KILO


@pytest.mark.parametrize("algorithm,balancer", [
    ("hybrid_median_of_medians", "global_exchange"),
    ("hybrid_bucket_based", "none"),
])
def test_hybrid_point(benchmark, algorithm, balancer):
    result = bench_point(benchmark, algorithm, N, 8, distribution="random",
                         balancer=balancer)
    assert result.simulated_time > 0


def test_hybrid_sits_between_parents(benchmark):
    hybrid = bench_point(benchmark, "hybrid_median_of_medians", N, 8,
                         distribution="random", balancer="global_exchange")
    mom = run_point("median_of_medians", N, 8, distribution="random",
                    balancer="global_exchange")
    rnd = run_point("randomized", N, 8, distribution="random",
                    balancer="none")
    benchmark.extra_info["randomized_s"] = rnd.simulated_time
    benchmark.extra_info["hybrid_s"] = hybrid.simulated_time
    benchmark.extra_info["mom_s"] = mom.simulated_time
    assert rnd.simulated_time < hybrid.simulated_time < mom.simulated_time
