"""Figure 4: the two randomized algorithms on sorted (worst-case) data with
each one's best balancing strategy — none for randomized, modified OMLB for
fast randomized.

Paper claim pinned: for large n, fast randomized selection is superior on
sorted data, and its comparative advantage is larger than on random data.

Full grid: ``python -m repro.bench fig4 --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

CONFIGS = [
    ("randomized", "none"),
    ("fast_randomized", "modified_omlb"),
]


@pytest.mark.parametrize("algorithm,balancer", CONFIGS)
@pytest.mark.parametrize("n", [128 * KILO, 512 * KILO])
def test_fig4_point(benchmark, algorithm, balancer, n):
    result = bench_point(
        benchmark, algorithm, n, 8, distribution="sorted", balancer=balancer
    )
    assert result.simulated_time > 0


def test_fig4_fast_randomized_wins_at_large_n(benchmark):
    n = 512 * KILO
    fast = bench_point(benchmark, "fast_randomized", n, 8,
                       distribution="sorted", balancer="modified_omlb")
    rnd = run_point("randomized", n, 8, distribution="sorted", balancer="none")
    benchmark.extra_info["fast_over_randomized"] = (
        fast.simulated_time / rnd.simulated_time
    )
    assert fast.simulated_time < rnd.simulated_time
