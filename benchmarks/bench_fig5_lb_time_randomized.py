"""Figure 5: time spent inside load balancing for randomized selection
(bars N/O/D/G in the paper; here the balance share of the simulated time).

Paper claims pinned: on sorted data a *significant fraction* of randomized
selection's execution time goes to balancing; the choice of balancing
algorithm makes little difference.

Full grid: ``python -m repro.bench fig5 --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

N = 256 * KILO
STRATEGIES = ["modified_omlb", "dimension_exchange", "global_exchange"]


@pytest.mark.parametrize("balancer", STRATEGIES)
@pytest.mark.parametrize("distribution", ["random", "sorted"])
def test_fig5_point(benchmark, balancer, distribution):
    result = bench_point(
        benchmark, "randomized", N, 8, distribution=distribution,
        balancer=balancer,
    )
    assert 0 < result.balance_time < result.simulated_time


def test_fig5_sorted_balance_share_significant(benchmark):
    result = bench_point(benchmark, "randomized", N, 8, distribution="sorted",
                         balancer="global_exchange")
    share = result.balance_time / result.simulated_time
    benchmark.extra_info["balance_share"] = share
    assert share > 0.15  # "a significant fraction"


def test_fig5_strategy_choice_minor(benchmark):
    times = {}
    first = bench_point(benchmark, "randomized", N, 8, distribution="sorted",
                        balancer=STRATEGIES[0])
    times[STRATEGIES[0]] = first.simulated_time
    for s in STRATEGIES[1:]:
        times[s] = run_point("randomized", N, 8, distribution="sorted",
                             balancer=s).simulated_time
    spread = max(times.values()) / min(times.values())
    benchmark.extra_info["strategy_spread"] = spread
    assert spread < 2.0  # "did not make a significant difference"
