"""Figure 6: time spent inside load balancing for fast randomized selection.

Paper claim pinned: fast randomized selection spends much less time
balancing than randomized selection — it invokes the balancer O(log log n)
times instead of O(log n) times and carries less data per iteration.

Full grid: ``python -m repro.bench fig6 --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

N = 256 * KILO
STRATEGIES = ["modified_omlb", "dimension_exchange", "global_exchange"]


@pytest.mark.parametrize("balancer", STRATEGIES)
@pytest.mark.parametrize("distribution", ["random", "sorted"])
def test_fig6_point(benchmark, balancer, distribution):
    result = bench_point(
        benchmark, "fast_randomized", N, 8, distribution=distribution,
        balancer=balancer,
    )
    assert 0 < result.balance_time < result.simulated_time


def test_fig6_fast_balances_less_than_randomized(benchmark):
    fast = bench_point(benchmark, "fast_randomized", N, 8,
                       distribution="sorted", balancer="global_exchange")
    rnd = run_point("randomized", N, 8, distribution="sorted",
                    balancer="global_exchange")
    benchmark.extra_info["fast_balance_s"] = fast.balance_time
    benchmark.extra_info["randomized_balance_s"] = rnd.balance_time
    benchmark.extra_info["fast_lb_invocations"] = fast.iterations
    benchmark.extra_info["randomized_lb_invocations"] = rnd.iterations
    assert fast.balance_time < rnd.balance_time
    assert fast.iterations < rnd.iterations  # O(log log n) vs O(log n)
