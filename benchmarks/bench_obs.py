"""Observability capture: the obs PR's acceptance bar.

Claims pinned here:

1. Capture-off is the default and leaves NOTHING behind: the identical
   launch sequence run with and without an active span capture (plus
   per-launch tracing forced) produces bit-identical values and
   simulated seconds, and the off arm records zero spans.
2. Fully-on capture is cheap where it matters: at the paper's large n
   (1M, p=8) the whole-sequence wall overhead of the heaviest capture
   configuration stays under 10%.
3. The capture is usable evidence, not just cheap: the exported Chrome
   trace-event document passes schema validation (loadable at
   https://ui.perfetto.dev).

Full grid: ``python -m repro.bench obs --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_obs_point

N_IDENTITY = 128 * KILO
N_OVERHEAD = 1024 * KILO  # the acceptance bar: n = 1M, p = 8
P_OVERHEAD = 8
MAX_OVERHEAD = 0.10


@pytest.mark.parametrize("algorithm", ["fast_randomized", "randomized"])
def test_capture_bit_identical_and_chrome_valid(benchmark, algorithm):
    pt = benchmark.pedantic(
        run_obs_point, args=(algorithm, N_IDENTITY, 4),
        kwargs=dict(launches=4, trials=1), rounds=1, iterations=1,
    )
    benchmark.extra_info["overhead"] = pt.overhead
    benchmark.extra_info["spans"] = pt.spans
    assert pt.bit_identical, (
        f"capture changed the experiment: off={pt.answers_off} "
        f"on={pt.answers_on}"
    )
    assert pt.spans > 0, "the ON arm must actually record spans"
    assert pt.chrome_valid, "exported Chrome trace failed schema validation"


def test_capture_overhead_under_10_percent_large_n(benchmark):
    """n=1M, p=8: fully-on capture (span recorder + forced per-launch
    tracing) must cost < 10% whole-sequence wall over the plain path."""
    pt = benchmark.pedantic(
        run_obs_point, args=("fast_randomized", N_OVERHEAD, P_OVERHEAD),
        kwargs=dict(launches=4, trials=3), rounds=1, iterations=1,
    )
    benchmark.extra_info["wall_off_s"] = pt.wall_off
    benchmark.extra_info["wall_on_s"] = pt.wall_on
    benchmark.extra_info["overhead"] = pt.overhead
    benchmark.extra_info["spans"] = pt.spans
    assert pt.bit_identical
    assert pt.overhead < MAX_OVERHEAD, (
        f"capture overhead {pt.overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% at n={N_OVERHEAD}, p={P_OVERHEAD} "
        f"(off={pt.wall_off * 1e3:.1f} ms, on={pt.wall_on * 1e3:.1f} ms)"
    )
