"""Table 1: expected running times with balanced loads — empirical scaling.

The dominant term for every algorithm is O(n/p): quadrupling n at fixed p on
random data must grow simulated time by roughly 4x (communication terms only
grow with log n, so the observed factor sits below ~6 and above ~2).

Rendered table + checks: ``python -m repro.bench table1``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

CONFIGS = [
    ("median_of_medians", "global_exchange"),
    ("randomized", "none"),
    ("fast_randomized", "none"),
]


@pytest.mark.parametrize("algorithm,balancer", CONFIGS)
def test_table1_linear_growth_in_n(benchmark, algorithm, balancer):
    # Quadruple n at fixed p in the compute-dominated regime (n/p >= 32k):
    # the O(n/p) term must dominate, growth factor ~4 (slack for the
    # log-factor comm terms and randomized pivot luck).
    small = run_point(algorithm, 256 * KILO, 8, distribution="random",
                      balancer=balancer, trials=3)
    large = bench_point(benchmark, algorithm, 1024 * KILO, 8,
                        distribution="random", balancer=balancer, trials=3)
    ratio = large.simulated_time / small.simulated_time
    benchmark.extra_info["n_scaling_factor"] = ratio
    assert 1.8 < ratio < 6.5


@pytest.mark.parametrize("algorithm,balancer", CONFIGS)
def test_table1_p_scaling_reduces_time(benchmark, algorithm, balancer):
    # At fixed n the n/p term dominates: p 4 -> 16 should cut time clearly.
    big_p = bench_point(benchmark, algorithm, 256 * KILO, 16,
                        distribution="random", balancer=balancer)
    small_p = run_point(algorithm, 256 * KILO, 4, distribution="random",
                        balancer=balancer)
    benchmark.extra_info["speedup_4_to_16"] = (
        small_p.simulated_time / big_p.simulated_time
    )
    assert big_p.simulated_time < small_p.simulated_time
