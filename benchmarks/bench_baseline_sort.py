"""Baseline: selection vs full-sort-then-index (related-work strawman).

The paper's premise — a dedicated O(n/p) selection beats the obvious
O((n log n)/p) sort-based approach — quantified on the same substrate
(both use this library's sample sort where they sort at all).
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

N = 256 * KILO


@pytest.mark.parametrize("algorithm", ["sort_based", "fast_randomized",
                                       "randomized"])
def test_baseline_point(benchmark, algorithm):
    result = bench_point(benchmark, algorithm, N, 8, distribution="random",
                         balancer="none")
    assert result.simulated_time > 0


def test_selection_beats_full_sort(benchmark):
    sort = bench_point(benchmark, "sort_based", N, 8, distribution="random",
                       balancer="none", trials=2)
    fast = run_point("fast_randomized", N, 8, distribution="random",
                     balancer="none", trials=2)
    ratio = sort.simulated_time / fast.simulated_time
    benchmark.extra_info["sort_over_fast_randomized"] = ratio
    assert ratio > 3.0  # selection exists for a reason
