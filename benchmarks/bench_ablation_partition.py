"""Ablation: duplicate handling (DESIGN.md deviation #1).

The paper's 2-way (<=, >) split livelocks once every live key equals the
pivot; the library's 3-way split terminates in O(1) extra iterations on
duplicate-heavy inputs. This bench pins termination behaviour and the raw
kernel cost difference (3-way does one extra comparison pass).

Rendered report: ``python -m repro.bench ablation-partition``.
"""

import numpy as np
import pytest

from repro.bench.harness import KILO
from repro.kernels.partition import partition2, partition3

from conftest import bench_point

N = 128 * KILO


@pytest.mark.parametrize("distribution", ["all_equal", "few_distinct", "zipf"])
def test_ablation_duplicates_terminate(benchmark, distribution):
    result = bench_point(benchmark, "randomized", N, 8,
                         distribution=distribution, balancer="none")
    # Few distinct values: at most ~#values successful splits are needed.
    assert result.iterations <= 12


def test_ablation_partition3_kernel_overhead(benchmark):
    """The 3-way kernel costs at most ~2x the 2-way kernel per pass."""
    arr = np.random.default_rng(0).integers(0, 8, 1 << 20)

    def both():
        partition3(arr, 4)
        return True

    assert benchmark.pedantic(both, rounds=3, iterations=1)
    import time

    t0 = time.perf_counter()
    partition2(arr, 4)
    t2 = time.perf_counter() - t0
    t0 = time.perf_counter()
    partition3(arr, 4)
    t3 = time.perf_counter() - t0
    benchmark.extra_info["three_way_over_two_way_wall"] = t3 / t2 if t2 else 0
