"""Figure 1: the four selection algorithms on random data.

Paper claims pinned here (n=2M, p=32 in the paper; scaled grid point):
randomized algorithms beat the deterministic ones by roughly an order of
magnitude (>=16x for median of medians, >=9x for bucket-based at paper
scale), and bucket-based beats median of medians by about 2x.

Full grid: ``python -m repro.bench fig1 --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

N = 128 * KILO
FIG1 = [
    ("median_of_medians", "global_exchange"),
    ("bucket_based", "none"),
    ("randomized", "none"),
    ("fast_randomized", "none"),
]


@pytest.mark.parametrize("algorithm,balancer", FIG1)
@pytest.mark.parametrize("p", [4, 16])
def test_fig1_point(benchmark, algorithm, balancer, p):
    result = bench_point(
        benchmark, algorithm, N, p, distribution="random", balancer=balancer
    )
    assert result.simulated_time > 0


def test_fig1_randomized_order_of_magnitude(benchmark):
    """The figure's headline: deterministic >> randomized on random data."""
    rnd = bench_point(benchmark, "randomized", N, 16, distribution="random",
                      balancer="none")
    mom = run_point("median_of_medians", N, 16, distribution="random",
                    balancer="global_exchange")
    bucket = run_point("bucket_based", N, 16, distribution="random",
                       balancer="none")
    benchmark.extra_info["mom_over_randomized"] = (
        mom.simulated_time / rnd.simulated_time
    )
    benchmark.extra_info["bucket_over_randomized"] = (
        bucket.simulated_time / rnd.simulated_time
    )
    assert mom.simulated_time > 5 * rnd.simulated_time
    assert bucket.simulated_time > 3 * rnd.simulated_time
    # Bucket-based is the better deterministic algorithm (paper: ~2x).
    assert bucket.simulated_time < mom.simulated_time
