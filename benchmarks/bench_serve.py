"""Multi-tenant serving tier: the serving PR's acceptance bar.

Claims pinned here:

1. A mixed multi-tenant trace replayed through a coalescing
   :class:`~repro.serve.SelectionService` returns answers bit-identical
   to direct query-at-a-time :class:`~repro.core.session.Session`
   launches over the same data.
2. At client concurrency >= 16 the coalescing service beats the
   query-at-a-time front door on whole-trace throughput, and the
   advantage GROWS with concurrency (more concurrent queries land in
   each coalescing window, so fewer launches answer the same trace).
   Wall-clock-robust on a single core: the win comes from launches NOT
   executed, not from parallelism.
3. The p50/p99 the service reports come from its own latency
   :class:`~repro.stream.sketch.QuantileSketch` — present, ordered, and
   covering every resolved query.

Full grid: ``python -m repro.bench serve --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_serve_point

N = 32 * KILO
P = 4
QUERIES = 48
CONCURRENCY = (4, 16)


@pytest.fixture(scope="module")
def serve_point():
    return run_serve_point(
        "fast_randomized", N, P, queries=QUERIES, concurrency=CONCURRENCY,
        trials=2,
    )


def test_serve_answers_bit_identical(benchmark, serve_point):
    pt = benchmark.pedantic(lambda: serve_point, rounds=1, iterations=1)
    assert pt.answers_agree, (
        "coalesced service answers must be bit-identical to direct "
        "query-at-a-time Session answers"
    )


def test_serve_coalescing_beats_query_at_a_time(serve_point):
    pt = serve_point
    assert pt.speedup(16) > 1.0, (
        f"coalescing service must beat query-at-a-time throughput at "
        f"concurrency 16, got {pt.speedup(16):.2f}x "
        f"(baseline={pt.baseline_qps:.1f} q/s, c16={pt.qps(16):.1f} q/s)"
    )
    assert pt.launches[16] < pt.baseline_launches, (
        f"the win must come from launches not executed: service paid "
        f"{pt.launches[16]} vs baseline {pt.baseline_launches}"
    )
    assert pt.launches_saved[16] > 0


def test_serve_advantage_grows_with_concurrency(serve_point):
    pt = serve_point
    assert pt.launches[16] <= pt.launches[4], (
        f"higher concurrency must coalesce into no more launches: "
        f"c16={pt.launches[16]} vs c4={pt.launches[4]}"
    )
    assert pt.speedup(16) > pt.speedup(4), (
        f"throughput advantage must grow with concurrency: "
        f"c4={pt.speedup(4):.2f}x vs c16={pt.speedup(16):.2f}x"
    )


def test_serve_latency_from_own_sketch(serve_point):
    pt = serve_point
    for c in CONCURRENCY:
        assert pt.p50s[c] > 0.0 and pt.p99s[c] > 0.0
        assert pt.p50s[c] <= pt.p99s[c], (
            f"sketch quantiles must be ordered at c={c}: "
            f"p50={pt.p50s[c]}, p99={pt.p99s[c]}"
        )
