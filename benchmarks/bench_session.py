"""Session serving layer: query coalescing + result caching.

Claims pinned here (the Plan/Session PR's acceptance bar):

1. A ``Session`` flush of ``q >= 3`` rank queries on the same array
   executes exactly ONE SPMD launch (asserted against the runtime's own
   launch counter) with lower total simulated time than ``q`` independent
   ``select`` calls.
2. Re-querying any answered rank is a cache hit: ZERO new launches, the
   same value, ``cached=True`` on the served report.
3. The legacy one-shot functions still pay one launch per call (they shim
   through an uncached session), and their values agree with the
   coalesced path.

Full grid: ``python -m repro.bench session --scale paper``.
"""

import numpy as np
import pytest

import repro
from repro.bench.harness import KILO, quantile_ranks, run_session_point

N = 128 * KILO
P = 8


def _machine_and_data(seed=0):
    machine = repro.Machine(n_procs=P)
    data = machine.generate(N, distribution="random", seed=seed)
    return machine, data


@pytest.mark.parametrize("q", [3, 5, 9])
def test_flush_is_one_launch_and_beats_independent(benchmark, q):
    pt = benchmark.pedantic(
        run_session_point, args=("fast_randomized", N, P, q),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["q"] = q
    benchmark.extra_info["flush_simulated_s"] = pt.flush_simulated
    benchmark.extra_info["independent_simulated_s"] = pt.independent_simulated
    benchmark.extra_info["speedup"] = pt.speedup
    assert pt.flush_launches == 1, "coalesced flush must be ONE SPMD launch"
    assert pt.flush_simulated < pt.independent_simulated, (
        "one coalesced launch must beat q independent selects"
    )
    assert pt.replay_launches == 0, "cache replay must not launch"
    assert pt.replay_hits == q


def test_flush_counters_from_runtime(benchmark):
    """The one-launch claim straight from the SPMD runtime counter, with
    values checked against a host-side oracle."""
    machine, data = _machine_and_data()
    oracle = np.sort(data.gather())
    ks = quantile_ranks(N, 5)

    def serve():
        session = machine.session()
        before = machine.launch_count
        futures = [session.select(data, k) for k in ks]
        session.flush()
        return session, futures, machine.launch_count - before

    session, futures, launches = benchmark.pedantic(
        serve, rounds=1, iterations=1
    )
    assert launches == 1
    for k, fut in zip(ks, futures):
        assert fut.value == oracle[k - 1]
    # Re-query every answered rank: zero launches, cached=True.
    before = machine.launch_count
    replay = [session.select(data, k).result() for k in ks]
    assert machine.launch_count == before
    assert all(rep.cached for rep in replay)
    assert [rep.value for rep in replay] == [fut.value for fut in futures]


def test_coalesced_beats_legacy_and_values_agree(benchmark):
    """End to end: one flush vs the legacy per-call API over the same
    ranks; same answers, less simulated time, fewer launches."""
    machine, data = _machine_and_data(seed=3)
    ks = quantile_ranks(N, 5)

    with machine.session() as session:
        futures = [session.select(data, k) for k in ks]
    coalesced_sim = futures[0].result().simulated_time

    before = machine.launch_count
    legacy = benchmark.pedantic(
        lambda: [repro.select(data, k) for k in ks], rounds=1, iterations=1
    )
    assert machine.launch_count - before == len(ks), (
        "legacy calls must stay one launch each"
    )
    assert [r.value for r in legacy] == [f.value for f in futures]
    legacy_sim = sum(r.simulated_time for r in legacy)
    benchmark.extra_info["coalesced_simulated_s"] = coalesced_sim
    benchmark.extra_info["legacy_simulated_s"] = legacy_sim
    assert coalesced_sim < legacy_sim
