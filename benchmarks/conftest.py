"""Shared helpers for the per-figure benchmark modules.

Each benchmark runs one grid point of the corresponding paper figure under
pytest-benchmark (wall seconds of the simulation) and attaches the simulated
metrics — the paper-comparable numbers — via ``benchmark.extra_info``.

The full Section 5 grid is intentionally *not* run here (it belongs to the
CLI: ``python -m repro.bench <fig> --scale paper``); these modules pin a
representative subset per figure plus the figure's qualitative claim as an
assertion, so ``pytest benchmarks/ --benchmark-only`` is a regression gate
for both performance plumbing and reproduction shape.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import KILO, run_point

__all__ = ["KILO", "bench_point"]


def bench_point(benchmark, algorithm, n, p, **kwargs):
    """Run one grid point under pytest-benchmark; returns the PointResult."""
    result = benchmark.pedantic(
        run_point,
        args=(algorithm, n, p),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["n"] = n
    benchmark.extra_info["p"] = p
    benchmark.extra_info["distribution"] = kwargs.get("distribution", "random")
    benchmark.extra_info["balancer"] = kwargs.get("balancer", "none")
    benchmark.extra_info["simulated_time_s"] = result.simulated_time
    benchmark.extra_info["balance_time_s"] = result.balance_time
    benchmark.extra_info["iterations"] = result.iterations
    return result


@pytest.fixture
def point_runner(benchmark):
    def _run(algorithm, n, p, **kwargs):
        return bench_point(benchmark, algorithm, n, p, **kwargs)

    return _run
