"""Single-pass multi-rank selection vs repeated single-rank selection.

The claim pinned here (the batching PR's acceptance bar): answering ``q``
evenly spaced quantile ranks with ONE ``multi_select`` launch costs less
simulated time than ``q`` independent ``select`` launches over the same
data, for every ``q >= 3``, on the paper's random workload — and the
advantage grows with ``q``.

Full grid: ``python -m repro.bench multiselect --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_multiselect_point

N = 128 * KILO
P = 8


def _bench_pair(benchmark, algorithm, q, **kwargs):
    batched, repeated = benchmark.pedantic(
        run_multiselect_point,
        args=(algorithm, N, P, q),
        kwargs=kwargs,
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["q"] = q
    benchmark.extra_info["n"] = N
    benchmark.extra_info["p"] = P
    benchmark.extra_info["batched_simulated_s"] = batched.simulated_time
    benchmark.extra_info["repeated_simulated_s"] = repeated.simulated_time
    benchmark.extra_info["speedup"] = (
        repeated.simulated_time / batched.simulated_time
    )
    return batched, repeated


@pytest.mark.parametrize("algorithm", [
    "fast_randomized", "randomized", "bucket_based",
])
@pytest.mark.parametrize("q", [3, 5, 9])
def test_one_pass_beats_repeated(benchmark, algorithm, q):
    batched, repeated = _bench_pair(benchmark, algorithm, q)
    assert batched.simulated_time < repeated.simulated_time


def test_advantage_grows_with_q(benchmark):
    """More targets amortise better: the q=9 speedup must beat q=3's."""
    b3, r3 = run_multiselect_point("fast_randomized", N, P, 3)
    b9, r9 = _bench_pair(benchmark, "fast_randomized", 9)
    assert (r9.simulated_time / b9.simulated_time) > (
        r3.simulated_time / b3.simulated_time
    )


def test_quantiles_api_single_launch(benchmark):
    """quantiles() itself rides the batched path: its per-quantile reports
    share one launch's simulated time instead of summing q launches."""
    import numpy as np

    import repro

    machine = repro.Machine(n_procs=P)
    data = machine.generate(N, distribution="random", seed=0)
    qs = [0.1, 0.25, 0.5, 0.75, 0.9]

    reports = benchmark.pedantic(
        repro.quantiles, args=(data, qs), rounds=1, iterations=1
    )
    ref = np.sort(data.gather())
    for q, rep in zip(qs, reports):
        k = max(1, int(np.ceil(q * N)))
        assert rep.value == ref[k - 1]
    # One launch: every report carries the same batched metrics.
    assert len({rep.simulated_time for rep in reports}) == 1
    repeated = sum(
        repro.select(data, rep.k).simulated_time for rep in reports
    )
    benchmark.extra_info["batched_simulated_s"] = reports[0].simulated_time
    benchmark.extra_info["repeated_simulated_s"] = repeated
    assert reports[0].simulated_time < repeated
