"""Machine shapes: crossbar bit-identity + hierarchical-cost ordering.

Claims pinned here (the topology PR's acceptance bar):

1. On the default ``crossbar`` topology the schedule-lowered collective
   engine charges EXACTLY the paper's closed-form prices — a fixed
   deterministic collective program's simulated time equals a
   reference computed with the pre-refactor monolithic formulas,
   bit-for-bit (``==``, not approx).
2. The same launch returns the SAME selection value on every topology:
   shapes only reprice rounds, they never touch the rendezvous
   semantics.
3. On a hierarchical cost model with slow inter-cluster links
   (``cm5_two_level``), the ``two-level`` shape is STRICTLY slower than
   the crossbar for a real selection workload — the round schedules
   actually feel the machine shape.

Full grid: ``python -m repro.bench topology --scale paper``.
"""

import math

import numpy as np
import pytest

import repro
from repro.bench.harness import KILO, run_topology_point
from repro.machine import CostModel, run_spmd
from repro.machine.cost_model import ComputeCosts

N = 128 * KILO
P = 4

#: Deliberately awkward link constants: any closed-form-vs-per-round-sum
#: float drift would show in the low bits immediately.
PIN_MODEL = CostModel(
    tau=0.1, mu=0.007,
    compute=ComputeCosts(0, 0, 0, 0, 0, 0, 0, 0),
    name="pin",
)


def _collective_program(ctx):
    """A deterministic mixed-primitive program exercising all 8 paths."""
    ctx.comm.broadcast(np.zeros(17) if ctx.rank == 0 else None, root=0)
    ctx.comm.combine(float(ctx.rank))
    ctx.comm.prefix_sum(ctx.rank + 1)
    ctx.comm.gather(np.zeros(9), root=min(2, ctx.size - 1))
    ctx.comm.global_concat(np.zeros(3))
    sends = [
        np.zeros(ctx.rank + d + 1) if d != ctx.rank else None
        for d in range(ctx.size)
    ]
    ctx.comm.alltoallv(sends)
    partner = ctx.rank ^ 1
    partner = partner if partner < ctx.size else None
    ctx.comm.pairwise_exchange(
        partner, np.zeros(31) if partner is not None else None
    )
    ctx.comm.barrier()
    return ctx.clock.now


def _legacy_reference(p: int, tau: float, mu: float) -> float:
    """The pre-refactor monolithic cost of ``_collective_program``.

    Every formula below is the paper's Section 2.2 price exactly as the
    historical engine computed it — the pin this file exists for.
    """
    L = max(0, int(math.ceil(math.log2(p)))) if p > 1 else 0
    t = 0.0
    t += (tau + mu * 17.0) * L                       # broadcast
    t += (tau + mu * 1.0) * L                        # combine (scalar)
    t += (tau + mu * 1.0) * L                        # prefix (scalar)
    t += tau * L + mu * 9.0 * (p - 1)                # gather
    t += tau * L + mu * 3.0 * (p - 1)                # allgather
    # alltoallv: rank i sends (i + d + 1) words to every d != i.
    out = [sum(i + d + 1 for d in range(p) if d != i) for i in range(p)]
    inc = [sum(s + d + 1 for s in range(p) if s != d) for d in range(p)]
    traffic = max(max(o, i_) for o, i_ in zip(out, inc)) if p > 1 else 0.0
    max_msgs = p - 1 if p > 1 else 0
    t += tau * max_msgs + 2.0 * mu * float(traffic)
    # pairwise exchange: every live pair swaps 31 words.
    if p > 1:
        t += tau + mu * 31.0
    t += (tau + mu) * L                              # barrier
    return t


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8, 16])
def test_crossbar_times_bit_identical_to_prerefactor_pins(benchmark, p):
    res = benchmark.pedantic(
        run_spmd, args=(_collective_program, p),
        kwargs=dict(cost_model=PIN_MODEL, topology="crossbar"),
        rounds=1, iterations=1,
    )
    expected = _legacy_reference(p, PIN_MODEL.tau, PIN_MODEL.mu)
    benchmark.extra_info["simulated_s"] = res.simulated_time
    assert res.simulated_time == expected, (
        f"crossbar p={p}: schedule-lowered cost {res.simulated_time!r} is "
        f"not bit-identical to the pre-refactor formula {expected!r}"
    )
    # Every rank agrees (bulk-synchronous clocks).
    assert all(c == expected for c in res.clocks)


def test_values_identical_across_topologies_and_two_level_slower(benchmark):
    pt = benchmark.pedantic(
        run_topology_point, args=("fast_randomized", N, P),
        kwargs=dict(trials=1), rounds=1, iterations=1,
    )
    benchmark.extra_info["simulated_s"] = dict(pt.simulated_times)
    benchmark.extra_info["hierarchical_s"] = dict(pt.hierarchical_times)
    assert pt.values_agree, f"topologies disagree on the answer: {pt.values}"
    # The acceptance gate: slow inter-cluster links make the two-level
    # machine strictly slower than the crossbar at the same workload.
    assert pt.hierarchical_times["two-level"] > pt.hierarchical_times["crossbar"], (
        f"two-level with slow inter links must be strictly slower than "
        f"crossbar, got {pt.hierarchical_times}"
    )
    # And the flat crossbar price is untouched by the hierarchy fields.
    assert pt.hierarchical_times["crossbar"] == pt.simulated_times["crossbar"]


def test_crossbar_selection_identical_with_and_without_topology_arg(benchmark):
    def run_both():
        out = {}
        for topo in (None, "crossbar"):
            machine = repro.Machine(n_procs=P, topology=topo)
            data = machine.generate(N, distribution="zipf", seed=11)
            out[topo] = data.select(N // 3, seed=5)
        return out

    reports = benchmark.pedantic(run_both, rounds=1, iterations=1)
    default, explicit = reports[None], reports["crossbar"]
    assert default.value == explicit.value
    assert default.simulated_time == explicit.simulated_time
    assert default.breakdown == explicit.breakdown
    assert default.topology == explicit.topology == "crossbar"
