"""Query planner: the planner PR's acceptance bar.

Claims pinned here:

1. Auto is value-safe and never slower than the default plan: with the
   residual store calibrated by the static runs of the same point,
   ``algorithm="auto"`` answers bit-identically to every static plan and
   its median simulated time is <= the default plan's (fast_randomized)
   across a (n, p, distribution) grid.
2. Auto beats the worst static plan by >= 1.5x on every grid point (the
   planner's reason to exist: picking by cost model avoids the
   catastrophic choices).
3. Planning is effectively free: one pure ``choose_plan`` call costs
   < 1 ms median wall.
4. Self-calibration works: the residual store shrinks the median
   predicted-vs-actual relative error on every point.

Full grid: ``python -m repro.bench planner --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_planner_point

GRID = [
    (32 * KILO, 4, "random"),
    (32 * KILO, 16, "random"),
    (128 * KILO, 8, "random"),
    (32 * KILO, 8, "sorted"),
    (128 * KILO, 16, "sorted"),
]

MIN_SPEEDUP_VS_WORST = 1.5
MAX_PLAN_OVERHEAD_S = 1e-3


@pytest.mark.parametrize("n,p,distribution", GRID)
def test_auto_beats_default_and_worst(benchmark, n, p, distribution):
    pt = benchmark.pedantic(
        run_planner_point, args=(n, p),
        kwargs=dict(distribution=distribution, trials=3), rounds=1,
        iterations=1,
    )
    benchmark.extra_info["chosen_algorithm"] = pt.chosen_algorithm
    benchmark.extra_info["speedup_vs_default"] = pt.speedup_vs_default
    benchmark.extra_info["speedup_vs_worst"] = pt.speedup_vs_worst
    benchmark.extra_info["planner_overhead_s"] = pt.overhead_s
    assert pt.value_match, (
        "auto answered differently from a static plan — the planner broke "
        "value identity"
    )
    assert pt.auto_simulated <= pt.default_simulated * (1 + 1e-9), (
        f"auto ({pt.chosen_algorithm}, {pt.auto_simulated:.6f}s) is slower "
        f"than the default plan ({pt.default_simulated:.6f}s) at "
        f"n={n}, p={p}, {distribution}"
    )
    assert pt.speedup_vs_worst >= MIN_SPEEDUP_VS_WORST, (
        f"auto is only {pt.speedup_vs_worst:.2f}x over the worst static "
        f"plan (need >= {MIN_SPEEDUP_VS_WORST}x) at n={n}, p={p}, "
        f"{distribution}"
    )


def test_planner_overhead_under_1ms(benchmark):
    pt = benchmark.pedantic(
        run_planner_point, args=(128 * KILO, 8),
        kwargs=dict(trials=2), rounds=1, iterations=1,
    )
    benchmark.extra_info["planner_overhead_s"] = pt.overhead_s
    assert pt.overhead_s < MAX_PLAN_OVERHEAD_S, (
        f"choose_plan costs {pt.overhead_s * 1e3:.3f} ms median "
        f"(budget {MAX_PLAN_OVERHEAD_S * 1e3:.1f} ms)"
    )


def test_calibration_shrinks_relative_error(benchmark):
    pt = benchmark.pedantic(
        run_planner_point, args=(64 * KILO, 8),
        kwargs=dict(trials=3), rounds=1, iterations=1,
    )
    before = pt.median_rel_err(corrected=False)
    after = pt.median_rel_err(corrected=True)
    benchmark.extra_info["median_rel_err_before"] = before
    benchmark.extra_info["median_rel_err_after"] = after
    assert after < before, (
        f"residual calibration did not shrink the median relative error "
        f"(before={before:.4f}, after={after:.4f})"
    )
