"""Figure 3: fast randomized selection under the four balancing strategies.

Reproduction note (EXPERIMENTS.md, deviation D1): under the pure two-level
model with the ``CM5`` calibration, moving one element through the
transportation primitive costs ``2*mu`` ~ 3.5 partition rescans, while fast
randomized selection only rescans a surviving element ~1.15x more when it is
left unbalanced — so the paper's "balancing helps fast randomized on sorted
data" claim flips sign at paper bandwidth. The claim *does* reproduce under
the documented ``cm5_fast_network`` calibration (cheap transfers relative to
compute), which is what the dedicated assertions below pin; under ``CM5``
we pin the weaker true statement (balanced run within 1.6x).

Full grid: ``python -m repro.bench fig3 --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_point
from repro.machine.cost_model import cm5_fast_network

from conftest import bench_point

N = 128 * KILO
STRATEGIES = ["none", "modified_omlb", "dimension_exchange", "global_exchange"]


@pytest.mark.parametrize("balancer", STRATEGIES)
@pytest.mark.parametrize("distribution", ["random", "sorted"])
def test_fig3_point(benchmark, balancer, distribution):
    result = bench_point(
        benchmark, "fast_randomized", N, 8, distribution=distribution,
        balancer=balancer,
    )
    assert result.simulated_time > 0


def test_fig3_balancing_helps_on_sorted_fast_network(benchmark):
    """The paper's claim, reproduced under the fast-network calibration."""
    model = cm5_fast_network()
    base = bench_point(benchmark, "fast_randomized", 512 * KILO, 16,
                       distribution="sorted", balancer="none",
                       cost_model=model, trials=3)
    balanced = run_point("fast_randomized", 512 * KILO, 16,
                         distribution="sorted", balancer="modified_omlb",
                         cost_model=model, trials=3)
    benchmark.extra_info["momlb_over_none"] = (
        balanced.simulated_time / base.simulated_time
    )
    assert balanced.simulated_time < base.simulated_time


def test_fig3_balancing_not_catastrophic_on_cm5(benchmark):
    """Under paper bandwidth (CM5) balancing costs at most ~1.6x on sorted
    data — the transfer-vs-rescan trade documented as deviation D1."""
    base = bench_point(benchmark, "fast_randomized", 512 * KILO, 16,
                       distribution="sorted", balancer="none", trials=3)
    balanced = run_point("fast_randomized", 512 * KILO, 16,
                         distribution="sorted", balancer="modified_omlb",
                         trials=3)
    ratio = balanced.simulated_time / base.simulated_time
    benchmark.extra_info["momlb_over_none_cm5"] = ratio
    assert ratio < 1.6


def test_fig3_low_variance_with_balancing(benchmark):
    """Claim 6: with balancing, fast randomized shows little variance
    between best-case and worst-case inputs (fast-network calibration)."""
    model = cm5_fast_network()
    rand_in = bench_point(benchmark, "fast_randomized", N, 8,
                          distribution="random", balancer="modified_omlb",
                          cost_model=model, trials=3)
    sorted_in = run_point("fast_randomized", N, 8, distribution="sorted",
                          balancer="modified_omlb", cost_model=model,
                          trials=3)
    ratio = sorted_in.simulated_time / rand_in.simulated_time
    benchmark.extra_info["sorted_over_random"] = ratio
    assert ratio < 1.6
