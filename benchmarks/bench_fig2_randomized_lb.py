"""Figure 2: randomized selection under the four balancing strategies.

Paper claims pinned: on random data, *no* load balancing beats every
balancing strategy (claim 4); on sorted data balancing still does not pay
off for this algorithm (claim 5's first half).

Full grid: ``python -m repro.bench fig2 --scale paper``.
"""

import pytest

from repro.bench.harness import KILO, run_point

from conftest import bench_point

N = 128 * KILO
STRATEGIES = ["none", "modified_omlb", "dimension_exchange", "global_exchange"]


@pytest.mark.parametrize("balancer", STRATEGIES)
@pytest.mark.parametrize("distribution", ["random", "sorted"])
def test_fig2_point(benchmark, balancer, distribution):
    result = bench_point(
        benchmark, "randomized", N, 8, distribution=distribution,
        balancer=balancer,
    )
    assert result.simulated_time > 0


def test_fig2_no_balancing_wins_on_random(benchmark):
    # Randomized pivot luck gives large run-to-run variance: average trials
    # (the paper averaged five data sets for the same reason).
    base = bench_point(benchmark, "randomized", 256 * KILO, 16,
                       distribution="random", balancer="none", trials=3)
    for strategy in STRATEGIES[1:]:
        balanced = run_point("randomized", 256 * KILO, 16,
                             distribution="random", balancer=strategy,
                             trials=3)
        benchmark.extra_info[f"{strategy}_over_none"] = (
            balanced.simulated_time / base.simulated_time
        )
        assert balanced.simulated_time > base.simulated_time


def test_fig2_balancing_does_not_pay_on_sorted(benchmark):
    # Paper: "Load balancing never improved the running time of randomized
    # selection" — pinned at the paper's headline grid point (n=2M, p=32),
    # where the compute term dominates.
    base = bench_point(benchmark, "randomized", 2048 * KILO, 32,
                       distribution="sorted", balancer="none", trials=3)
    for strategy in STRATEGIES[1:]:
        balanced = run_point("randomized", 2048 * KILO, 32,
                             distribution="sorted", balancer=strategy,
                             trials=3)
        benchmark.extra_info[f"{strategy}_over_none"] = (
            balanced.simulated_time / base.simulated_time
        )
        assert balanced.simulated_time > 0.95 * base.simulated_time
