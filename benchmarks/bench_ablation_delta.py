"""Ablation: fast randomized sample-size exponent delta (paper: 0.6 best).

A small delta under-samples (wide pivot band, unsuccessful iterations); a
large delta over-samples (the parallel sort of the sample dominates). The
paper settled on 0.6 by experimentation; this bench pins that 0.6 is within
a small factor of the best exponent on the reproduction's cost model.

Rendered series: ``python -m repro.bench ablation-delta``.
"""

import pytest

from repro.bench.harness import KILO, run_point
from repro.selection.fast_randomized import FastRandomizedParams

from conftest import bench_point

N = 256 * KILO
DELTAS = [0.4, 0.6, 0.8]


@pytest.mark.parametrize("delta", DELTAS)
def test_ablation_delta_point(benchmark, delta):
    result = bench_point(
        benchmark, "fast_randomized", N, 8, distribution="random",
        balancer="none", fast_params=FastRandomizedParams(delta=delta),
        trials=2,
    )
    assert result.simulated_time > 0


def test_ablation_paper_delta_is_competitive(benchmark):
    times = {}
    first = bench_point(
        benchmark, "fast_randomized", N, 8, distribution="random",
        balancer="none", fast_params=FastRandomizedParams(delta=0.6),
        trials=2,
    )
    times[0.6] = first.simulated_time
    for d in (0.4, 0.5, 0.7, 0.8):
        times[d] = run_point(
            "fast_randomized", N, 8, distribution="random", balancer="none",
            fast_params=FastRandomizedParams(delta=d), trials=2,
        ).simulated_time
    best = min(times.values())
    benchmark.extra_info["times_by_delta"] = {str(k): v for k, v in times.items()}
    assert times[0.6] <= 1.5 * best
