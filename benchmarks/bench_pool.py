"""Persistent pool backend + fast kernels: the perf PR's acceptance bar.

Claims pinned here:

1. A repeated-launch workload (many selections over the same distributed
   array — the Session serving pattern) produces the SAME values and the
   SAME summed simulated seconds on ``threaded``, ``process`` and
   ``pool``, and the pool's fork receipt for the whole sequence is
   exactly ONE: launches after the first ride warm workers over pinned
   shared-memory shards.
2. On a multi-core host at the paper's large n (>= 2M), the pool's
   whole-sequence wall clock beats BOTH per-launch rivals: ``process``
   (which re-forks and re-pickles every launch) and ``threaded`` (which
   serialises the GIL-churning sequential kernels). Skipped on
   single-core machines, where no forked backend can win wall clock.
3. The vectorised fast kernels are a real wall-clock win where it
   matters most: single-cut ``partition_multiway`` — the contraction
   loop's hottest kernel — runs >= 3x faster than the reference
   implementation on large arrays (runs on any host; pure local CPU).

Full grid: ``python -m repro.bench pool --scale paper``.
"""

import os
import time

import numpy as np
import pytest

from repro.bench.harness import KILO, run_pool_point
from repro.kernels.fast import fast_partition_multiway
from repro.kernels.partition import partition_multiway

N_IDENTITY = 128 * KILO
N_SPEEDUP = 2048 * KILO  # the acceptance bar: n >= 2M
P = 4
LAUNCHES = 6

MULTICORE = (os.cpu_count() or 1) >= 2


@pytest.mark.parametrize("algorithm", ["fast_randomized", "randomized"])
def test_repeated_launches_identical_and_one_fork(benchmark, algorithm):
    pt = benchmark.pedantic(
        run_pool_point, args=(algorithm, N_IDENTITY, P),
        kwargs=dict(launches=LAUNCHES, trials=1), rounds=1, iterations=1,
    )
    benchmark.extra_info["wall_times_s"] = dict(pt.wall_times)
    benchmark.extra_info["fork_counts"] = dict(pt.fork_counts)
    assert pt.values_agree, f"backends disagree on the answers: {pt.values}"
    assert pt.simulated_times_agree, (
        f"backends disagree on simulated time: {pt.simulated_times}"
    )
    assert pt.fork_counts["pool"] == 1, (
        f"{pt.launches} launches must cost ONE pool fork, got "
        f"{pt.fork_counts['pool']}"
    )


@pytest.mark.skipif(
    not MULTICORE,
    reason="single-core host: no forked backend can win wall clock",
)
def test_pool_beats_per_launch_backends_large_n(benchmark):
    """n >= 2M with the paper's sequential kernels (``impl_override=None``):
    forked ranks escape the GIL and the pool additionally amortises the
    per-launch fork + shard pickling that ``process`` pays every time."""
    pt = benchmark.pedantic(
        run_pool_point, args=("median_of_medians", N_SPEEDUP, P),
        kwargs=dict(launches=LAUNCHES, trials=2, impl_override=None),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["wall_times_s"] = dict(pt.wall_times)
    benchmark.extra_info["pool_vs_process"] = pt.speedup("pool", "process")
    benchmark.extra_info["pool_vs_threaded"] = pt.speedup("pool", "threaded")
    assert pt.values_agree
    assert pt.simulated_times_agree
    assert pt.speedup("pool", "process") > 1.0, (
        f"pool must beat process on repeated launches, got "
        f"{pt.speedup('pool', 'process'):.2f}x "
        f"(process={pt.wall_times['process']:.3f}s, "
        f"pool={pt.wall_times['pool']:.3f}s)"
    )
    assert pt.speedup("pool", "threaded") > 1.0, (
        f"pool must beat threaded at large n on a multi-core host, got "
        f"{pt.speedup('pool', 'threaded'):.2f}x "
        f"(threaded={pt.wall_times['threaded']:.3f}s, "
        f"pool={pt.wall_times['pool']:.3f}s)"
    )


def test_fast_single_cut_partition_speedup(benchmark):
    """The contraction loop's hottest kernel: one-cut partition_multiway.
    The reference walks the comparison tree per segment; the fast path is
    two vectorised masked gathers. Order-preserving, so bit-identical."""
    rng = np.random.default_rng(0)
    arr = rng.random(4 * N_SPEEDUP // 2)  # 4M doubles
    cuts = [float(np.median(arr))]

    def best_of(fn, repeats=5):
        walls = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn(arr, cuts)
            walls.append(time.perf_counter() - t0)
        return min(walls)

    def measure():
        return best_of(partition_multiway), best_of(fast_partition_multiway)

    ref_wall, fast_wall = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = ref_wall / fast_wall
    benchmark.extra_info["reference_wall_s"] = ref_wall
    benchmark.extra_info["fast_wall_s"] = fast_wall
    benchmark.extra_info["speedup"] = speedup
    ref_parts = partition_multiway(arr, cuts)
    fast_parts = fast_partition_multiway(arr, cuts)
    for r, f in zip(ref_parts, fast_parts):
        np.testing.assert_array_equal(r, f)
    assert speedup >= 3.0, (
        f"fast single-cut partition must be >= 3x reference, got "
        f"{speedup:.2f}x (ref={ref_wall * 1e3:.1f} ms, "
        f"fast={fast_wall * 1e3:.1f} ms)"
    )
