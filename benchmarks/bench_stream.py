"""Streaming selection subsystem: the sketch-prefilter claims.

Claims pinned here (the streaming PR's acceptance bar):

1. At n >= 1M, a sketch-prefiltered select over a ``StreamingArray``
   (``SelectionPlan(prefilter="sketch")``, ingest-time sketches) beats the
   plain contraction on **simulated time**, with bit-identical values.
2. The surviving fraction the exact contraction grinds is **< 10%** of the
   keys (it is ~2*eps at the default eps=0.01).
3. Re-querying the same ranks with no append in between costs ZERO
   launches (append-aware fingerprint + Session result cache), and an
   append invalidates precisely (the next query launches again).

Full grid: ``python -m repro.bench stream --scale paper``.
"""

import numpy as np
import pytest

import repro
from repro.bench.harness import KILO, run_stream_point

N = 1024 * KILO  # >= 1M keys
P = 8


@pytest.mark.parametrize("algorithm", ["fast_randomized", "randomized"])
def test_prefiltered_beats_plain_at_1m(benchmark, algorithm):
    pt = benchmark.pedantic(
        run_stream_point, args=(algorithm, N, P),
        kwargs=dict(q=3, n_batches=8), rounds=1, iterations=1,
    )
    benchmark.extra_info["prefiltered_simulated_s"] = pt.prefiltered_simulated
    benchmark.extra_info["plain_simulated_s"] = pt.plain_simulated
    benchmark.extra_info["speedup"] = pt.speedup
    benchmark.extra_info["survivor_fraction"] = pt.survivor_fraction
    assert pt.prefiltered_simulated < pt.plain_simulated, (
        f"sketch-prefiltered select must beat plain select at n={N}: "
        f"{pt.prefiltered_simulated:.4f}s vs {pt.plain_simulated:.4f}s"
    )
    assert pt.survivor_fraction < 0.10, (
        f"survivor fraction must stay below 10%, got "
        f"{pt.survivor_fraction:.2%}"
    )
    assert pt.replay_launches == 0, "no-append replay must not launch"


def test_streamed_prefiltered_matches_oracle_and_caches(benchmark):
    """End to end at 1M: values against a host-side oracle, zero-launch
    replay, precise invalidation on append."""
    machine = repro.Machine(n_procs=P)
    rng = np.random.default_rng(17)
    stream = machine.stream()
    for _ in range(8):
        stream.append(rng.random(N // 8))
    plan = repro.SelectionPlan(prefilter="sketch",
                               impl_override="introselect")
    session = machine.session(plan)
    ks = [1, N // 2, (99 * N) // 100]

    def serve():
        return session.run_multi_select(stream, ks)

    rep = benchmark.pedantic(serve, rounds=1, iterations=1)
    oracle = np.sort(stream.gather())
    assert rep.values == [oracle[k - 1] for k in ks]
    assert rep.prefilter is not None and rep.prefilter.prebuilt
    assert rep.prefilter.survivor_fraction < 0.10

    before = machine.launch_count
    again = session.run_multi_select(stream, ks)
    assert again.cached and again.values == rep.values
    assert machine.launch_count == before, "replay must cost zero launches"

    stream.append(rng.random(1000))
    fresh = session.run_multi_select(stream, [1, stream.n // 2])
    assert not fresh.cached, "append must invalidate the result cache"
    assert machine.launch_count == before + 1
