"""Execution backends: differential identity + multi-core speedup.

Claims pinned here (the backends PR's acceptance bar):

1. The same launch (same data, same seed) returns the SAME selection
   value and the SAME simulated seconds — bit-for-bit — on the
   ``serial``, ``threaded`` and ``process`` backends: the algorithms are
   machine-independent and every backend charges through the shared
   collective engine.
2. ``serial`` vs ``threaded`` agree on the whole per-rank evidence:
   final clocks AND the per-category time breakdowns of every rank.
3. On a multi-core host, the ``process`` backend beats ``threaded`` on
   wall clock for large ``n`` with the paper-faithful (GIL-churning)
   sequential kernels — true parallelism past the GIL. The assertion is
   skipped on single-core machines, where no backend can possibly win
   (the identity claims still run).

Full grid: ``python -m repro.bench backend --scale paper``.
"""

import os

import pytest

import repro
from repro.bench.harness import KILO, run_backend_point

N_IDENTITY = 128 * KILO
N_SPEEDUP = 2048 * KILO  # the acceptance bar: n >= 2M
P = 4

MULTICORE = (os.cpu_count() or 1) >= 2


@pytest.mark.parametrize("algorithm", ["fast_randomized", "randomized"])
def test_values_and_simulated_times_identical(benchmark, algorithm):
    pt = benchmark.pedantic(
        run_backend_point, args=(algorithm, N_IDENTITY, P),
        kwargs=dict(trials=1), rounds=1, iterations=1,
    )
    benchmark.extra_info["wall_times_s"] = dict(pt.wall_times)
    benchmark.extra_info["simulated_s"] = pt.simulated_times["threaded"]
    assert pt.values_agree, f"backends disagree on the answer: {pt.values}"
    assert pt.simulated_times_agree, (
        f"backends disagree on simulated time: {pt.simulated_times}"
    )


def test_serial_threaded_full_evidence_identical(benchmark):
    """Beyond the headline value: per-rank clocks and breakdowns match."""

    def run_both():
        out = {}
        for be in ("serial", "threaded"):
            machine = repro.Machine(n_procs=P, backend=be)
            data = machine.generate(N_IDENTITY, distribution="zipf", seed=7)
            out[be] = data.select(N_IDENTITY // 3, seed=3).result
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    a, b = results["serial"], results["threaded"]
    assert a.values == b.values
    assert a.clocks == b.clocks
    assert a.breakdowns == b.breakdowns


@pytest.mark.skipif(
    not MULTICORE,
    reason="single-core host: no backend can show parallel speedup",
)
def test_process_speedup_over_threaded_large_n(benchmark):
    """n >= 2M with the paper's sequential kernels (``impl_override=None``,
    heavy Python/NumPy dispatch per iteration): forked ranks escape the
    GIL, threads cannot."""
    pt = benchmark.pedantic(
        run_backend_point, args=("median_of_medians", N_SPEEDUP, P),
        kwargs=dict(
            trials=2, impl_override=None, backends=("threaded", "process")
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["threaded_wall_s"] = pt.wall_times["threaded"]
    benchmark.extra_info["process_wall_s"] = pt.wall_times["process"]
    benchmark.extra_info["speedup"] = pt.speedup()
    assert pt.values_agree
    assert pt.simulated_times_agree
    assert pt.speedup() > 1.0, (
        f"process backend must beat threaded on a multi-core host, got "
        f"{pt.speedup():.2f}x (threaded={pt.wall_times['threaded']:.3f}s, "
        f"process={pt.wall_times['process']:.3f}s)"
    )
