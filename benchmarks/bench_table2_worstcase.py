"""Table 2: worst-case running times without load balancing.

Sorted input without balancing concentrates the survivors on ever fewer
processors: the compute term picks up the paper's extra log n factor for
randomized selection (t grows super-linearly vs the balanced/random case)
while fast randomized selection — O(n/p log log n) — degrades much less.

Rendered table + checks: ``python -m repro.bench table2``.
"""


from repro.bench.harness import KILO, run_point

from conftest import bench_point


def test_table2_randomized_sorted_penalty(benchmark):
    """Paper Section 5: randomized selection runs 2-2.5x slower on sorted
    data than on random data (no balancing)."""
    # Paper: 2-2.5x at CM-5 scale; pinned at n=2M, p=32 where the
    # compute term dominates (smaller grids dilute the penalty with
    # latency terms).
    sorted_in = bench_point(benchmark, "randomized", 2048 * KILO, 32,
                            distribution="sorted", balancer="none", trials=3)
    random_in = run_point("randomized", 2048 * KILO, 32,
                          distribution="random", balancer="none", trials=3)
    ratio = sorted_in.simulated_time / random_in.simulated_time
    benchmark.extra_info["sorted_over_random"] = ratio
    assert 1.4 < ratio < 5.0


def test_table2_fast_randomized_degrades_less(benchmark):
    fast_sorted = bench_point(benchmark, "fast_randomized", 2048 * KILO, 32,
                              distribution="sorted", balancer="none",
                              trials=3)
    fast_random = run_point("fast_randomized", 2048 * KILO, 32,
                            distribution="random", balancer="none", trials=3)
    rnd_sorted = run_point("randomized", 2048 * KILO, 32,
                           distribution="sorted", balancer="none", trials=3)
    rnd_random = run_point("randomized", 2048 * KILO, 32,
                           distribution="random", balancer="none", trials=3)
    fast_penalty = fast_sorted.simulated_time / fast_random.simulated_time
    rnd_penalty = rnd_sorted.simulated_time / rnd_random.simulated_time
    benchmark.extra_info["fast_penalty"] = fast_penalty
    benchmark.extra_info["randomized_penalty"] = rnd_penalty
    assert fast_penalty < rnd_penalty


def test_table2_bucket_beats_mom_without_lb_on_sorted(benchmark):
    """Bucket-based avoids rebalancing entirely yet stays within ~1.5x of
    MoM+LB on sorted data (paper: about 25% slower at CM-5 scale)."""
    bucket = bench_point(benchmark, "bucket_based", 128 * KILO, 8,
                         distribution="sorted", balancer="none")
    mom = run_point("median_of_medians", 128 * KILO, 8,
                    distribution="sorted", balancer="global_exchange")
    ratio = bucket.simulated_time / mom.simulated_time
    benchmark.extra_info["bucket_over_mom"] = ratio
    assert ratio < 1.6
