#!/usr/bin/env python
"""Dynamic data redistribution: the paper's Section 4 algorithms head to
head on adversarial layouts.

Selection is only one consumer of these balancers — the paper notes they
apply to any computation that repeatedly discards data and tolerates
arbitrary element placement. This demo makes their trade-offs visible:

* unmodified OMLB preserves global order but cascades messages (the paper's
  one-extra-element example);
* modified OMLB and global exchange move only surpluses, with global
  exchange pairing big sources with big sinks;
* dimension exchange needs no global picture at all — log2(p) pairwise
  rounds — but only promises balance within log2(p) elements.

Run:  python examples/load_balance_demo.py
"""

import numpy as np

import repro

LAYOUTS = {
    "one hot shard": lambda p, n: [n if r == 0 else 0 for r in range(p)],
    "staircase": lambda p, n: [
        (r + 1) * (2 * n // (p * (p + 1))) for r in range(p)
    ],
    "half empty": lambda p, n: [
        2 * n // p if r < p // 2 else 0 for r in range(p)
    ],
    "one extra element": lambda p, n: [
        n // p - 1 if r == 0 else (n // p + 1 if r == p - 1 else n // p)
        for r in range(p)
    ],
}

METHODS = ["omlb", "modified_omlb", "dimension_exchange", "global_exchange"]


def make_data(machine: repro.Machine, sizes):
    rng = np.random.default_rng(0)
    shards = [rng.random(s) for s in sizes]
    return machine.from_shards(shards)


def main() -> None:
    p, n = 16, 1 << 18
    machine = repro.Machine(n_procs=p)
    print(f"machine: p={p}, n={n} elements\n")

    header = f"{'layout':>20s} {'method':>20s} {'spread':>7s} {'sim time':>12s}"
    print(header)
    print("-" * len(header))
    for layout_name, layout in LAYOUTS.items():
        sizes = layout(p, n)
        deficit = n - sum(sizes)
        sizes[-1] += deficit  # make totals exact
        data = make_data(machine, sizes)
        before = data.imbalance()
        for method in METHODS:
            out, result = repro.rebalance(data, method=method)
            after = out.imbalance()
            assert after.n == before.n, "elements lost!"
            print(f"{layout_name:>20s} {method:>20s} {after.spread:7d} "
                  f"{result.simulated_time * 1e3:9.3f} ms")
        print()

    # The paper's message-cascade example (Section 4.1): one surplus element
    # on the last rank, one deficit on the first. Order-maintaining balance
    # shifts *every* block by one element; global exchange moves exactly one
    # element end to end.
    print("cascade on the 'one extra element' layout (paper Section 4.1):")
    sizes = LAYOUTS["one extra element"](p, n)
    for method in ("omlb", "global_exchange"):
        data = make_data(machine, sizes)
        out, _ = repro.rebalance(data, method=method)
        touched = sum(
            1
            for before, after in zip(data.shards, out.shards)
            if before.size != after.size or not np.array_equal(before, after)
        )
        print(f"  {method:>18s}: ranks whose local data changed = {touched}/{p}")
    print("\n=> order-maintaining balance cascades the single surplus through"
          "\n   every processor; global exchange touches exactly two ranks.")


if __name__ == "__main__":
    main()
