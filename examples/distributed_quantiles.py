#!/usr/bin/env python
"""Distributed quantile service: the selection problem in its natural
habitat, served through the Plan/Session API.

Scenario (the paper's introduction motivates selection with statistics
workloads): a monitoring pipeline holds per-node latency samples that are
*heavily skewed across nodes* — hot shards hold far more samples than cold
ones — and an SLO dashboard needs exact p50/p90/p99/p99.9, not sketches.

A ``SelectionPlan`` names the serving configuration once (fast randomized
selection + modified OMLB balancing); a ``Session`` accepts the dashboard's
quantile queries as futures and answers ALL of them in one coalesced SPMD
launch on flush. When the dashboard refreshes, the same queries hit the
session's result cache: zero new launches. The example also shows where
load balancing earns its keep on grossly unbalanced shards.

Run:  python examples/distributed_quantiles.py
"""

import numpy as np

import repro


def make_latency_shards(machine: repro.Machine, seed: int = 3):
    """Synthetic per-node latencies: log-normal body + pareto tail, with a
    hot-shard imbalance (one node holds ~half the traffic)."""
    rng = np.random.default_rng(seed)
    p = machine.n_procs
    total = 1 << 20
    # Hot shard 0, the rest geometric-ish.
    sizes = [total // 2]
    rest = total - sizes[0]
    for r in range(1, p - 1):
        take = int(rng.integers(0, rest // 2 + 1))
        sizes.append(take)
        rest -= take
    sizes.append(rest)
    shards = []
    for r, s in enumerate(sizes):
        node = np.random.default_rng((seed, r))
        body = node.lognormal(mean=2.5, sigma=0.4, size=max(s - s // 20, 0))
        tail = 20.0 + node.pareto(2.0, size=s // 20) * 15.0  # slow requests
        shards.append(np.concatenate([body, tail]))
    return machine.from_shards(shards)


def main() -> None:
    machine = repro.Machine(n_procs=16)
    data = make_latency_shards(machine)
    stats = data.imbalance()
    print(f"latency samples: n={data.n}, p={data.p}, "
          f"hot-shard ratio={stats.ratio:.2f} (max {stats.max_count}, "
          f"mean {stats.mean:.0f})")

    oracle = np.sort(data.gather())
    quantiles = [0.50, 0.90, 0.99, 0.999]
    ks = [max(1, int(np.ceil(q * data.n))) for q in quantiles]

    # The serving configuration, named once.
    plan = repro.SelectionPlan(algorithm="fast_randomized",
                               balancer="modified_omlb", seed=11)
    session = machine.session(plan)

    print("\nexact quantiles, ONE coalesced Session flush "
          "(fast randomized + modified OMLB):")
    before = machine.launch_count
    futures = session.quantiles(data, quantiles)
    session.flush()
    assert machine.launch_count - before == 1, \
        "a flush of same-array quantile queries must be one SPMD launch"
    for q, k, fut in zip(quantiles, ks, futures):
        assert fut.value == oracle[k - 1], "quantile mismatch vs oracle"
        print(f"  p{q * 100:>5.1f} = {fut.value:8.2f} ms")
    batched = futures[0].result()
    print(f"  one launch: simulated {batched.simulated_time * 1e3:7.2f} ms, "
          f"{batched.stats.n_iterations} iterations, "
          f"balance {batched.balance_time * 1e3:5.2f} ms")

    # Dashboard refresh: the same quantiles again — served from the result
    # cache, zero new launches.
    before = machine.launch_count
    refresh = [fut.result() for fut in session.quantiles(data, quantiles)]
    assert machine.launch_count == before, "cache hits must not relaunch"
    assert all(rep.cached for rep in refresh)
    assert [rep.value for rep in refresh] == [fut.value for fut in futures]
    print(f"  dashboard refresh: {len(refresh)} queries, 0 launches "
          f"(result cache, {session.stats.cache_hits} hits so far)")

    # The pre-batching cost: one full selection per quantile.
    total_sim = 0.0
    for k in ks:
        rep = repro.select(data, k, algorithm="fast_randomized",
                           balancer="modified_omlb", seed=11)
        total_sim += rep.simulated_time
        assert rep.value == oracle[k - 1], "quantile mismatch vs oracle"
    print(f"  {len(ks)} separate select launches would cost: "
          f"{total_sim * 1e3:.2f} ms "
          f"({total_sim / batched.simulated_time:.2f}x the batched run)")
    assert batched.simulated_time < total_sim, \
        "batched quantiles should beat repeated selection"

    # Compare layouts: skewed shards vs the same work after one rebalance.
    k99 = int(np.ceil(0.99 * data.n))
    layout_plan = repro.SelectionPlan(algorithm="randomized", balancer="none",
                                      seed=4)
    skewed = data.select(k99, layout_plan)
    balanced_data, _ = data.rebalance(method="global_exchange")
    balanced = balanced_data.select(k99, layout_plan)
    print(f"\nrandomized selection, p99, skewed layout : "
          f"{skewed.simulated_time * 1e3:8.2f} ms")
    print(f"randomized selection, p99, after rebalance: "
          f"{balanced.simulated_time * 1e3:8.2f} ms")
    print("=> a skewed layout pays the slowest-shard tax every iteration; "
          "rebalancing once amortises it across queries.")


if __name__ == "__main__":
    main()
