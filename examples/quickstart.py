#!/usr/bin/env python
"""Quickstart: find the median of 1M keys on a simulated 32-processor
coarse-grained machine, with every algorithm from the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # A 32-processor machine under the calibrated CM-5-like cost model.
    machine = repro.Machine(n_procs=32)

    # 1M uniformly random keys, generated shard-by-shard on the processors
    # (the paper's "random" input).
    n = 1 << 20
    data = machine.generate(n, distribution="random", seed=7)
    print(f"machine: p={machine.n_procs}, cost model={machine.cost_model.name}")
    print(f"data   : n={data.n} over {data.p} shards, "
          f"max/avg imbalance={data.imbalance().ratio:.3f}")

    # The flagship call: median selection (rank ceil(n/2)).
    report = repro.median(data)  # fast_randomized, no balancing, by default
    oracle = float(np.median(np.sort(data.gather())[: n]))  # host-side check
    print(f"\nmedian = {report.value:.6f} "
          f"(numpy check: {np.sort(data.gather())[(n + 1) // 2 - 1]:.6f})")
    print(f"algorithm={report.algorithm}  simulated={report.simulated_time * 1e3:.2f} ms  "
          f"iterations={report.stats.n_iterations}")

    # Any rank works, with any algorithm and balancer.
    print("\nall four paper algorithms, k = n/10:")
    k = n // 10
    for algo in ["median_of_medians", "bucket_based", "randomized",
                 "fast_randomized"]:
        rep = repro.select(data, k, algorithm=algo, seed=1)
        b = rep.breakdown
        print(f"  {algo:<20s} value={rep.value:.6f} "
              f"sim={rep.simulated_time * 1e3:8.2f} ms "
              f"(compute {b.computation * 1e3:7.2f}, comm {b.communication * 1e3:6.2f}, "
              f"balance {b.balance * 1e3:6.2f})")

    # The simulated-time breakdown is the paper's currency: the deterministic
    # algorithms lose by an order of magnitude on the sequential constant.


if __name__ == "__main__":
    main()
