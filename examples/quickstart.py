#!/usr/bin/env python
"""Quickstart: the Plan/Session API on a simulated 32-processor
coarse-grained machine — fluent queries, composable plans, coalesced
serving, and result caching.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # A 32-processor machine under the calibrated CM-5-like cost model.
    machine = repro.Machine(n_procs=32)

    # 1M uniformly random keys, generated shard-by-shard on the processors
    # (the paper's "random" input).
    n = 1 << 20
    data = machine.generate(n, distribution="random", seed=7)
    print(f"machine: p={machine.n_procs}, cost model={machine.cost_model.name}")
    print(f"data   : n={data.n} over {data.p} shards, "
          f"max/avg imbalance={data.imbalance().ratio:.3f}")

    # The flagship query, fluent: median selection (rank ceil(n/2)).
    report = data.median()  # fast_randomized, no balancing, by default
    oracle = np.sort(data.gather())
    assert report.value == oracle[(n + 1) // 2 - 1], "median mismatch"
    print(f"\nmedian = {report.value:.6f} "
          f"(numpy check: {oracle[(n + 1) // 2 - 1]:.6f})")
    print(f"algorithm={report.algorithm}  simulated={report.simulated_time * 1e3:.2f} ms  "
          f"iterations={report.stats.n_iterations}")

    # Repeated traffic is a cache hit: same answer, zero new launches.
    before = machine.launch_count
    again = data.median()
    assert again.cached and again.value == report.value
    assert machine.launch_count == before
    print(f"repeat query: cached={again.cached}, "
          f"launches paid={machine.launch_count - before}")

    # A plan names a configuration once; any rank works with any plan.
    print("\nall four paper algorithms, k = n/10 (one plan each):")
    k = n // 10
    for algo in ["median_of_medians", "bucket_based", "randomized",
                 "fast_randomized"]:
        plan = repro.SelectionPlan(algorithm=algo, seed=1)
        rep = data.select(k, plan)
        assert rep.value == oracle[k - 1], "selection mismatch"
        b = rep.breakdown
        print(f"  {algo:<20s} value={rep.value:.6f} "
              f"sim={rep.simulated_time * 1e3:8.2f} ms "
              f"(compute {b.computation * 1e3:7.2f}, comm {b.communication * 1e3:6.2f}, "
              f"balance {b.balance * 1e3:6.2f})")

    # The serving layer: queue many rank queries, flush once — the session
    # coalesces every same-array query into ONE batched SPMD launch.
    ranks = [1000, n // 4, n // 2, 3 * n // 4, n - 1000]
    before = machine.launch_count
    with machine.session() as session:
        futures = [session.select(data, r) for r in ranks]
    launches = machine.launch_count - before
    assert launches == 1, "a flush of same-array queries must be one launch"
    for r, fut in zip(ranks, futures):
        assert fut.value == oracle[r - 1], "coalesced answer mismatch"
    print(f"\nsession flush: {len(ranks)} rank queries -> {launches} SPMD launch")
    print(f"  batched simulated time: "
          f"{futures[0].result().simulated_time * 1e3:.2f} ms "
          f"(vs one full contraction per rank without coalescing)")

    # The simulated-time breakdown is the paper's currency: the deterministic
    # algorithms lose by an order of magnitude on the sequential constant.


if __name__ == "__main__":
    main()
