#!/usr/bin/env python
"""Unified telemetry in one screen: spans, metrics, Perfetto export.

One traced multi-rank query runs under an active :class:`repro.obs.capture`.
The capture records the whole span tree — query → SPMD launch → contraction
iterations and per-collective rounds — on both the wall clock and the
simulated clock, the metrics registry counts launches and
predicted-vs-actual cost residuals, and the span set exports to a Chrome
trace-event file loadable at https://ui.perfetto.dev.

Capture is OFF by default and free: the same query without it produces
bit-identical values, RNG streams and simulated times.

Run:  python examples/obs_quickstart.py
"""

import json
import tempfile
from pathlib import Path

import repro
from repro import obs
from repro.obs.export import validate_chrome
from repro.obs.metrics import REGISTRY
from repro.obs.spans import format_tree


def main():
    n, p = 200_000, 4

    # Baseline: capture off (the default). Nothing is recorded.
    base_data = repro.Machine(p).generate(n, seed=11)
    baseline = base_data.multi_select([1, n // 2, n])
    base_median = base_data.select(n // 2)
    assert not obs.enabled()

    # Same queries under a capture, with per-launch tracing for round spans.
    with obs.capture() as rec:
        machine = repro.Machine(p, trace=True)
        data = machine.generate(n, seed=11)
        report = data.multi_select([1, n // 2, n])
        median = data.select(n // 2)

    assert report.values == baseline.values, "capture must not perturb"
    assert report.simulated_time == baseline.simulated_time
    assert median.value == base_median.value

    print(f"multi_select(n={n}, p={p}) -> {len(report.values)} answers, "
          f"{report.simulated_time * 1e3:.2f} ms simulated")
    print(f"select(k={n // 2}): cost model predicted "
          f"{median.predicted_time * 1e3:.2f} ms, actual "
          f"{median.simulated_time * 1e3:.2f} ms "
          f"(residual {median.cost_residual * 1e3:+.3f} ms)")

    print(f"\ncaptured {len(rec.spans)} spans:")
    tree = format_tree(rec, max_children=4)
    print("\n".join(tree.splitlines()[:16]))

    print("\nmetrics registry:")
    for metric in REGISTRY.find("repro."):
        row = metric.as_row()
        keys = ("value", "count", "mean")
        stats = ", ".join(f"{k}={row[k]:.6g}" for k in keys if k in row)
        print(f"  {row['name']}: {stats}")

    out = Path(tempfile.mkdtemp()) / "trace.json"
    n_events = obs.export(out, recorder=rec)
    doc = json.loads(out.read_text())
    assert not validate_chrome(doc), "export must be a valid Chrome trace"
    print(f"\nwrote {n_events} Chrome trace events to {out}")
    print("open https://ui.perfetto.dev and load the file to explore "
          "(sim-time and wall-time tracks, one row per rank)")


if __name__ == "__main__":
    main()
