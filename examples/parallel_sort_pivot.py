#!/usr/bin/env python
"""Selection as a building block: exact-split parallel quicksort.

A classic consumer of distributed selection (and the reason sorting papers
cite selection work): partition-based parallel sorts live and die by pivot
quality. Median-of-3-style sampling gives approximate splits; *exact median
selection* guarantees perfectly halved recursion, at the price of one
selection per level.

This example builds a small parallel sort on top of the public API:

1. find the exact median of the live keys with fast randomized selection;
2. split the machine's data around it (every rank partitions locally);
3. recurse on both halves until runs are small, then sort locally;
4. route run j to rank j (one transportation-primitive pass inside the
   machine) and verify the result is globally sorted.

Run:  python examples/parallel_sort_pivot.py
"""

import numpy as np

import repro
from repro.kernels import CostedKernels
from repro.psort import is_globally_sorted


def exact_split_sort(machine: repro.Machine, data: repro.DistributedArray):
    """Sort `data` across the machine using exact-median splits."""
    total_selection_time = 0.0
    levels = 0

    # Host-side recursion over value ranges; each level costs one exact
    # median selection on the live subrange (simulated machine time) and
    # one local partition pass per rank.
    def split(d: repro.DistributedArray, depth: int):
        nonlocal total_selection_time, levels
        if d.n <= max(4 * d.p, 1024) or depth >= 8:
            return [d]
        rep = repro.median(d, algorithm="fast_randomized", seed=depth)
        total_selection_time += rep.simulated_time
        levels = max(levels, depth + 1)
        pivot = rep.value
        lows, highs = [], []
        for shard in d.shards:
            lows.append(shard[shard <= pivot])
            highs.append(shard[shard > pivot])
        left = repro.DistributedArray(machine, lows)
        right = repro.DistributedArray(machine, highs)
        return split(left, depth + 1) + split(right, depth + 1)

    runs = split(data, 0)

    # Final pass inside the machine: runs are value-disjoint and ordered by
    # index, so routing contiguous run-index blocks to increasing ranks and
    # sorting locally yields a globally sorted distribution.
    n_runs = len(runs)

    def finalize(ctx, *shards_per_run):
        K = CostedKernels(ctx)
        sends: list = [None] * ctx.size
        for j, shard in enumerate(shards_per_run):
            dest = (j * ctx.size) // n_runs  # contiguous blocks of runs
            if sends[dest] is None:
                sends[dest] = []
            sends[dest].append((j, shard))
        received = ctx.comm.alltoallv(sends)
        mine: list = []
        for batch in received:
            if batch is not None:
                mine.extend(batch)
        if not mine:
            return np.array([])
        # Concatenate in run order, then one local sort (runs are disjoint
        # value ranges, so this is a cheap k-way merge in practice).
        mine.sort(key=lambda item: item[0])
        merged = np.concatenate([shard for _, shard in mine])
        return K.sort(merged)

    rank_args = []
    for r in range(machine.n_procs):
        rank_args.append(tuple(run.shards[r] for run in runs))
    result = machine.run(finalize, rank_args=rank_args)
    return result.values, total_selection_time, levels, result.simulated_time


def main() -> None:
    machine = repro.Machine(n_procs=8)
    n = 1 << 17
    data = machine.generate(n, distribution="gaussian", seed=5)

    runs, sel_time, levels, route_time = exact_split_sort(machine, data)

    flat = np.concatenate([r for r in runs if r.size])
    expect = np.sort(data.gather())
    ok_sorted = is_globally_sorted(runs)
    ok_multiset = np.array_equal(np.sort(flat), expect)
    print(f"exact-split parallel sort of n={n} keys on p={machine.n_procs}")
    print(f"  recursion levels          : {levels}")
    print(f"  exact-median selections   : {sel_time * 1e3:8.2f} ms simulated")
    print(f"  final local sort + route  : {route_time * 1e3:8.2f} ms simulated")
    print(f"  globally sorted           : {ok_sorted}")
    print(f"  multiset preserved        : {ok_multiset}")
    if not (ok_sorted and ok_multiset):
        raise SystemExit("sort verification failed")
    print("\n=> exact selection keeps every recursion level perfectly "
          "balanced; the paper's O(n/p) selection makes this affordable.")


if __name__ == "__main__":
    main()
