#!/usr/bin/env python
"""Async multi-tenant serving tier in one screen.

Several tenants fire selection queries at a shared
:class:`repro.serve.SelectionService` concurrently. The service batches
everything that lands inside one coalescing window into a SINGLE SPMD
launch per (array, plan) group, then routes each answer back to the
asyncio future that asked for it. A repeated query is answered from the
result cache without launching at all, and the service's own latency
sketch reports p50/p99 over every resolved query.

Run:  python examples/serve_quickstart.py
"""

import asyncio

import numpy as np

import repro
from repro.serve import SelectionService


async def tenant_workload(svc, tenant, n, rng):
    """One tenant's mixed queries: a few ranks plus an SLO quantile."""
    ranks = sorted(int(k) for k in rng.integers(1, n + 1, size=3))
    reports = await asyncio.gather(
        *(svc.select("latency", k, tenant=tenant) for k in ranks)
    )
    p99 = await svc.quantile("latency", 0.99, tenant=tenant)
    return tenant, reports, p99


async def main():
    machine = repro.Machine(n_procs=4)
    n = 1 << 16
    rng = np.random.default_rng(7)

    async with SelectionService(machine, window=0.002) as svc:
        svc.register("latency", rng.lognormal(mean=1.0, sigma=0.8, size=n))

        before = machine.launch_count
        results = await asyncio.gather(*(
            tenant_workload(svc, f"tenant{i}", n, np.random.default_rng(i))
            for i in range(4)
        ))
        launches = machine.launch_count - before

        print(f"4 tenants x 4 queries over n={n} on p={machine.n_procs}")
        for tenant, reports, p99 in sorted(results):
            picks = ", ".join(
                f"k={r.k}->{r.value:.3f}" for r in reports
            )
            print(f"  {tenant}: {picks}; p99={p99.value:.3f}")
        print(f"SPMD launches paid for all 16 queries: {launches}")

        # A dashboard refresh repeats a query: served from cache, free.
        before = machine.launch_count
        again = await svc.quantile("latency", 0.99, tenant="tenant0")
        print(f"repeat p99 query: cached={again.cached}, "
              f"extra launches={machine.launch_count - before}")

        stats = svc.stats
        print(f"service stats: resolved={stats.resolved} "
              f"launches={stats.launches} saved={stats.launches_saved} "
              f"p50={stats.p50_s * 1e3:.2f}ms p99={stats.p99_s * 1e3:.2f}ms")


if __name__ == "__main__":
    asyncio.run(main())
