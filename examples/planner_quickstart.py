#!/usr/bin/env python
"""The query planner in one screen: auto plans, explained and calibrated.

``algorithm="auto"`` prices every closed-form algorithm on the machine's
actual topology with the paper's cost model and launches the predicted
winner. Selection is a k-th order statistic, so the choice can only move
simulated time, never the answer — this script pins an auto query
bit-identical to every static plan, prints the planner's ranked
candidate table, shows residual self-calibration shrinking the
prediction error, and reprices the same query on a hypercube.

Run:  python examples/planner_quickstart.py
"""

import repro
from repro.planner import ResidualStore, choose_plan, default_store, use_store

N, P, K = 200_000, 8, 100_000


def main():
    machine = repro.Machine(P)
    data = machine.generate(N, distribution="sorted", seed=11)

    # Auto answers bit-identically to every static plan (same value AND
    # the chosen algorithm's exact simulated clock).
    auto = data.select(K, algorithm="auto", seed=3)
    statics = {alg: data.select(K, algorithm=alg, seed=3)
               for alg in ("median_of_medians", "bucket_based",
                           "randomized", "fast_randomized")}
    assert all(r.value == auto.value for r in statics.values())
    assert auto.simulated_time == statics[auto.algorithm].simulated_time
    print(f"select(k={K}) on sorted n={N}, p={P}")
    print(f"  auto chose {auto.algorithm}: "
          f"{auto.simulated_time * 1e3:.2f} ms simulated "
          f"(value identical across all 5 plans)")
    worst = max(r.simulated_time for r in statics.values())
    print(f"  worst static plan: {worst * 1e3:.2f} ms "
          f"({worst / auto.simulated_time:.1f}x slower)")

    # The decision, explained: predicted / correction / corrected per
    # candidate (the same table `python -m repro.planner explain` prints).
    decision = choose_plan(N, P, machine.cost_model, machine.topology,
                           store=ResidualStore())
    print("\nranked candidates (fresh store, corrections all 1.0):")
    print("  " + decision.table().replace("\n", "\n  "))

    # Self-calibration: the launches above already fed actual/predicted
    # ratios into the default residual store, so the same query now
    # prices with corrections and the corrected error collapses.
    calibrated = choose_plan(N, P, machine.cost_model, machine.topology,
                             store=default_store())
    chosen = calibrated.winner
    actual = statics[chosen.plan.algorithm].simulated_time
    err_before = abs(chosen.predicted - actual) / actual
    err_after = abs(chosen.corrected - actual) / actual
    assert err_after <= err_before
    print(f"\nresidual calibration on {chosen.label()}: "
          f"rel err {err_before:.1%} -> {err_after:.1%} "
          f"(correction x{chosen.correction:.3f} learned from "
          f"{len(statics) + 1} launches)")

    # Topology-aware pricing: the same query priced on a hierarchical
    # two-level machine uses the lowered round schedules — slow
    # inter-cluster links the paper's crossbar formulas cannot see.
    with use_store(ResidualStore()):
        two = choose_plan(N, P, machine.cost_model, "two-level:4")
    assert two.winner.predicted > decision.winner.predicted
    print(f"\non a two-level machine the winner is {two.winner.label()} at "
          f"{two.winner.predicted * 1e3:.2f} ms predicted "
          f"(crossbar predicted {decision.winner.predicted * 1e3:.2f} ms — "
          f"inter-cluster rounds cost extra)")


if __name__ == "__main__":
    main()
