#!/usr/bin/env python
"""Streaming ingest: append batches, serve exact windowed quantiles.

Scenario: a latency monitor receives a batch of samples every tick and
must answer exact running p50/p99 over a sliding window of the most
recent ticks — while appends and queries interleave.

The streaming subsystem makes this the cheap path:

* ``machine.stream(window=W)`` keeps the last ``W`` batches; ``append``
  deals keys round-robin (shards stay balanced forever) and advances an
  incremental fingerprint, so the Session result cache is invalidated
  *exactly* when content changes and re-queries between ticks cost zero
  launches.
* ``SelectionPlan(prefilter="sketch")`` localises each target rank with
  the ingest-time mergeable sketches before running the exact contraction
  on the few surviving keys — same answers, bit for bit, much less work.

Run:  python examples/streaming_ingest.py
"""

import numpy as np

import repro


def make_tick(rng, tick: int, size: int = 50_000) -> np.ndarray:
    """One tick of latency samples; later ticks drift slower (the p99
    should visibly rise as the window slides)."""
    body = rng.lognormal(mean=2.3 + 0.08 * tick, sigma=0.4, size=size)
    tail = 30.0 + rng.pareto(2.0, size=size // 25) * (10.0 + 4.0 * tick)
    return np.concatenate([body, tail])


def main() -> None:
    machine = repro.Machine(n_procs=8)
    window = 3
    stream = machine.stream(window=window)  # sliding: last 3 ticks
    plan = repro.SelectionPlan(algorithm="fast_randomized", seed=11,
                               prefilter="sketch")
    session = machine.session(plan)
    rng = np.random.default_rng(7)

    print(f"sliding window of {window} ticks, p={machine.n_procs}, "
          f"sketch-prefiltered exact selection:")
    for tick in range(5):
        stream.append(make_tick(rng, tick))
        n = stream.n
        p50, p99 = (max(1, int(np.ceil(q * n))) for q in (0.50, 0.99))

        multi = session.run_multi_select(stream, [p50, p99])
        oracle = np.sort(stream.gather())
        assert multi.values == [oracle[p50 - 1], oracle[p99 - 1]], \
            "windowed quantiles must match the host-side oracle exactly"
        pf = multi.prefilter
        assert pf is not None and pf.prebuilt, \
            "streaming arrays must serve prebuilt ingest-time sketches"
        print(f"  tick {tick}: n={n:>7d} batches={stream.live_batches} "
              f"p50={multi.values[0]:8.2f} p99={multi.values[1]:8.2f}  "
              f"survivors={pf.survivor_fraction * 100:5.2f}% "
              f"rounds_saved~{pf.rounds_saved} "
              f"(sketch {pf.sketch_size} keys)")

        # Dashboard refresh between ticks: same window, zero new launches.
        before = machine.launch_count
        again = session.run_multi_select(stream, [p50, p99])
        assert again.cached and again.values == multi.values
        assert machine.launch_count == before, \
            "no append => cache hit => zero launches"

    # The exactness claim, end to end: prefiltered == plain, bit for bit.
    n = stream.n
    ks = [max(1, int(np.ceil(q * n))) for q in (0.25, 0.5, 0.9, 0.99)]
    pre = session.run_multi_select(stream, ks)
    plain = session.run_multi_select(stream, ks, plan.replace(prefilter=None))
    assert pre.values == plain.values, "prefilter must not change answers"
    print(f"\nexactness: prefiltered == plain on {len(ks)} quantiles "
          f"(simulated {pre.simulated_time * 1e3:.2f} ms vs "
          f"{plain.simulated_time * 1e3:.2f} ms plain — "
          f"{plain.simulated_time / pre.simulated_time:.2f}x)")

    # Tumbling windows: the 3rd batch starts a fresh window.
    tumble = machine.stream(window=2, window_mode="tumbling")
    for tick in range(3):
        tumble.append(make_tick(rng, tick, size=10_000))
    assert tumble.live_batches == 1, "tumbling window must have reset"
    print(f"tumbling window reset after {window - 1} batches: "
          f"{tumble.live_batches} live batch, n={tumble.n}")


if __name__ == "__main__":
    main()
