"""Machine shapes: the same selection on four interconnect topologies.

The paper prices every collective on a virtual crossbar; this example runs
one identical workload — same data, same seed, same algorithm — on the
crossbar, a binomial tree, a hypercube and a two-level cluster machine,
then reprices the cluster machine with slow inter-cluster links
(``cm5_two_level``). Selection values are bit-identical everywhere (the
shape only decides which point-to-point rounds a collective lowers to and
what they cost); simulated time is exactly what moves.

Run:  python examples/topology_compare.py
"""

import numpy as np

import repro
from repro.machine import cm5_two_level

N = 1 << 17
P = 8
SEED = 7

plan = repro.SelectionPlan(algorithm="fast_randomized", seed=SEED)

print(f"= One median query, n={N}, p={P}, four machine shapes =\n")

reports = {}
for topology in ("crossbar", "binomial-tree", "hypercube", "two-level"):
    machine = repro.Machine(n_procs=P, topology=topology, trace=True)
    data = machine.generate(N, distribution="random", seed=SEED)
    reports[topology] = data.median(plan)

# The hierarchical machine: same two-level shape, but crossing a cluster
# boundary now pays 4x the start-up and 8x the per-word cost.
hier_machine = repro.Machine(
    n_procs=P, cost_model=cm5_two_level(), topology="two-level"
)
hier_data = hier_machine.generate(N, distribution="random", seed=SEED)
hier_report = hier_data.median(plan)

values = {rep.value for rep in reports.values()} | {hier_report.value}
assert len(values) == 1, f"shapes must not change the answer: {values}"

oracle = np.sort(hier_data.gather())
assert reports["crossbar"].value == oracle[(N + 1) // 2 - 1]

print(f"{'topology':>22s}  {'simulated':>12s}  broadcast rounds/congestion")
for topology, rep in reports.items():
    rounds = rep.collective_rounds()
    bcast = rounds.get("broadcast", {"rounds": 0, "max_congestion": 0})
    calls = max(bcast.get("calls", 1), 1)
    print(
        f"{topology:>22s}  {rep.simulated_time * 1e3:9.2f} ms  "
        f"{bcast['rounds'] // calls} rounds/call, "
        f"congestion {bcast['max_congestion']}"
    )
print(
    f"{'two-level (slow inter)':>22s}  "
    f"{hier_report.simulated_time * 1e3:9.2f} ms  "
    f"<- only this machine feels tau_inter/mu_inter"
)

slowdown = hier_report.simulated_time / reports["crossbar"].simulated_time
assert hier_report.simulated_time > reports["two-level"].simulated_time
print(
    f"\nvalue = {hier_report.value} on every shape; slow inter-cluster "
    f"links cost {slowdown:.2f}x the crossbar time."
)
