"""SPMD runtime: launch, argument plumbing, failure semantics, tracing."""

import threading

import numpy as np
import pytest

from repro.errors import CommunicationError, ConfigurationError, WorkerError
from repro.machine import SPMDRuntime, run_spmd
from repro.machine.trace import TraceSummary


class TestLaunch:
    def test_values_ordered_by_rank(self):
        res = run_spmd(lambda ctx: ctx.rank * 2, 5)
        assert res.values == [0, 2, 4, 6, 8]

    def test_rank_args(self):
        res = run_spmd(lambda ctx, a, b: a + b, 3,
                       rank_args=[(1, 2), (3, 4), (5, 6)])
        assert res.values == [3, 7, 11]

    def test_shared_args_and_kwargs(self):
        res = run_spmd(
            lambda ctx, shard, scale, offset=0: shard * scale + offset,
            2,
            rank_args=[(1,), (2,)],
            args=(10,),
            kwargs={"offset": 5},
        )
        assert res.values == [15, 25]

    def test_p1_fast_path_no_threads(self):
        main = threading.get_ident()
        res = run_spmd(lambda ctx: threading.get_ident(), 1)
        assert res.values[0] == main

    def test_wall_time_positive(self):
        assert run_spmd(lambda ctx: None, 2).wall_time > 0

    def test_runtime_reusable(self):
        rt = SPMDRuntime(3)
        assert rt.run(lambda ctx: ctx.rank).values == [0, 1, 2]
        assert rt.run(lambda ctx: ctx.size).values == [3, 3, 3]


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "4"])
    def test_bad_nprocs(self, bad):
        with pytest.raises(ConfigurationError):
            SPMDRuntime(bad)

    def test_too_many_ranks(self):
        with pytest.raises(ConfigurationError):
            SPMDRuntime(SPMDRuntime.MAX_RANKS + 1)

    def test_rank_args_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            run_spmd(lambda ctx: None, 3, rank_args=[(), ()])


class TestFailures:
    def test_exception_propagates_with_rank(self):
        def prog(ctx):
            if ctx.rank == 2:
                raise ValueError("boom on 2")
            ctx.comm.barrier()

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 4)
        assert ei.value.rank == 2
        assert isinstance(ei.value.cause, ValueError)
        assert "boom on 2" in str(ei.value)

    def test_failure_before_any_collective(self):
        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("early")
            ctx.comm.combine(1)
            ctx.comm.combine(2)

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 3)
        assert isinstance(ei.value.cause, RuntimeError)

    def test_failure_inside_deep_loop(self):
        def prog(ctx):
            for i in range(50):
                ctx.comm.combine(i)
                if i == 25 and ctx.rank == 1:
                    raise KeyError("mid-loop")

        with pytest.raises(WorkerError) as ei:
            run_spmd(prog, 4)
        assert isinstance(ei.value.cause, KeyError)

    def test_no_leaked_threads(self):
        before = threading.active_count()

        def prog(ctx):
            if ctx.rank == 0:
                raise ValueError("x")
            ctx.comm.barrier()

        for _ in range(3):
            with pytest.raises(WorkerError):
                run_spmd(prog, 8)
        # Daemon workers must all have unwound.
        assert threading.active_count() <= before + 1

    def test_unmatched_send_detected(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, np.arange(3), tag="orphan")

        # In-process backends raise the drain failure directly; forked
        # ranks report it from the worker, wrapped in WorkerError.
        with pytest.raises(
            (CommunicationError, WorkerError), match="undelivered"
        ):
            run_spmd(prog, 2)

    def test_send_recv_roundtrip(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send(1, np.arange(4), tag=9)
                return None
            return ctx.comm.recv(0, tag=9).tolist()

        res = run_spmd(prog, 2)
        assert res.values[1] == [0, 1, 2, 3]

    def test_recv_clock_respects_send_time(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.charge_compute(5.0)
                ctx.comm.send(1, 1.25)
                return ctx.clock.now
            ctx.comm.recv(0)
            return ctx.clock.now

        res = run_spmd(prog, 2)
        assert res.values[1] >= 5.0  # receiver waited for the sender


class TestBreakdowns:
    def test_breakdown_of_critical_rank(self):
        def prog(ctx):
            ctx.charge_compute(1.0 * (ctx.rank + 1))

        res = run_spmd(prog, 3)
        assert res.simulated_time == pytest.approx(3.0)
        assert res.breakdown.compute == pytest.approx(3.0)

    def test_balance_time_aggregates(self):
        def prog(ctx):
            with ctx.balance_section():
                ctx.charge_compute(0.5)

        res = run_spmd(prog, 2)
        assert res.balance_time == pytest.approx(0.5)
        assert res.breakdown.balance_compute == pytest.approx(0.5)


class TestTracing:
    def test_tracer_records_collectives(self):
        def prog(ctx):
            ctx.comm.combine(1)
            ctx.comm.combine(2)
            ctx.comm.broadcast(ctx.rank if ctx.rank == 0 else None, root=0)

        res = run_spmd(prog, 3, trace=True)
        assert res.tracer.count("combine", rank=0) == 2
        assert res.tracer.count("broadcast", rank=1) == 1
        summary = TraceSummary.from_tracer(res.tracer, rank=2)
        assert summary.counts == {"combine": 2, "broadcast": 1}

    def test_tracing_disabled_by_default(self):
        res = run_spmd(lambda ctx: ctx.comm.combine(1), 2)
        assert res.tracer.count("combine") == 0
