"""Public API: Machine, DistributedArray, select/median/rebalance plumbing."""

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError


class TestMachine:
    def test_distribute_block_layout(self):
        m = repro.Machine(n_procs=4)
        d = m.distribute(np.arange(10))
        assert d.counts == [3, 3, 2, 2]
        assert np.array_equal(d.gather(), np.arange(10))

    def test_distribute_rejects_2d(self):
        m = repro.Machine(n_procs=2)
        with pytest.raises(ConfigurationError):
            m.distribute(np.zeros((2, 2)))

    def test_distribute_copies(self):
        m = repro.Machine(n_procs=2)
        src = np.arange(6)
        d = m.distribute(src)
        src[:] = -1
        assert np.array_equal(d.gather(), np.arange(6))

    def test_from_shards_validates_count(self):
        m = repro.Machine(n_procs=3)
        with pytest.raises(ConfigurationError):
            m.from_shards([np.arange(2)])

    def test_generate_delegates(self):
        m = repro.Machine(n_procs=3)
        d = m.generate(100, distribution="sorted")
        assert np.array_equal(np.sort(d.gather()), np.arange(100))

    def test_properties(self):
        m = repro.Machine(n_procs=5)
        assert m.n_procs == 5
        assert m.cost_model.name == "CM5"

    def test_custom_cost_model(self):
        cm = repro.CM5.replace(tau=1.0)
        m = repro.Machine(n_procs=2, cost_model=cm)
        assert m.cost_model.tau == 1.0

    def test_run_escape_hatch(self):
        m = repro.Machine(n_procs=3)
        res = m.run(lambda ctx: ctx.rank + 10)
        assert res.values == [10, 11, 12]


class TestDistributedArray:
    def test_len_and_n(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(123)
        assert len(d) == 123 and d.n == 123 and d.p == 2

    def test_imbalance_stats(self):
        m = repro.Machine(n_procs=4)
        d = m.from_shards([np.arange(10), np.arange(0), np.arange(2), np.arange(0)])
        s = d.imbalance()
        assert s.max_count == 10 and s.min_count == 0 and s.n == 12

    def test_gather_empty(self):
        m = repro.Machine(n_procs=2)
        d = m.from_shards([np.array([]), np.array([])])
        assert d.gather().size == 0


class TestSelectAPI:
    def test_unknown_algorithm(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(10)
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            repro.select(d, 1, algorithm="quantum")

    def test_unknown_balancer(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(10)
        with pytest.raises(ConfigurationError, match="unknown balancer"):
            repro.select(d, 1, balancer="wat")

    def test_median_is_rank_ceil_half(self):
        m = repro.Machine(n_procs=2)
        d = m.distribute(np.array([5.0, 1.0, 9.0, 3.0]))  # n=4 -> rank 2
        rep = repro.median(d)
        assert rep.value == 3.0
        assert rep.k == 2

    def test_sequential_method_override(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(2000, seed=0)
        a = repro.median(d, algorithm="median_of_medians",
                         sequential_method="deterministic")
        b = repro.median(d, algorithm="median_of_medians",
                         sequential_method="randomized")
        assert a.value == b.value
        assert a.simulated_time > b.simulated_time  # det constant dominates

    def test_fast_params_plumbing(self):
        from repro.selection import FastRandomizedParams

        m = repro.Machine(n_procs=2)
        d = m.generate(100_000, seed=0)
        rep = repro.median(
            d, algorithm="fast_randomized",
            fast_params=FastRandomizedParams(delta=0.8),
        )
        assert rep.value == np.sort(d.gather())[(100_000 + 1) // 2 - 1]

    def test_breakdown_components_sum(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(30_000, distribution="sorted", seed=2)
        rep = repro.median(d, algorithm="fast_randomized",
                           balancer="modified_omlb")
        b = rep.breakdown
        assert b.total == pytest.approx(
            b.compute + b.comm + b.balance_compute + b.balance_comm
        )
        assert b.balance > 0

    def test_reports_balancer_name(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(5000)
        rep = repro.median(d, balancer="dimension_exchange")
        assert rep.balancer == "DimensionExchange"


class TestRebalanceAPI:
    def test_methods(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(400, distribution="skewed_shards", seed=2)
        for method in ["omlb", "modified_omlb", "global_exchange"]:
            out, _ = repro.rebalance(d, method=method)
            assert out.imbalance().spread <= 1
            assert np.array_equal(np.sort(out.gather()), np.sort(d.gather()))

    def test_returns_result_with_times(self):
        m = repro.Machine(n_procs=2)
        d = m.generate(100, distribution="skewed_shards")
        _, result = repro.rebalance(d)
        assert result.simulated_time > 0


class TestVersioning:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2
