"""Golden tests for the ``repro.lint`` static analyzer.

Three layers:

* framework behavior — noqa suppressions, module pragmas, config
  selection, syntax-error findings, CLI exit codes and JSON output;
* golden fixtures — every rule family flags its seeded dirty fixture at
  exact (code, line) positions and stays silent on the clean near-miss;
* self-lint — the shipped ``src/repro`` + ``examples`` trees are pinned
  clean, so a regression that introduces a real finding (or a rule that
  starts over-firing on sanctioned idioms) fails CI here first.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    all_rules,
    lint_source,
    run_lint,
)
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO = Path(__file__).resolve().parent.parent

# RPR4xx only applies under costed paths; point it at the fixture dir.
FIXTURE_CONFIG = LintConfig(costed_paths=("lint_fixtures/",))


def lint_fixture(name, config=FIXTURE_CONFIG):
    path = FIXTURES / name
    return lint_source(path.read_text(), path, config)


def codes_and_lines(findings):
    return [(f.code, f.line) for f in findings]


# ---------------------------------------------------------------------------
# Golden fixtures: exact codes and lines.
# ---------------------------------------------------------------------------


EXPECTED_DIRTY = {
    "rpr1_dirty.py": [
        ("RPR101", 13),
        ("RPR102", 20),
        ("RPR103", 27),
    ],
    "rpr2_dirty.py": [
        ("RPR201", 10),
        ("RPR202", 11),
        ("RPR202", 12),
        ("RPR202", 13),
        ("RPR202", 14),
        ("RPR203", 15),
        ("RPR204", 18),
    ],
    "rpr3_dirty.py": [
        ("RPR301", 7),
        ("RPR302", 17),
        ("RPR302", 27),
    ],
    "rpr4_dirty.py": [
        ("RPR401", 12),
        ("RPR401", 13),
    ],
}

CLEAN_FIXTURES = [
    "rpr1_clean.py",
    "rpr2_clean.py",
    "rpr3_clean.py",
    "rpr4_clean.py",
]


@pytest.mark.parametrize("name", sorted(EXPECTED_DIRTY))
def test_dirty_fixture_flags_exact_positions(name):
    assert codes_and_lines(lint_fixture(name)) == EXPECTED_DIRTY[name]


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_fixture_stays_silent(name):
    assert lint_fixture(name) == []


def test_every_rule_family_covered_by_fixtures():
    flagged = {
        code[:4]
        for expected in EXPECTED_DIRTY.values()
        for code, _ in expected
    }
    families = {rule.code[:4] for rule in all_rules()}
    assert families <= flagged


# ---------------------------------------------------------------------------
# Framework behavior.
# ---------------------------------------------------------------------------


def _lint_snippet(source, path="tests/lint_fixtures/snippet.py", config=None):
    return lint_source(
        textwrap.dedent(source), Path(path), config or FIXTURE_CONFIG
    )


def test_noqa_single_code_suppresses():
    findings = _lint_snippet(
        """
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()  # repro: noqa[RPR101]
        """
    )
    assert findings == []


def test_noqa_other_code_does_not_suppress():
    findings = _lint_snippet(
        """
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()  # repro: noqa[RPR102]
        """
    )
    assert [f.code for f in findings] == ["RPR101"]


def test_blanket_noqa_suppresses_everything_on_line():
    findings = _lint_snippet(
        """
        import time

        def program(ctx):
            if ctx.rank == 0:
                return time.time(), ctx.comm.barrier()  # repro: noqa
        """
    )
    assert findings == []


def test_noqa_code_list():
    findings = _lint_snippet(
        """
        import time

        def program(ctx):
            if ctx.rank == 0:
                return time.time(), ctx.comm.barrier()  # repro: noqa[RPR101, RPR201]
        """
    )
    assert findings == []


def test_costed_by_caller_pragma_disables_rpr4():
    source = """
    # repro: costed-by-caller
    import numpy as np

    def helper(ctx, arr):
        return np.sort(arr)
    """
    assert _lint_snippet(source) == []
    # Without the pragma the same module is flagged.
    stripped = source.replace("# repro: costed-by-caller", "")
    assert [f.code for f in _lint_snippet(stripped)] == ["RPR401"]


def test_rpr4_ignores_uncosted_paths():
    findings = _lint_snippet(
        """
        import numpy as np

        def helper(ctx, arr):
            return np.sort(arr)
        """,
        path="src/repro/report.py",
        config=LintConfig(),
    )
    assert findings == []


def test_select_and_ignore_prefixes():
    source = """
    import time

    def program(ctx):
        if ctx.rank == 0:
            return time.time(), ctx.comm.barrier()
    """
    both = _lint_snippet(source)
    assert sorted(f.code for f in both) == ["RPR101", "RPR201"]
    only_one = _lint_snippet(
        source, config=LintConfig(select=("RPR2",))
    )
    assert [f.code for f in only_one] == ["RPR201"]
    without = _lint_snippet(
        source, config=LintConfig(ignore=("RPR2",))
    )
    assert [f.code for f in without] == ["RPR101"]


def test_syntax_error_becomes_rpr000():
    findings = _lint_snippet("def broken(:\n")
    assert [f.code for f in findings] == ["RPR000"]


def test_finding_render_format():
    (finding,) = _lint_snippet(
        """
        def program(ctx):
            if ctx.rank == 0:
                ctx.comm.barrier()
        """
    )
    rendered = finding.render()
    assert rendered.startswith("tests/lint_fixtures/snippet.py:4:")
    assert "RPR101" in rendered
    assert "[hint:" in rendered


def test_rule_registry_is_complete_and_unique():
    rules = all_rules()
    codes = [r.code for r in rules]
    assert codes == sorted(codes)
    assert len(codes) == len(set(codes))
    assert {
        "RPR101",
        "RPR102",
        "RPR103",
        "RPR201",
        "RPR202",
        "RPR203",
        "RPR204",
        "RPR301",
        "RPR302",
        "RPR401",
    } <= set(codes)


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------


def test_cli_exit_one_on_findings_and_text_output(capsys):
    rc = lint_main(
        [str(FIXTURES / "rpr1_dirty.py")]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR101" in out
    assert "found 3 findings" in out


def test_cli_exit_zero_on_clean_tree(capsys):
    rc = lint_main([str(FIXTURES / "rpr1_clean.py")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no findings" in out


def test_cli_json_format(capsys):
    rc = lint_main(
        ["--format", "json", str(FIXTURES / "rpr1_dirty.py")]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert [f["code"] for f in payload] == ["RPR101", "RPR102", "RPR103"]
    assert all({"path", "line", "col", "message", "hint"} <= set(f) for f in payload)


def test_cli_select_filters(capsys):
    rc = lint_main(
        ["--select", "RPR102", str(FIXTURES / "rpr1_dirty.py")]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "RPR102" in out and "RPR101" not in out


def test_cli_costed_path_override(capsys):
    rc = lint_main(
        ["--costed-path", "lint_fixtures", str(FIXTURES / "rpr4_dirty.py")]
    )
    assert rc == 1
    assert "RPR401" in capsys.readouterr().out
    # Default costed paths exclude the fixture dir, so it comes back clean.
    assert lint_main([str(FIXTURES / "rpr4_dirty.py")]) == 0
    capsys.readouterr()


def test_cli_list_rules(capsys):
    rc = lint_main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for rule in all_rules():
        assert rule.code in out


# ---------------------------------------------------------------------------
# Self-lint: the shipped tree must stay clean.
# ---------------------------------------------------------------------------


def test_shipped_tree_is_lint_clean():
    findings = run_lint(
        [REPO / "src" / "repro", REPO / "examples"], LintConfig()
    )
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)
