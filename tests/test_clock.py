"""Unit tests for logical clocks and the time breakdown."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.clock import Category, LogicalClock, TimeBreakdown


class TestCharge:
    def test_accumulates(self):
        c = LogicalClock()
        assert c.charge(Category.COMPUTE, 1.0) == 1.0
        assert c.charge(Category.COMM, 0.5) == 1.5
        assert c.now == 1.5

    def test_breakdown_matches_now(self):
        c = LogicalClock()
        c.charge(Category.COMPUTE, 1.0)
        c.charge(Category.COMM, 2.0)
        c.charge(Category.BALANCE_COMM, 0.25)
        b = c.breakdown()
        assert b.total == pytest.approx(c.now)
        assert b.compute == 1.0 and b.comm == 2.0 and b.balance_comm == 0.25

    @pytest.mark.parametrize("bad", [-1.0, math.nan, math.inf])
    def test_rejects_bad_durations(self, bad):
        with pytest.raises(ConfigurationError):
            LogicalClock().charge(Category.COMPUTE, bad)

    def test_zero_charge_is_noop_in_time(self):
        c = LogicalClock()
        c.charge(Category.COMM, 0.0)
        assert c.now == 0.0


class TestSyncTo:
    def test_jumps_forward(self):
        c = LogicalClock()
        c.sync_to(3.0, Category.COMM)
        assert c.now == 3.0
        assert c.breakdown().comm == 3.0

    def test_never_goes_backward(self):
        c = LogicalClock()
        c.charge(Category.COMPUTE, 5.0)
        c.sync_to(3.0, Category.COMM)
        assert c.now == 5.0
        assert c.breakdown().comm == 0.0


class TestBalanceSections:
    def test_reroutes_categories(self):
        c = LogicalClock()
        c.open_balance_section()
        c.charge(Category.COMPUTE, 1.0)
        c.charge(Category.COMM, 2.0)
        c.close_balance_section()
        c.charge(Category.COMPUTE, 4.0)
        b = c.breakdown()
        assert b.balance_compute == 1.0
        assert b.balance_comm == 2.0
        assert b.compute == 4.0
        assert b.balance == 3.0

    def test_nesting(self):
        c = LogicalClock()
        c.open_balance_section()
        c.open_balance_section()
        c.close_balance_section()
        c.charge(Category.COMM, 1.0)  # still inside the outer section
        c.close_balance_section()
        assert c.breakdown().balance_comm == 1.0

    def test_unbalanced_close_raises(self):
        with pytest.raises(ConfigurationError):
            LogicalClock().close_balance_section()


class TestCategory:
    def test_flags(self):
        assert Category.BALANCE_COMM.is_balance and Category.BALANCE_COMM.is_comm
        assert Category.COMM.is_comm and not Category.COMM.is_balance
        assert Category.COMPUTE.is_balance is False


class TestTimeBreakdown:
    def test_aggregates(self):
        b = TimeBreakdown(compute=1, comm=2, balance_compute=3, balance_comm=4)
        assert b.total == 10
        assert b.balance == 7
        assert b.communication == 6
        assert b.computation == 4

    def test_merged_max(self):
        a = TimeBreakdown(compute=1, comm=5)
        b = TimeBreakdown(compute=3, comm=2, balance_comm=1)
        m = a.merged_max(b)
        assert (m.compute, m.comm, m.balance_comm) == (3, 5, 1)

    def test_as_dict_keys(self):
        d = TimeBreakdown().as_dict()
        assert set(d) == {
            "compute", "comm", "balance_compute", "balance_comm", "balance",
            "total",
        }


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(Category)),
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
        ),
        max_size=50,
    )
)
def test_property_breakdown_sums_to_now(charges):
    """sum(breakdown) == now under any charge sequence."""
    c = LogicalClock()
    for cat, dur in charges:
        c.charge(cat, dur)
    assert c.breakdown().total == pytest.approx(c.now, rel=1e-9, abs=1e-12)
