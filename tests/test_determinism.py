"""Reproducibility: equal seeds give bit-identical values AND simulated
times; the paper's shared-RNG trick is implemented literally."""

import numpy as np
import pytest

import repro
from repro.selection import ALGORITHMS


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
class TestSeededRuns:
    def test_identical_runs(self, algo):
        m = repro.Machine(n_procs=4)
        d = m.generate(8000, seed=1)
        a = repro.median(d, algorithm=algo, seed=99)
        b = repro.median(d, algorithm=algo, seed=99)
        assert a.value == b.value
        assert a.simulated_time == b.simulated_time
        assert a.stats.n_iterations == b.stats.n_iterations
        assert [it.pivot for it in a.stats.iterations] == [
            it.pivot for it in b.stats.iterations
        ]

    def test_value_independent_of_seed(self, algo):
        # The k-th smallest is unique: seeds may change the path, never the
        # answer.
        m = repro.Machine(n_procs=4)
        d = m.generate(8000, seed=1)
        vals = {repro.median(d, algorithm=algo, seed=s).value for s in range(4)}
        assert len(vals) == 1


class TestSeedSensitivity:
    def test_randomized_paths_differ_across_seeds(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(50_000, seed=1)
        a = repro.median(d, algorithm="randomized", seed=0)
        b = repro.median(d, algorithm="randomized", seed=1)
        pivots_a = [it.pivot for it in a.stats.iterations]
        pivots_b = [it.pivot for it in b.stats.iterations]
        assert pivots_a != pivots_b  # different random pivot sequences

    def test_deterministic_algorithms_ignore_seed_for_pivots(self):
        m = repro.Machine(n_procs=4)
        d = m.generate(20_000, seed=1)
        a = repro.median(d, algorithm="bucket_based", seed=0)
        b = repro.median(d, algorithm="bucket_based", seed=123)
        assert [it.pivot for it in a.stats.iterations] == [
            it.pivot for it in b.stats.iterations
        ]
        assert a.simulated_time == b.simulated_time


class TestCrossMachineStability:
    def test_same_data_different_p_same_answer(self):
        data = np.random.default_rng(0).random(10_000)
        answers = set()
        for p in [1, 2, 4, 8]:
            m = repro.Machine(n_procs=p)
            d = m.distribute(data)
            answers.add(float(repro.median(d).value))
        assert len(answers) == 1
