"""The observability layer's contract, both halves.

Half one — capture is FREE when off and invisible when on: the identical
workload run with no capture, under an active capture, and with per-launch
tracing forced produces bit-identical values, RNG/pivot streams and
simulated-time evidence on every execution backend, and the disabled path
records nothing at all.

Half two — capture is USEFUL when on: the span forest has the documented
shape (query → SPMD launch → contraction iterations + per-collective
rounds), the metrics registry counts launches and predicted-vs-actual cost
residuals, the exporters emit valid JSON Lines and Chrome trace-event
documents, and ``REPRO_TRACE=<path>`` captures a whole subprocess run
hands-free (the CI smoke leg).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.plan import SelectionPlan
from repro.errors import ConfigurationError
from repro.obs.export import (
    chrome_document,
    read_jsonl,
    summarize,
    validate_chrome,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, REGISTRY
from repro.obs.spans import (
    NULL_RECORDER,
    NULL_SPAN,
    SpanRecorder,
    format_tree,
)

P = 4
N = 4000


def _workload(backend=None, trace=False, n=N, seed=3):
    machine = repro.Machine(n_procs=P, backend=backend, trace=trace)
    data = machine.generate(n, distribution="skewed_shards", seed=seed)
    single = data.select(n // 3, algorithm="fast_randomized", seed=seed)
    multi = data.multi_select(
        [1, n // 2, n], algorithm="randomized", seed=seed
    )
    return single, multi


def _evidence(report):
    return (
        getattr(report, "value", None) or tuple(report.values),
        report.simulated_time,
        report.breakdown,
        tuple(it.pivot for it in report.stats.iterations),
        tuple((it.t_sim0, it.t_sim1) for it in report.stats.iterations),
    )


# ---------------------------------------------------------------------------
# Half one: capture must not perturb the experiment
# ---------------------------------------------------------------------------


class TestObsOffBitIdentity:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.get_recorder() is NULL_RECORDER
        _workload()
        assert len(NULL_RECORDER.spans) == 0

    @pytest.mark.parametrize("backend", ["serial", "threaded", "process",
                                         "pool"])
    def test_capture_bit_identical_per_backend(self, backend):
        base_single, base_multi = _workload(backend=backend)
        with obs.capture() as rec:
            cap_single, cap_multi = _workload(backend=backend, trace=True)
        assert _evidence(base_single) == _evidence(cap_single)
        assert _evidence(base_multi) == _evidence(cap_multi)
        assert len(rec.spans) > 0

    def test_capture_off_equals_serial_reference(self):
        """Cross-check: obs-on threaded == obs-off serial (the existing
        cross-backend bar composed with the capture bar)."""
        serial_single, serial_multi = _workload(backend="serial")
        with obs.capture():
            cap_single, cap_multi = _workload(backend="threaded", trace=True)
        assert _evidence(serial_single) == _evidence(cap_single)
        assert _evidence(serial_multi) == _evidence(cap_multi)

    def test_launch_count_unchanged_by_capture(self):
        machine = repro.Machine(n_procs=P)
        data = machine.generate(N, seed=1)
        data.select(7)
        off_count = machine.launch_count
        machine2 = repro.Machine(n_procs=P)
        data2 = machine2.generate(N, seed=1)
        with obs.capture():
            data2.select(7)
        assert machine2.launch_count == off_count

    def test_capture_restores_prior_state(self):
        before = obs.get_recorder()
        with obs.capture() as rec:
            assert obs.get_recorder() is rec
            assert obs.enabled()
        assert obs.get_recorder() is before
        assert not obs.enabled()


class TestNullPath:
    def test_null_span_absorbs_everything(self):
        assert not NULL_SPAN
        assert NULL_SPAN.set(anything=1) is NULL_SPAN
        assert NULL_SPAN.end() is NULL_SPAN
        with NULL_SPAN as s:
            assert s is NULL_SPAN
        assert NULL_SPAN.duration == 0.0

    def test_null_recorder_noops(self):
        assert NULL_RECORDER.span("x") is NULL_SPAN
        assert NULL_RECORDER.add("x") is NULL_SPAN
        assert NULL_RECORDER.advance_sim(5.0) == 0.0
        NULL_RECORDER.defer_trace([], None)
        assert NULL_RECORDER.tree() == []
        assert len(NULL_RECORDER) == 0


# ---------------------------------------------------------------------------
# Half two: the span forest has the documented shape
# ---------------------------------------------------------------------------


def _by_name(spans, name):
    return [s for s in spans if s.name == name]


class TestSpanTree:
    @pytest.fixture()
    def captured(self):
        with obs.capture() as rec:
            machine = repro.Machine(n_procs=P, trace=True)
            data = machine.generate(N, seed=5)
            report = data.select(N // 2, algorithm="fast_randomized")
        return rec, report

    def test_hierarchy_query_launch_iteration_rounds(self, captured):
        rec, report = captured
        spans = rec.spans
        ids = {s.span_id: s for s in spans}
        queries = _by_name(spans, "query")
        launches = _by_name(spans, "spmd.launch")
        iterations = _by_name(spans, "iteration")
        collectives = [s for s in spans
                       if s.name.startswith("collective.")]
        rounds = _by_name(spans, "round")
        assert len(queries) == 1 and len(launches) == 1
        assert launches[0].parent_id == queries[0].span_id
        assert len(iterations) == report.stats.n_iterations
        for s in iterations + collectives:
            assert s.parent_id == launches[0].span_id
        assert collectives and rounds
        for r in rounds:
            assert ids[r.parent_id].name.startswith("collective.")

    def test_launch_span_attrs_and_sim_interval(self, captured):
        rec, report = captured
        launch = _by_name(rec.spans, "spmd.launch")[0]
        assert launch.attrs["algorithm"] == "fast_randomized"
        assert launch.attrs["n"] == N
        assert launch.attrs["p"] == P
        assert launch.attrs["backend"] == report.backend
        assert launch.attrs["topology"] == report.topology
        assert launch.attrs["iterations"] == report.stats.n_iterations
        assert launch.sim_duration == pytest.approx(report.simulated_time)
        assert launch.duration > 0.0

    def test_children_inside_launch_sim_interval(self, captured):
        rec, _ = captured
        launch = _by_name(rec.spans, "spmd.launch")[0]
        eps = 1e-12
        for s in rec.spans:
            if s.parent_id == launch.span_id and s.sim_t0 is not None:
                assert s.sim_t0 >= launch.sim_t0 - eps
                assert s.sim_t1 <= launch.sim_t1 + eps

    def test_iteration_spans_carry_engine_checkpoints(self, captured):
        rec, report = captured
        launch = _by_name(rec.spans, "spmd.launch")[0]
        iterations = sorted(_by_name(rec.spans, "iteration"),
                            key=lambda s: s.attrs["index"])
        for span, it in zip(iterations, report.stats.iterations):
            assert span.sim_t1 - span.sim_t0 == pytest.approx(
                it.sim_duration
            )
            assert span.sim_t0 == pytest.approx(launch.sim_t0 + it.t_sim0)
            assert span.attrs["n_before"] == it.n_before
            assert span.attrs["n_after"] == it.n_after

    def test_cumulative_sim_axis_across_launches(self):
        with obs.capture() as rec:
            machine = repro.Machine(n_procs=P, trace=True)
            data = machine.generate(N, seed=5)
            data.select(10)
            machine.default_session.clear_cache()
            data.select(20)
        launches = sorted(_by_name(rec.spans, "spmd.launch"),
                          key=lambda s: s.sim_t0)
        assert len(launches) == 2
        assert launches[0].sim_t0 == 0.0
        assert launches[1].sim_t0 == pytest.approx(launches[0].sim_t1)

    def test_identical_runs_record_identical_forests(self):
        def capture_once():
            with obs.capture() as rec:
                machine = repro.Machine(n_procs=P, trace=True)
                machine.generate(N, seed=9).select(N // 4)
            return [(s.name, s.rank, s.sim_t0, s.sim_t1, s.attrs.get("index"))
                    for s in rec.spans]

        assert capture_once() == capture_once()

    def test_session_flush_span_groups_queries(self):
        with obs.capture() as rec:
            machine = repro.Machine(n_procs=P)
            data = machine.generate(N, seed=2)
            with machine.session() as sess:
                sess.select(data, 5)
                sess.select(data, N // 2)
        flushes = _by_name(rec.spans, "session.flush")
        groups = _by_name(rec.spans, "session.group")
        assert len(flushes) == 1
        assert flushes[0].attrs["queries"] == 2
        assert groups and groups[0].parent_id == flushes[0].span_id
        queries = _by_name(rec.spans, "query")
        assert all(q.parent_id == groups[0].span_id for q in queries)

    def test_tree_and_format_render(self, captured):
        rec, _ = captured
        forest = rec.tree()
        assert forest and forest[0][0].name in ("query", "spmd.launch")
        text = format_tree(rec)
        assert "spmd.launch" in text and "collective." in text


class TestRecorder:
    def test_max_spans_drops_excess(self):
        rec = SpanRecorder(max_spans=3)
        for i in range(5):
            rec.add(f"s{i}")
        assert len(rec.spans) == 3
        assert rec.dropped == 2

    def test_clear_resets_everything(self):
        rec = SpanRecorder()
        rec.add("a")
        rec.advance_sim(2.0)
        rec.clear()
        assert len(rec) == 0
        assert rec.advance_sim(0.0) == 0.0

    def test_thread_local_nesting(self):
        rec = SpanRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = {s.name: s for s in rec.spans}
        assert spans["outer"].parent_id is None
        assert spans["inner"].t1 >= spans["inner"].t0

    def test_error_exit_flags_span(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span("bad"):
                raise ValueError("boom")
        assert rec.spans[0].attrs.get("error") is True


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("c", kind="x")
        c.inc()
        c.inc(2)
        assert c.value == 3
        assert reg.counter("c", kind="x") is c
        g = reg.gauge("g")
        g.set_value(7.5)
        assert g.value == 7.5
        h = reg.histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.quantile(0.5) in (2.0, 3.0)
        rows = reg.collect()
        assert [r["name"] for r in rows] == ["c{kind=x}", "g", "h"]

    def test_labels_distinguish_metrics(self):
        reg = MetricsRegistry()
        a = reg.counter("m", backend="serial")
        b = reg.counter("m", backend="pool")
        a.inc()
        assert b.value == 0
        assert len(reg.find("m")) == 2

    def test_launch_counter_increments_even_when_obs_off(self):
        machine = repro.Machine(n_procs=P, backend="serial")
        name = "repro.spmd.launches"
        before = sum(
            m.value for m in REGISTRY.find(name)
            if m.labels.get("backend") == "serial"
        )
        machine.generate(N, seed=0).select(3)
        after = sum(
            m.value for m in REGISTRY.find(name)
            if m.labels.get("backend") == "serial"
        )
        assert after == before + 1


# ---------------------------------------------------------------------------
# Predicted-vs-actual cost tracking
# ---------------------------------------------------------------------------


class TestCostResiduals:
    @pytest.mark.parametrize("algorithm", [
        "randomized", "fast_randomized", "median_of_medians", "bucket_based",
    ])
    def test_closed_form_algorithms_predict(self, algorithm):
        machine = repro.Machine(n_procs=P)
        balancer = "global_exchange" if algorithm == "median_of_medians" \
            else "none"
        report = machine.generate(N, seed=1).select(
            N // 2, algorithm=algorithm, balancer=balancer
        )
        assert report.predicted_time is not None
        assert report.predicted_time > 0.0
        assert report.cost_residual == pytest.approx(
            report.simulated_time - report.predicted_time
        )

    def test_no_closed_form_means_no_prediction(self):
        machine = repro.Machine(n_procs=P)
        data = machine.generate(N, seed=1)
        assert data.select(5, algorithm="hybrid_bucket_based") \
            .predicted_time is None
        assert data.select(5, algorithm="sort_based").predicted_time is None

    def test_non_crossbar_topology_predicts_via_schedules(self):
        # The planner PR generalised predict_simulated beyond the
        # crossbar: any topology's lowered Schedule prices the closed
        # forms, so routed shapes now predict and carry residuals too.
        machine = repro.Machine(n_procs=P, topology="hypercube")
        report = machine.generate(N, seed=1).select(5)
        assert report.predicted_time is not None
        assert report.predicted_time > 0
        assert report.cost_residual == (
            report.simulated_time - report.predicted_time
        )

    def test_multi_rank_batches_do_not_predict(self):
        machine = repro.Machine(n_procs=P)
        data = machine.generate(N, seed=1)
        assert data.multi_select([1, N // 2, N]).predicted_time is None
        # ...but a single-rank batch rides the closed form.
        assert data.multi_select([N // 3]).predicted_time is not None

    def test_cached_report_carries_prediction(self):
        machine = repro.Machine(n_procs=P)
        data = machine.generate(N, seed=1)
        with machine.session() as sess:
            first = sess.run_select(data, N // 2)
            again = sess.run_select(data, N // 2)
        assert again.cached
        assert again.predicted_time == first.predicted_time

    def test_residual_histogram_recorded(self):
        before = sum(m.count for m in
                     REGISTRY.find("repro.launch.cost_residual"))
        repro.Machine(n_procs=P).generate(N, seed=1).select(9)
        after = sum(m.count for m in
                    REGISTRY.find("repro.launch.cost_residual"))
        assert after == before + 1


# ---------------------------------------------------------------------------
# Plan / machine plumbing
# ---------------------------------------------------------------------------


class TestTracePlumbing:
    def test_plan_trace_validation(self):
        SelectionPlan(trace=True)
        SelectionPlan(trace=None)
        with pytest.raises(ConfigurationError):
            SelectionPlan(trace="yes")

    def test_plan_trace_not_in_cache_key(self):
        assert SelectionPlan(trace=True).cache_key() == \
            SelectionPlan(trace=None).cache_key()

    def test_plan_trace_forces_tracer(self):
        machine = repro.Machine(n_procs=P)  # machine-level tracing off
        report = machine.generate(N, seed=1).select(5, trace=True)
        assert report.collective_rounds()

    def test_machine_counters_snapshot(self):
        machine = repro.Machine(n_procs=P)
        assert machine.counters() == {
            "launches": 0, "forks": 0, "reuses": 0, "pinned_bytes": 0,
        }
        machine.generate(N, seed=1).select(5)
        counters = machine.counters()
        assert counters["launches"] == machine.launch_count == 1
        assert counters["forks"] == machine.fork_count
        assert counters["reuses"] == machine.reuse_count

    def test_machine_trace_path_enables_capture(self, tmp_path):
        target = tmp_path / "t.json"
        machine = repro.Machine(n_procs=P, trace=str(target))
        try:
            assert obs.enabled()
            machine.generate(N, seed=1).select(5)
            written = obs.export(target)
            assert written > 0
            assert not validate_chrome(str(target))
        finally:
            obs.disable()

    def test_service_stats_expose_machine_counters(self):
        import asyncio
        from repro.serve import SelectionService

        async def scenario():
            machine = repro.Machine(n_procs=2)
            async with SelectionService(machine, window=0.0) as svc:
                svc.register("d", np.arange(100, dtype=float))
                await svc.select("d", 10)
                return svc.stats, machine

        stats, machine = asyncio.run(scenario())
        assert stats.machine_counters == machine.counters()
        assert stats.machine_counters["launches"] >= 1


# ---------------------------------------------------------------------------
# Exporters + CLI + the REPRO_TRACE smoke leg
# ---------------------------------------------------------------------------


def _capture_small():
    with obs.capture() as rec:
        repro.Machine(n_procs=2, trace=True).generate(
            800, seed=4
        ).select(400)
    return rec


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        rec = _capture_small()
        path = tmp_path / "spans.jsonl"
        n = write_jsonl(rec.spans, path)
        rows = read_jsonl(path)
        assert n == len(rows) == len(rec.spans)
        assert {r["name"] for r in rows} >= {"query", "spmd.launch"}

    def test_chrome_document_layout(self):
        rec = _capture_small()
        doc = chrome_document(rec.spans)
        events = doc["traceEvents"]
        assert validate_chrome(doc) == []
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}  # sim + wall tracks
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["name"] for m in meta} >= {"process_name", "thread_name"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(e["dur"] >= 0 for e in complete)
        # Driver-side spans ride tid 0; rank r rides tid r+1 (p=2 here).
        assert {e["tid"] for e in complete} >= {0, 1, 2}

    def test_validate_catches_corruption(self):
        assert validate_chrome({"traceEvents": "nope"})
        assert validate_chrome({"traceEvents": [{"ph": "X"}]})
        assert validate_chrome(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 1, "tid": 1,
                              "ts": -5.0, "dur": 1.0}]}
        )

    def test_summarize_aggregates_by_name(self):
        rec = _capture_small()
        rows = summarize([s.as_dict() for s in rec.spans])
        names = [r["name"] for r in rows]
        assert "spmd.launch" in names and "query" in names
        launch = next(r for r in rows if r["name"] == "spmd.launch")
        assert launch["count"] == 1
        assert launch["sim_s"] > 0.0


class TestCli:
    def test_summary_convert_validate(self, tmp_path, capsys):
        from repro.obs.cli import main

        rec = _capture_small()
        jsonl = tmp_path / "t.jsonl"
        write_jsonl(rec.spans, jsonl)

        assert main(["summary", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "spmd.launch" in out

        chrome = tmp_path / "t.json"
        assert main(["convert", str(jsonl), str(chrome)]) == 0
        capsys.readouterr()
        assert main(["validate", str(chrome)]) == 0

    def test_validate_rejects_bad_file(self, tmp_path, capsys):
        from repro.obs.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert main(["validate", str(bad)]) == 1


class TestReproTraceSmoke:
    """The CI obs smoke leg: a subprocess run under ``REPRO_TRACE`` must
    leave behind a schema-valid Chrome trace with the expected span names —
    no code changes, just the environment variable."""

    def test_subprocess_capture_exports_valid_trace(self, tmp_path):
        target = tmp_path / "run.json"
        env = dict(os.environ, REPRO_TRACE=str(target))
        env["PYTHONPATH"] = str(
            Path(__file__).parent.parent / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import repro\n"
            "m = repro.Machine(4)\n"
            "d = m.generate(5000, seed=6)\n"
            "d.multi_select([1, 2500, 5000])\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert target.exists(), "REPRO_TRACE did not export at exit"
        doc = json.loads(target.read_text())
        assert validate_chrome(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"query", "spmd.launch"} <= names

    def test_cli_validates_subprocess_trace(self, tmp_path):
        target = tmp_path / "run.jsonl"
        env = dict(os.environ, REPRO_TRACE=str(target))
        env["PYTHONPATH"] = str(
            Path(__file__).parent.parent / "src"
        ) + os.pathsep + env.get("PYTHONPATH", "")
        code = "import repro; repro.Machine(2).generate(900, seed=1).select(9)"
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        check = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summary", str(target)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert check.returncode == 0, check.stderr
        assert "spmd.launch" in check.stdout
