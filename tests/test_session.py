"""Session serving layer: futures, query coalescing, result caching,
launch accounting, and legacy-shim equivalence."""

import numpy as np
import pytest

import repro
from repro.core.reports import _RunReport
from repro.errors import ConfigurationError
from repro.machine.clock import TimeBreakdown

N = 20_000
P = 4


@pytest.fixture()
def machine():
    return repro.Machine(n_procs=P)


@pytest.fixture()
def data(machine):
    return machine.generate(N, distribution="random", seed=7)


@pytest.fixture()
def oracle(data):
    return np.sort(data.gather())


class TestCoalescing:
    def test_flush_of_many_queries_is_one_launch(self, machine, data, oracle):
        """The acceptance bar: q >= 3 same-array rank queries, ONE SPMD
        launch, correct values, less simulated time than q selects."""
        ks = [100, N // 4, N // 2, 3 * N // 4, N - 100]
        session = machine.session()
        before = machine.launch_count
        futures = [session.select(data, k) for k in ks]
        assert machine.launch_count == before, "queueing must not launch"
        assert session.pending_count == len(ks)
        session.flush()
        assert machine.launch_count == before + 1
        assert session.stats.launches == 1
        for k, fut in zip(ks, futures):
            assert fut.done
            assert fut.value == oracle[k - 1]
        # Cheaper than the q independent one-shot launches it replaces.
        independent = sum(
            repro.select(data, k).simulated_time for k in ks
        )
        assert futures[0].result().simulated_time < independent

    def test_future_result_triggers_flush(self, machine, data, oracle):
        session = machine.session()
        f1 = session.select(data, 10)
        f2 = session.select(data, 20)
        assert not f1.done and not f2.done
        before = machine.launch_count
        assert f1.result().value == oracle[9]
        assert machine.launch_count == before + 1
        assert f2.done, "one flush resolves every pending future"
        assert f2.value == oracle[19]

    def test_context_manager_flushes(self, machine, data, oracle):
        before = machine.launch_count
        with machine.session() as session:
            futures = [session.select(data, k) for k in (5, 15, 25)]
        assert machine.launch_count == before + 1
        assert [f.value for f in futures] == [oracle[4], oracle[14], oracle[24]]
        assert session.pending_count == 0

    def test_median_and_quantiles_coalesce_with_selects(
        self, machine, data, oracle
    ):
        session = machine.session()
        before = machine.launch_count
        fm = session.median(data)
        fqs = session.quantiles(data, [0.25, 0.75])
        fs = session.select(data, 123)
        session.flush()
        assert machine.launch_count == before + 1
        assert fm.value == oracle[(N + 1) // 2 - 1]
        assert [f.value for f in fqs] == [oracle[N // 4 - 1],
                                          oracle[3 * N // 4 - 1]]
        assert fs.value == oracle[122]

    def test_multi_select_future(self, machine, data, oracle):
        session = machine.session()
        ks = [50, 10, 50, 30]  # duplicates + arbitrary order
        before = machine.launch_count
        fut = session.multi_select(data, ks)
        rep = fut.result()
        assert machine.launch_count == before + 1
        assert rep.values == [oracle[49], oracle[9], oracle[49], oracle[29]]
        assert rep.ks == ks
        assert fut.values == rep.values

    def test_different_arrays_need_separate_launches(self, machine, oracle):
        a = machine.generate(N, distribution="random", seed=7)
        b = machine.generate(N, distribution="random", seed=8)
        session = machine.session()
        before = machine.launch_count
        fa = session.select(a, 10)
        fb = session.select(b, 10)
        session.flush()
        assert machine.launch_count == before + 2
        assert fa.value == np.sort(a.gather())[9]
        assert fb.value == np.sort(b.gather())[9]

    def test_equal_content_arrays_share_a_launch(self, machine):
        a = machine.generate(N, distribution="random", seed=7)
        b = machine.generate(N, distribution="random", seed=7)
        session = machine.session()
        before = machine.launch_count
        fa = session.select(a, 10)
        fb = session.select(b, 20)
        session.flush()
        assert machine.launch_count == before + 1, (
            "identical fingerprints must coalesce"
        )
        ref = np.sort(a.gather())
        assert fa.value == ref[9]
        assert fb.value == ref[19]

    def test_different_plans_need_separate_launches(self, machine, data):
        session = machine.session()
        before = machine.launch_count
        f1 = session.select(data, 10)
        f2 = session.select(data, 20, algorithm="randomized")
        session.flush()
        assert machine.launch_count == before + 2
        assert f1.done and f2.done

    def test_empty_multi_select(self, machine, data):
        session = machine.session()
        before = machine.launch_count
        rep = session.multi_select(data, []).result()
        assert machine.launch_count == before
        assert rep.values == [] and len(rep) == 0

    def test_flush_idempotent(self, machine, data):
        session = machine.session()
        session.select(data, 10)
        assert len(session.flush()) == 1
        before = machine.launch_count
        assert session.flush() == []
        assert machine.launch_count == before

    def test_rank_validation_at_enqueue(self, machine, data):
        session = machine.session()
        with pytest.raises(ConfigurationError, match="out of range"):
            session.select(data, 0)
        with pytest.raises(ConfigurationError, match="out of range"):
            session.select(data, N + 1)
        with pytest.raises(ConfigurationError, match="out of range"):
            session.multi_select(data, [1, N + 1])
        with pytest.raises(ConfigurationError, match="outside"):
            session.quantiles(data, [1.5])
        assert session.pending_count == 0

    def test_foreign_machine_rejected(self, machine, data):
        other = repro.Machine(n_procs=P)
        with pytest.raises(ConfigurationError, match="different Machine"):
            other.default_session.select(data, 1)

    def test_failing_group_does_not_strand_other_groups(self, machine, data):
        # A launch failure in one (array, plan) group must not discard the
        # other groups' futures, and the failed future must re-raise the
        # launch error (not a misleading internal RuntimeError).
        session = machine.session()
        ok = session.select(data, 10)
        doomed = session.select(data, 20)
        # max_iterations=0 fires the convergence guard inside the doomed
        # group's launch (a different plan => a different flush group).
        doomed2 = session.multi_select(
            data, [100, 200], algorithm="randomized", max_iterations=0
        )
        with pytest.raises(repro.WorkerError):
            session.flush()
        assert ok.done and ok.value is not None, (
            "healthy group must still be served"
        )
        assert doomed.done and doomed.value is not None
        with pytest.raises(repro.WorkerError):
            doomed2.result()  # re-raises the recorded launch error

    def test_exit_with_exception_leaves_queue_resumable(self, machine, data,
                                                        oracle):
        session = machine.session()
        with pytest.raises(RuntimeError, match="boom"):
            with session:
                fut = session.select(data, 10)
                raise RuntimeError("boom")
        assert session.pending_count == 1, "pending work survives the error"
        assert fut.result().value == oracle[9]


class TestResultCache:
    def test_requery_is_cache_hit_zero_launches(self, machine, data, oracle):
        session = machine.session()
        ks = [100, 200, 300]
        [f.result() for f in [session.select(data, k) for k in ks]]
        launches = machine.launch_count
        hits_before = session.stats.cache_hits
        replay = [session.select(data, k).result() for k in ks]
        assert machine.launch_count == launches, "cache hits must not launch"
        assert session.stats.cache_hits == hits_before + len(ks)
        assert all(rep.cached for rep in replay)
        assert [rep.value for rep in replay] == [oracle[k - 1] for k in ks]

    def test_partial_overlap_launches_only_missing(self, machine, data, oracle):
        session = machine.session()
        session.select(data, 100).result()
        before = machine.launch_count
        f_old = session.select(data, 100)
        f_new = session.select(data, 500)
        session.flush()
        assert machine.launch_count == before + 1
        assert f_old.result().cached and not f_new.result().cached
        assert f_new.value == oracle[499]

    def test_cached_metrics_are_the_originating_launch(self, machine, data):
        session = machine.session()
        first = session.select(data, 100).result()
        again = session.select(data, 100).result()
        assert again.simulated_time == first.simulated_time
        assert again.value == first.value
        assert again.cached and not first.cached

    def test_fully_cached_multi_keeps_originating_metrics(
        self, machine, data
    ):
        # A fully-cached multi future resolved in a flush that also
        # launched for OTHER ranks must report its originating launch's
        # metrics, not the unrelated launch's.
        session = machine.session()
        origin = session.multi_select(data, [100, 200]).result()
        cached_multi = session.multi_select(data, [100, 200])
        fresh = session.select(data, 9000)  # forces a launch in this flush
        session.flush()
        rep = cached_multi.result()
        assert rep.cached
        assert rep.simulated_time == origin.simulated_time
        assert not fresh.result().cached

    def test_run_select_cache(self, machine, data, oracle):
        session = machine.session()
        first = session.run_select(data, 42)
        before = machine.launch_count
        again = session.run_select(data, 42)
        assert machine.launch_count == before
        assert again.cached and again.value == first.value == oracle[41]
        assert again.simulated_time == first.simulated_time

    def test_fluent_methods_share_default_session_cache(
        self, machine, data, oracle
    ):
        r1 = data.median()
        before = machine.launch_count
        r2 = data.median()
        assert machine.launch_count == before
        assert r2.cached and r2.value == r1.value == oracle[(N + 1) // 2 - 1]

    def test_fluent_quantiles_cached_on_refresh(self, machine, data, oracle):
        qs = [0.5, 0.9, 0.99]
        first = data.quantiles(qs)
        before = machine.launch_count
        refresh = data.quantiles(qs)
        assert machine.launch_count == before
        assert all(rep.cached for rep in refresh)
        assert [r.value for r in refresh] == [r.value for r in first]

    def test_different_seed_is_not_a_hit(self, machine, data):
        session = machine.session()
        session.select(data, 100, seed=1).result()
        before = machine.launch_count
        session.select(data, 100, seed=2).result()
        assert machine.launch_count == before + 1

    def test_mutation_plus_invalidate_misses(self, machine):
        d = machine.from_shards(
            [np.arange(r * 10, r * 10 + 10, dtype=np.float64)
             for r in range(P)]
        )
        session = machine.session()
        assert session.run_select(d, 1).value == 0.0
        d.shards[0][0] = -5.0
        d.invalidate()
        before = machine.launch_count
        rep = session.run_select(d, 1)
        assert machine.launch_count == before + 1, "new fingerprint, new launch"
        assert rep.value == -5.0

    def test_lru_eviction(self, machine, data):
        session = machine.session(max_cache_entries=2)
        session.run_select(data, 1)
        session.run_select(data, 2)
        session.run_select(data, 3)
        assert session.cache_size == 2
        before = machine.launch_count
        session.run_select(data, 1)  # evicted -> relaunch
        assert machine.launch_count == before + 1

    def test_clear_cache(self, machine, data):
        session = machine.session()
        session.run_select(data, 5)
        assert session.cache_size == 1
        session.clear_cache()
        assert session.cache_size == 0

    def test_uncached_session_always_launches(self, machine, data):
        session = machine.session(cache=False)
        before = machine.launch_count
        a = session.run_select(data, 10)
        b = session.run_select(data, 10)
        assert machine.launch_count == before + 2
        assert not a.cached and not b.cached
        assert a.value == b.value and a.simulated_time == b.simulated_time


class TestLegacyShims:
    """The legacy surface is an uncached one-shot session: one launch per
    call, deterministic per seed, equivalent across entry points."""

    def test_select_is_one_launch_per_call(self, machine, data):
        before = machine.launch_count
        a = repro.select(data, 100, seed=3)
        b = repro.select(data, 100, seed=3)
        assert machine.launch_count == before + 2
        assert not a.cached and not b.cached
        assert a.value == b.value
        assert a.simulated_time == b.simulated_time

    def test_select_matches_session_single_path(self, machine, data):
        shim = repro.select(data, 123, algorithm="randomized", seed=5)
        via_session = machine.session(cache=False).run_select(
            data, 123, repro.SelectionPlan(algorithm="randomized", seed=5)
        )
        assert shim.value == via_session.value
        assert shim.simulated_time == via_session.simulated_time
        assert shim.breakdown.total == via_session.breakdown.total

    def test_multi_select_matches_coalesced_values(self, machine, data, oracle):
        ks = [10, 1000, 19000]
        shim = repro.multi_select(data, ks, seed=2)
        with machine.session(repro.SelectionPlan(seed=2)) as s:
            futures = [s.select(data, k) for k in ks]
        assert shim.values == [f.value for f in futures]
        assert shim.values == [oracle[k - 1] for k in ks]

    def test_quantiles_same_batched_metrics(self, data):
        reports = repro.quantiles(data, [0.1, 0.5, 0.9])
        assert len({rep.simulated_time for rep in reports}) == 1
        assert all(not rep.cached for rep in reports)

    def test_quantiles_empty_returns_before_validating_plan(
        self, machine, data
    ):
        # Historical order: the empty set short-circuits before the plan
        # kwargs are validated.
        before = machine.launch_count
        assert repro.quantiles(data, [], algorithm="bogus") == []
        assert machine.launch_count == before
        with pytest.raises(ConfigurationError, match="outside"):
            repro.quantiles(data, [2.0], algorithm="bogus")

    def test_rebalance_shim_matches_fluent(self, machine):
        d = machine.generate(400, distribution="skewed_shards", seed=2)
        out_shim, res_shim = repro.rebalance(d, method="global_exchange")
        out_fluent, res_fluent = d.rebalance(method="global_exchange")
        assert out_shim.counts == out_fluent.counts
        assert res_shim.simulated_time == res_fluent.simulated_time


class TestReports:
    def test_base_report_balance_time_without_result(self):
        # Satellite fix: the hoisted result field means the base class
        # cannot raise AttributeError anymore.
        rep = _RunReport(
            n=10, p=2, algorithm="randomized", balancer="NoBalance",
            simulated_time=1.0, wall_time=0.1,
            breakdown=TimeBreakdown(),
        )
        assert rep.result is None
        assert rep.balance_time == 0.0

    def test_gather_preserves_dtype_when_empty(self, machine):
        for dtype in (np.int32, np.float32, np.int64):
            d = machine.from_shards(
                [np.array([], dtype=dtype) for _ in range(P)]
            )
            out = d.gather()
            assert out.size == 0 and out.dtype == dtype

    def test_gather_nonempty_unchanged(self, machine):
        d = machine.distribute(np.arange(10, dtype=np.int16))
        assert d.gather().dtype == np.int16
        assert np.array_equal(d.gather(), np.arange(10))

    def test_fingerprint_stable_and_content_based(self, machine):
        a = machine.generate(1000, seed=3)
        b = machine.generate(1000, seed=3)
        c = machine.generate(1000, seed=4)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint
        assert a.fingerprint == a.fingerprint  # memoised

    def test_session_stats_accounting(self, machine, data):
        session = machine.session()
        with session:
            for k in (1, 2, 3):
                session.select(data, k)
        session.select(data, 1).result()  # cache hit
        s = session.stats
        assert s.queries == 4
        assert s.launches == 1
        assert s.flushes == 2
        assert s.cache_hits == 1
        assert s.cache_misses == 3
