"""RPR3xx true positives: unpicklable payloads at the launch seams."""

import threading


def lambda_payload(machine):
    return machine.run(lambda ctx: ctx.rank, rank_args=None)


def lock_capture(machine, shards):
    lock = threading.Lock()

    def program(ctx, shard):
        with lock:
            return shard.sum()

    return machine.run(program, rank_args=[(s,) for s in shards])


def file_capture(machine, shards, path):
    with open(path) as handle:

        def program(ctx, shard):
            handle.write(str(shard.sum()))
            return shard.sum()

        return machine.run(program, rank_args=[(s,) for s in shards])
