"""RPR2xx true positives: nondeterminism sources inside an SPMD program."""

import random
import time

import numpy as np


def nondeterministic_program(ctx, shard):
    t0 = time.perf_counter()  # RPR201: wall clock
    noise = random.random()  # RPR202: stdlib global RNG
    np.random.seed(ctx.rank)  # RPR202: numpy module state
    draw = np.random.rand()  # RPR202: numpy module state
    rng = np.random.default_rng()  # RPR202: entropy-seeded generator
    cache = {id(shard): draw}  # RPR203: id-keyed logic
    ranks = set(range(ctx.size))
    order = [r for r in ranks]
    for r in {0, 1}:  # RPR204: set iteration order
        order.append(r)
    return ctx.comm.combine(t0 + noise + rng.random() + len(cache) + len(order))
