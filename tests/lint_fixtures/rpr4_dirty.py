"""RPR4xx true positive: an uncharged NumPy pass in charge-capable code.

Analyzed with ``costed_paths=("lint_fixtures",)`` so the family applies
here (the shipped default scopes it to kernels/selection/psort/balance/
stream paths).
"""

import numpy as np


def silent_median(ctx, shard):
    ordered = np.sort(shard)  # RPR401: O(n log n) pass, clock untouched
    merged = np.concatenate([ordered, ordered])  # RPR401: O(n) copy
    return ctx.comm.broadcast(merged[merged.size // 2], root=0)
