"""RPR1xx near-misses: rank-dependent *values*, never rank-dependent
*reachability* — the analyzer must stay silent on every pattern here."""


def rank_dependent_value(ctx, value):
    # The classic root-broadcast idiom: the argument depends on the rank,
    # the call itself is reached by every rank.
    return ctx.comm.broadcast(value if ctx.rank == 0 else None, root=0)


def local_work_in_branch(ctx, shard):
    # Rank-dependent branch containing only local compute; the collective
    # afterwards is reached by all ranks.
    if ctx.rank == 0:
        shard = shard * 2
    return ctx.comm.combine(int(shard.sum()))


def size_trip_count(ctx):
    # ctx.size is identical on every rank — a fine trip count.
    total = 0
    for _ in range(ctx.size):
        total += ctx.comm.combine(1)
    return total


def branch_on_combined(ctx, n):
    # A combine result is globally agreed: branching on it keeps lockstep.
    remaining = ctx.comm.combine(n)
    while remaining > 1:
        remaining = ctx.comm.combine(remaining // 2)
    return remaining
