"""RPR3xx near-misses: picklable closures and lambdas away from the
launch seams."""


def plain_closure(machine, shards, threshold):
    # Closing over plain data (ints, arrays) is fine: the pool backend's
    # inherited fork carries it, and it pickles on the process backend.
    scale = threshold * 2

    def program(ctx, shard):
        return (shard > scale).sum()

    return machine.run(program, rank_args=[(s,) for s in shards])


def lambda_outside_seam(reports):
    # Lambdas are only flagged inside launch-call arguments.
    return sorted(reports, key=lambda r: r.simulated_time)
