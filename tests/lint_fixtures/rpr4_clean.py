"""RPR4xx near-misses: charged passes, costed wrappers, and pure kernels
whose callers own the charging."""

import numpy as np


def charged_median(ctx, model, shard):
    # Explicit charge next to the pass: the honest pattern.
    n = max(int(shard.size), 1)
    ctx.charge_compute(model.compute.sort_per_cmp * n * np.log2(max(n, 2)))
    ordered = np.sort(shard)
    return ctx.comm.broadcast(ordered[ordered.size // 2], root=0)


def costed_wrapper_median(ctx, K, shard):
    # Every CostedKernels method charges internally.
    ordered = K.sort(shard)
    return ctx.comm.broadcast(ordered[ordered.size // 2], root=0)


def pure_kernel(arr, pivot):
    # No ctx/K seam in scope: implementation kernels are charged by their
    # CostedKernels callers, not here.
    return np.concatenate([arr[arr < pivot], arr[arr >= pivot]])
