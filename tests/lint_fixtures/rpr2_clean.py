"""RPR2xx near-misses: the sanctioned determinism idioms, plus host-side
code where wall clocks are legitimate."""

import time

import numpy as np


def seeded_program(ctx, shard, seed):
    # Per-rank generator derived from the plan seed: the sanctioned path.
    rng = np.random.default_rng((seed, ctx.rank))
    ranks = set(range(ctx.size))
    ordered = sorted(ranks)  # sorted() normalizes set order
    total = float(shard.sum()) + rng.random() + ordered[0]
    return ctx.comm.combine(total)


def host_side_timer(launches):
    # No ctx parameter, no collectives: backend/bench code may read the
    # wall clock freely.
    t0 = time.perf_counter()
    for launch in launches:
        launch()
    return time.perf_counter() - t0
