"""RPR1xx true positives: collectives under rank-dependent control flow.

Seeded findings (asserted exactly by tests/test_lint.py):

* line 13 — RPR101: combine only on rank 0.
* line 20 — RPR102: combine inside a rank-trip-count loop.
* line 27 — RPR103: rank-dependent early return before a barrier.
"""


def branch_deadlock(ctx):
    if ctx.rank == 0:
        return ctx.comm.combine(1)
    return None


def loop_deadlock(ctx):
    total = 0
    for _ in range(ctx.rank):
        total += ctx.comm.combine(1)
    return total


def early_return_deadlock(ctx):
    me = ctx.rank
    if me > 0:
        return None
    ctx.comm.barrier()
    return me
