"""Every example script must run clean end to end (they self-verify)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\nstdout:\n{proc.stdout}\n"
        f"stderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "distributed_quantiles", "parallel_sort_pivot",
            "load_balance_demo", "streaming_ingest",
            "topology_compare", "obs_quickstart",
            "planner_quickstart"} <= names
