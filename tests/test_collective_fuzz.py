"""Property fuzzing of the collective layer: random programs of mixed
primitives must match a serial reference model and keep clocks
synchronised — and, since collectives are lowered onto topology round
schedules, every machine shape must return crossbar-identical values,
charge payload-monotone simulated times, and run the analytic number of
rounds."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import available_topologies, run_spmd, zero_cost_model
from repro.machine.topology import log2_ceil

OPS = ["combine", "prefix", "allgather", "broadcast", "alltoall", "exchange"]

TOPOLOGY_SPECS = sorted(available_topologies()) + ["two-level:2"]


def serial_reference(program, p):
    """What the distributed run must produce, computed serially."""
    outputs = [[] for _ in range(p)]
    for step, (op, arg) in enumerate(program):
        values = [(rank + 1) * (step + 1 + arg) for rank in range(p)]
        if op == "combine":
            expect = sum(values)
            for r in range(p):
                outputs[r].append(expect)
        elif op == "prefix":
            acc = 0
            for r in range(p):
                acc += values[r]
                outputs[r].append(acc)
        elif op == "allgather":
            for r in range(p):
                outputs[r].append(tuple(values))
        elif op == "broadcast":
            root = arg % p
            for r in range(p):
                outputs[r].append(values[root])
        elif op == "alltoall":
            # rank r sends r*p + d to destination d.
            for r in range(p):
                outputs[r].append(tuple(s * p + r for s in range(p)))
        elif op == "exchange":
            for r in range(p):
                partner = r ^ 1
                outputs[r].append(values[partner] if partner < p else None)
    return outputs


def distributed_program(program):
    def prog(ctx):
        out = []
        for step, (op, arg) in enumerate(program):
            mine = (ctx.rank + 1) * (step + 1 + arg)
            if op == "combine":
                out.append(ctx.comm.combine(mine, operator.add))
            elif op == "prefix":
                out.append(ctx.comm.prefix_sum(mine))
            elif op == "allgather":
                out.append(tuple(ctx.comm.global_concat(mine)))
            elif op == "broadcast":
                root = arg % ctx.size
                out.append(ctx.comm.broadcast(
                    mine if ctx.rank == root else None, root=root))
            elif op == "alltoall":
                sends = [np.array([ctx.rank * ctx.size + d])
                         for d in range(ctx.size)]
                recv = ctx.comm.alltoallv(sends)
                out.append(tuple(int(r[0]) for r in recv))
            elif op == "exchange":
                partner = ctx.rank ^ 1
                partner = partner if partner < ctx.size else None
                out.append(ctx.comm.pairwise_exchange(partner, mine))
        return out

    return prog


@settings(max_examples=20)
@given(
    p=st.integers(1, 6),
    program=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(0, 7)),
        min_size=1, max_size=12,
    ),
)
def test_property_random_collective_programs(p, program):
    res = run_spmd(distributed_program(program), p,
                   cost_model=zero_cost_model())
    assert res.values == serial_reference(program, p)


@settings(max_examples=10)
@given(
    p=st.integers(2, 6),
    program=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(0, 7)),
        min_size=1, max_size=8,
    ),
)
def test_property_clocks_agree_after_synchronising_ops(p, program):
    """After any program ending in a combine, all clocks are equal (every
    collective synchronises to the max)."""
    program = program + [("combine", 0)]
    res = run_spmd(distributed_program(program), p)
    assert len(set(res.clocks)) == 1


# ---------------------------------------------------------------------------
# Topology properties: shapes reprice rounds, they never change answers
# ---------------------------------------------------------------------------


@settings(max_examples=15)
@given(
    p=st.integers(1, 6),
    program=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(0, 7)),
        min_size=1, max_size=10,
    ),
)
def test_property_every_topology_matches_crossbar_values(p, program):
    """Random mixed-primitive programs return bit-identical values on
    every machine shape — topologies only lower costs, the rendezvous
    semantics are shared."""
    fn = distributed_program(program)
    baseline = run_spmd(fn, p, topology="crossbar",
                        cost_model=zero_cost_model()).values
    for spec in TOPOLOGY_SPECS:
        res = run_spmd(fn, p, topology=spec, cost_model=zero_cost_model())
        assert res.values == baseline, spec


def _payload_program(op, words):
    """One collective moving a ``words``-sized array payload."""

    def prog(ctx):
        payload = np.zeros(max(1, words))
        if op == "broadcast":
            ctx.comm.broadcast(payload if ctx.rank == 0 else None, root=0)
        elif op == "combine":
            ctx.comm.combine(payload, lambda a, b: a)
        elif op == "prefix":
            ctx.comm.prefix_sum(payload, lambda a, b: a)
        elif op == "gather":
            ctx.comm.gather(payload, root=0)
        elif op == "allgather":
            ctx.comm.global_concat(payload)
        elif op == "alltoall":
            ctx.comm.alltoallv([
                payload if d != ctx.rank else None for d in range(ctx.size)
            ])
        else:  # exchange
            partner = ctx.rank ^ 1
            partner = partner if partner < ctx.size else None
            ctx.comm.pairwise_exchange(
                partner, payload if partner is not None else None
            )
        return ctx.clock.now

    return prog


PAYLOAD_OPS = ["broadcast", "combine", "prefix", "gather", "allgather",
               "alltoall", "exchange"]


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(2, 6),
    op=st.sampled_from(PAYLOAD_OPS),
    spec=st.sampled_from(TOPOLOGY_SPECS),
    words=st.integers(1, 500),
    extra=st.integers(1, 500),
)
def test_property_simulated_time_monotone_in_payload(p, op, spec, words,
                                                     extra):
    """For every collective on every shape, moving more words never gets
    cheaper: each transfer's price is affine in its words, round maxima
    and sums preserve the ordering."""
    small = run_spmd(_payload_program(op, words), p,
                     topology=spec).simulated_time
    large = run_spmd(_payload_program(op, words + extra), p,
                     topology=spec).simulated_time
    assert large >= small


@settings(max_examples=15, deadline=None)
@given(p=st.integers(2, 16), op=st.sampled_from(
    ["broadcast", "combine", "prefix", "gather", "allgather"]
))
def test_property_round_counts_match_analytic_depth(p, op):
    """Log-depth collectives run exactly ``ceil(log2 p)`` rounds on the
    crossbar and the (folded) hypercube, and the binomial tree's up-down
    sweeps run ``2*ceil(log2 p)`` where the scan both folds and fans."""
    res = {
        spec: run_spmd(_payload_program(op, 3), p, topology=spec, trace=True)
        for spec in ("crossbar", "hypercube", "binomial-tree")
    }
    L = log2_ceil(p)
    expected_flat = {op if op != "alltoall" else "alltoallv": L}
    for spec in ("crossbar", "hypercube"):
        rounds = res[spec].collective_rounds()
        for name, want in expected_flat.items():
            assert rounds[name]["rounds"] == want, (spec, name)
    tree_rounds = res["binomial-tree"].collective_rounds()
    tree_expected = {
        "broadcast": L,            # rooted at 0: pure fan-out
        "combine": 2 * L,          # fold up + fan down
        "prefix": 2 * L,
        "gather": L,               # rooted at 0: pure fold
        "allgather": 2 * L,        # fold up + fan the concatenation down
    }
    assert tree_rounds[op]["rounds"] == tree_expected[op]
