"""Property fuzzing of the collective layer: random programs of mixed
primitives must match a serial reference model and keep clocks synchronised."""

import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import run_spmd, zero_cost_model

OPS = ["combine", "prefix", "allgather", "broadcast", "alltoall", "exchange"]


def serial_reference(program, p):
    """What the distributed run must produce, computed serially."""
    outputs = [[] for _ in range(p)]
    for step, (op, arg) in enumerate(program):
        values = [(rank + 1) * (step + 1 + arg) for rank in range(p)]
        if op == "combine":
            expect = sum(values)
            for r in range(p):
                outputs[r].append(expect)
        elif op == "prefix":
            acc = 0
            for r in range(p):
                acc += values[r]
                outputs[r].append(acc)
        elif op == "allgather":
            for r in range(p):
                outputs[r].append(tuple(values))
        elif op == "broadcast":
            root = arg % p
            for r in range(p):
                outputs[r].append(values[root])
        elif op == "alltoall":
            # rank r sends r*p + d to destination d.
            for r in range(p):
                outputs[r].append(tuple(s * p + r for s in range(p)))
        elif op == "exchange":
            for r in range(p):
                partner = r ^ 1
                outputs[r].append(values[partner] if partner < p else None)
    return outputs


def distributed_program(program):
    def prog(ctx):
        out = []
        for step, (op, arg) in enumerate(program):
            mine = (ctx.rank + 1) * (step + 1 + arg)
            if op == "combine":
                out.append(ctx.comm.combine(mine, operator.add))
            elif op == "prefix":
                out.append(ctx.comm.prefix_sum(mine))
            elif op == "allgather":
                out.append(tuple(ctx.comm.global_concat(mine)))
            elif op == "broadcast":
                root = arg % ctx.size
                out.append(ctx.comm.broadcast(
                    mine if ctx.rank == root else None, root=root))
            elif op == "alltoall":
                sends = [np.array([ctx.rank * ctx.size + d])
                         for d in range(ctx.size)]
                recv = ctx.comm.alltoallv(sends)
                out.append(tuple(int(r[0]) for r in recv))
            elif op == "exchange":
                partner = ctx.rank ^ 1
                partner = partner if partner < ctx.size else None
                out.append(ctx.comm.pairwise_exchange(partner, mine))
        return out

    return prog


@settings(max_examples=20)
@given(
    p=st.integers(1, 6),
    program=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(0, 7)),
        min_size=1, max_size=12,
    ),
)
def test_property_random_collective_programs(p, program):
    res = run_spmd(distributed_program(program), p,
                   cost_model=zero_cost_model())
    assert res.values == serial_reference(program, p)


@settings(max_examples=10)
@given(
    p=st.integers(2, 6),
    program=st.lists(
        st.tuples(st.sampled_from(OPS), st.integers(0, 7)),
        min_size=1, max_size=8,
    ),
)
def test_property_clocks_agree_after_synchronising_ops(p, program):
    """After any program ending in a combine, all clocks are equal (every
    collective synchronises to the max)."""
    program = program + [("combine", 0)]
    res = run_spmd(distributed_program(program), p)
    assert len(set(res.clocks)) == 1
