"""Hypothesis property tests over the full selection stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.machine import zero_cost_model

ALGOS = ["median_of_medians", "bucket_based", "randomized", "fast_randomized"]


@st.composite
def distributed_problem(draw):
    p = draw(st.integers(1, 6))
    shards = [
        np.array(
            draw(st.lists(st.integers(-1000, 1000), min_size=0, max_size=60)),
            dtype=np.int64,
        )
        for _ in range(p)
    ]
    n = int(sum(s.size for s in shards))
    if n == 0:
        shards[0] = np.array([draw(st.integers(-10, 10))], dtype=np.int64)
        n = 1
    k = draw(st.integers(1, n))
    return shards, k


@settings(max_examples=15)
@given(problem=distributed_problem(), algo=st.sampled_from(ALGOS),
       seed=st.integers(0, 3))
def test_property_selection_matches_oracle(problem, algo, seed):
    shards, k = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    expect = np.sort(d.gather())[k - 1]
    rep = repro.select(d, k, algorithm=algo, seed=seed)
    assert rep.value == expect


@settings(max_examples=10)
@given(problem=distributed_problem(),
       balancer=st.sampled_from(
           ["none", "omlb", "modified_omlb", "dimension_exchange",
            "global_exchange"]))
def test_property_balancer_never_changes_answer(problem, balancer):
    shards, k = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    expect = np.sort(d.gather())[k - 1]
    rep = repro.select(d, k, algorithm="randomized", balancer=balancer, seed=1)
    assert rep.value == expect


@st.composite
def rank_batch_problem(draw):
    """A distributed problem plus an arbitrary batch of target ranks
    (duplicates and arbitrary order included)."""
    shards, _ = draw(distributed_problem())
    n = int(sum(s.size for s in shards))
    ks = draw(st.lists(st.integers(1, n), min_size=1, max_size=6))
    return shards, ks


@settings(max_examples=15)
@given(problem=rank_batch_problem(),
       algo=st.sampled_from(ALGOS), seed=st.integers(0, 3))
def test_property_coalesced_flush_matches_independent_selects(
    problem, algo, seed
):
    """The Session layer keeps the engine's answers: a flushed coalesced
    batch of rank queries is value-identical to the same queries issued as
    independent one-shot selects, for any generated rank set."""
    shards, ks = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    plan = repro.SelectionPlan(algorithm=algo, seed=seed)
    with machine.session(plan) as session:
        futures = [session.select(d, k) for k in ks]
        batch_future = session.multi_select(d, ks)
    coalesced = [f.value for f in futures]
    independent = [
        repro.select(d, k, algorithm=algo, seed=seed).value for k in ks
    ]
    oracle = np.sort(d.gather())
    assert coalesced == independent
    assert batch_future.values == independent
    assert independent == [oracle[k - 1] for k in ks]


@settings(max_examples=10)
@given(problem=rank_batch_problem())
def test_property_session_replay_serves_from_cache(problem):
    """Re-querying any flushed rank set costs zero launches and returns
    identical values."""
    shards, ks = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    session = machine.session(repro.SelectionPlan(algorithm="randomized"))
    first = [session.select(d, k) for k in ks]
    session.flush()
    before = machine.launch_count
    replay = [session.select(d, k) for k in ks]
    session.flush()
    assert machine.launch_count == before
    assert [f.value for f in replay] == [f.value for f in first]
    assert all(f.result().cached for f in replay)


@settings(max_examples=10)
@given(problem=distributed_problem())
def test_property_stats_invariants(problem):
    shards, k = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    rep = repro.select(d, k, algorithm="randomized", seed=2)
    # n strictly decreases across iterations; k stays within [1, n].
    prev = rep.stats.n
    for it in rep.stats.iterations:
        assert it.n_before == prev
        if it.n_after:
            assert 1 <= it.k_after <= it.n_after
            assert it.n_after < it.n_before
        prev = it.n_after
