"""Hypothesis property tests over the full selection stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.machine import zero_cost_model

ALGOS = ["median_of_medians", "bucket_based", "randomized", "fast_randomized"]


@st.composite
def distributed_problem(draw):
    p = draw(st.integers(1, 6))
    shards = [
        np.array(
            draw(st.lists(st.integers(-1000, 1000), min_size=0, max_size=60)),
            dtype=np.int64,
        )
        for _ in range(p)
    ]
    n = int(sum(s.size for s in shards))
    if n == 0:
        shards[0] = np.array([draw(st.integers(-10, 10))], dtype=np.int64)
        n = 1
    k = draw(st.integers(1, n))
    return shards, k


@settings(max_examples=15)
@given(problem=distributed_problem(), algo=st.sampled_from(ALGOS),
       seed=st.integers(0, 3))
def test_property_selection_matches_oracle(problem, algo, seed):
    shards, k = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    expect = np.sort(d.gather())[k - 1]
    rep = repro.select(d, k, algorithm=algo, seed=seed)
    assert rep.value == expect


@settings(max_examples=10)
@given(problem=distributed_problem(),
       balancer=st.sampled_from(
           ["none", "omlb", "modified_omlb", "dimension_exchange",
            "global_exchange"]))
def test_property_balancer_never_changes_answer(problem, balancer):
    shards, k = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    expect = np.sort(d.gather())[k - 1]
    rep = repro.select(d, k, algorithm="randomized", balancer=balancer, seed=1)
    assert rep.value == expect


@settings(max_examples=10)
@given(problem=distributed_problem())
def test_property_stats_invariants(problem):
    shards, k = problem
    machine = repro.Machine(n_procs=len(shards), cost_model=zero_cost_model())
    d = machine.from_shards(shards)
    rep = repro.select(d, k, algorithm="randomized", seed=2)
    # n strictly decreases across iterations; k stays within [1, n].
    prev = rep.stats.n
    for it in rep.stats.iterations:
        assert it.n_before == prev
        if it.n_after:
            assert 1 <= it.k_after <= it.n_after
            assert it.n_after < it.n_before
        prev = it.n_after
